"""Checkers for the two LDS degree invariants (Section 3.1 of the paper).

These recompute every quantity from the graph itself — sharing no counters
with the structures under test — so they certify both the invariants and the
bookkeeping at once.
"""

from __future__ import annotations

from repro.errors import InvariantViolation
from repro.lds.bookkeeping import LevelState


def check_invariant1(state: LevelState) -> None:
    """Degree upper bound for every vertex, recomputed from the graph."""
    params = state.params
    for v in range(state.graph.num_vertices):
        lvl = state.level[v]
        if lvl >= params.max_level:
            continue
        up = sum(
            1 for w in state.graph.neighbors_unsafe(v) if state.level[w] >= lvl
        )
        bound = params.upper_threshold(lvl)
        if up > bound:
            raise InvariantViolation(
                f"Invariant 1 violated at vertex {v}: level {lvl}, "
                f"up-degree {up} > bound {bound:.3f}",
                vertex=v,
            )


def check_invariant2(state: LevelState, *, slack_levels: int = 0) -> None:
    """Degree lower bound for every vertex, recomputed from the graph.

    ``slack_levels`` loosens the check for shallow (``levels_per_group``
    override) configurations where the paper's own implementation tolerates
    bounded staleness: a vertex may sit up to ``slack_levels`` above the
    highest level at which Invariant 2 holds.
    """
    for v in range(state.graph.num_vertices):
        lvl = state.level[v]
        if lvl == 0:
            continue
        at_or_above = sum(
            1
            for w in state.graph.neighbors_unsafe(v)
            if state.level[w] >= lvl - 1
        )
        bound = state.params.lower_threshold(lvl)
        if at_or_above < bound:
            if slack_levels:
                desire = state.desire_level(v)
                if lvl - desire <= slack_levels:
                    continue
            raise InvariantViolation(
                f"Invariant 2 violated at vertex {v}: level {lvl}, "
                f"neighbours at >= {lvl - 1}: {at_or_above} < bound {bound:.3f}",
                vertex=v,
            )


def check_all_invariants(state: LevelState, *, slack_levels: int = 0) -> None:
    """Both invariants plus counter consistency, in one call."""
    state.assert_counters_consistent()
    check_invariant1(state)
    check_invariant2(state, slack_levels=slack_levels)
