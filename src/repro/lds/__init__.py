"""Level data structures: the substrate of the paper's CPLDS.

* :mod:`repro.lds.params` — the (δ, λ) parameterisation, group arithmetic and
  invariant thresholds shared by every structure.
* :mod:`repro.lds.bookkeeping` — per-vertex level state and degree counters
  (the ``"object"`` level-store backend).
* :mod:`repro.lds.store` — the pluggable :class:`LevelStore` seam and the
  vectorised ``"columnar"`` backend.
* :mod:`repro.lds.lds` — the sequential LDS of Bhattacharya et al. /
  Henzinger et al. (one-level-at-a-time rebalancing after each edge update).
* :mod:`repro.lds.plds` — the parallel batch-dynamic PLDS of Liu et al.
  (SPAA 2022): level-ordered insertion sweep and desire-level deletion phase.
* :mod:`repro.lds.coreness` — the coreness-estimate formula (Definition 3.1)
  and approximation-bound helpers (Lemma 3.2).
* :mod:`repro.lds.invariants` — checkers for Invariants 1 and 2.
"""

from repro.lds.params import LDSParams
from repro.lds.lds import LDS
from repro.lds.plds import PLDS
from repro.lds.coreness import coreness_estimate
from repro.lds.store import (
    BACKENDS,
    ColumnarLevelStore,
    LevelStore,
    make_store,
)
from repro.lds.bookkeeping import ObjectLevelStore

__all__ = [
    "LDSParams",
    "LDS",
    "PLDS",
    "coreness_estimate",
    "BACKENDS",
    "ColumnarLevelStore",
    "LevelStore",
    "ObjectLevelStore",
    "make_store",
]
