"""PLDS: parallel batch-dynamic level data structure (Liu et al., SPAA 2022).

Updates arrive in batches; each batch has an insertion phase and a deletion
phase.  The insertion phase sweeps levels in increasing order moving
Invariant-1 violators up one level per round; the deletion phase repeatedly
moves every vertex whose *desire level* equals the current minimum down to
that level.  Both phases process each round "in parallel" through an
:class:`~repro.runtime.executor.Executor`.

Parallel-round safety
---------------------
Rounds are split into a read-only *decision* step (which vertices violate an
invariant / what is each desire level), which the executor may genuinely run
concurrently, and a mutation step applying the level changes, which runs on
the calling thread.  This mirrors the real PLDS, whose concurrent counter
updates are aggregated with atomics; see DESIGN.md for why the Python port
serialises the mutation step.

Hooks
-----
:class:`UpdateHooks` is the extension seam the CPLDS plugs into: it observes
batch boundaries and is called *before* each level change, which is exactly
where the paper's marking step (Algorithm 2) must run so that a vertex's
descriptor is published before its live level moves.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Literal, Sequence

from repro.errors import LDSError
from repro.graph.dynamic_graph import DynamicGraph
from repro.lds.params import LDSParams
from repro.lds.store import LevelStore, make_store
from repro.obs import COUNT_BUCKETS, REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.runtime.executor import Executor, SequentialExecutor
from repro.types import Edge, Vertex, canonicalize_batch

Phase = Literal["insert", "delete"]

# Handles looked up once; MetricsRegistry.reset() zeroes them in place, so
# caching stays correct across test resets.  Every use is guarded by
# ``_OBS.enabled`` — the disabled hot path costs one branch.
_MOVES = _OBS.counter("plds_moves_total")
_ROUNDS = _OBS.counter("plds_rounds_total")
_ROUNDS_HIST = _OBS.histogram("plds_rounds_per_batch", COUNT_BUCKETS)
_MOVES_HIST = _OBS.histogram("plds_moves_per_batch", COUNT_BUCKETS)


def _noop(i: int) -> None:
    """Placeholder round item for bulk decisions — keeps executor round and
    work accounting identical across storage backends."""


class UpdateHooks:
    """No-op hook base; override any subset of the callbacks.

    The CPLDS overrides all of them; tests override :meth:`round_boundary`
    to inject reads at deterministic points inside a batch.
    """

    #: Hooks that can consume whole-frontier move notifications (arrays of
    #: movers plus their gathered neighbour rows) set this to True; the
    #: frontier round driver then skips the per-vertex ``before_move`` loop.
    #: See :class:`repro.core.frontier.FrontierMarkingHooks`.
    supports_bulk_moves = False

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        """Called once per phase, after edges are applied to the graph."""

    def before_move(self, v: Vertex, old_level: int, new_level: int, phase: Phase) -> None:
        """Called immediately before ``v``'s live level changes."""

    def round_boundary(self) -> None:
        """Called after every parallel round inside a phase."""

    def batch_end(self) -> None:
        """Called once per phase, after the last level change."""


class PLDS:
    """Batch-dynamic approximate k-core structure.

    Parameters
    ----------
    num_vertices:
        Size of the (fixed) vertex universe.
    params:
        :class:`LDSParams`; defaults to the paper's (δ=0.2, λ=9) with
        theory-sized groups.
    executor:
        Round executor; defaults to :class:`SequentialExecutor`.
    hooks:
        :class:`UpdateHooks` for batch instrumentation (CPLDS marking).
    backend:
        Level-store backend name (``"object"``, ``"columnar"`` or
        ``"columnar-frontier"``); see :mod:`repro.lds.store`.

    Examples
    --------
    >>> plds = PLDS(6)
    >>> plds.batch_insert([(0, 1), (1, 2), (0, 2), (3, 4)])
    4
    >>> plds.coreness_estimate(0) >= plds.coreness_estimate(3)
    True
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        graph: DynamicGraph | None = None,
        executor: Executor | None = None,
        hooks: UpdateHooks | None = None,
        backend: str = "object",
    ) -> None:
        if graph is not None and graph.num_edges:
            raise LDSError(
                "adopted graph must be empty; stream edges through batches"
            )
        self.graph = graph if graph is not None else DynamicGraph(num_vertices)
        self.params = params if params is not None else LDSParams(num_vertices)
        self.state: LevelStore = make_store(backend, self.graph, self.params)
        self.backend = self.state.backend
        self.executor: Executor = executor if executor is not None else SequentialExecutor()
        self.hooks: UpdateHooks = hooks if hooks is not None else UpdateHooks()
        #: Move/round counters for the last executed batch (bench telemetry).
        self.last_batch_moves = 0
        self.last_batch_rounds = 0
        self._move_budget = max(1, num_vertices) * self.params.num_levels * 4 + 64

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def level(self, v: Vertex) -> int:
        """Current level of ``v`` (atomic list read)."""
        return self.state.get_level(v)

    def coreness_estimate(self, v: Vertex) -> float:
        """Current (2+ε)-approximate coreness of ``v``."""
        return self.params.coreness_estimate(self.state.get_level(v))

    def levels(self) -> list[int]:
        """Snapshot of all levels (quiescent use)."""
        return self.state.levels_snapshot()

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------
    def batch_insert(self, edges: Iterable[Edge]) -> int:
        """Apply a batch of insertions; return the number of new edges."""
        batch = self.graph.filter_new_edges(edges)
        self._reset_batch_counters()
        self._insert_phase(batch)
        return len(batch)

    def batch_delete(self, edges: Iterable[Edge]) -> int:
        """Apply a batch of deletions; return the number of removed edges."""
        batch = self.graph.filter_present_edges(edges)
        self._reset_batch_counters()
        self._delete_phase(batch)
        return len(batch)

    # CoreEngine aliases (see repro.engines.base).
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        return self.batch_insert(edges)

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        return self.batch_delete(edges)

    def read(self, v: Vertex) -> float:
        return self.coreness_estimate(v)

    def apply_batch(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[int, int]:
        """Mixed batch: pre-processed into an insertion and a deletion phase.

        Mirrors the paper's pre-processing ("batches contain a mix of
        insertions and deletions, which are separated into insertion and
        deletion sub-batches").  Edges appearing in both sub-batches are
        treated as insert-then-delete.
        """
        ins = canonicalize_batch(insertions)
        dels = canonicalize_batch(deletions)
        self._reset_batch_counters()
        ins = self.graph.filter_new_edges(ins)
        if ins:
            self._insert_phase(ins)
        dels = self.graph.filter_present_edges(dels)
        if dels:
            self._delete_phase(dels)
        return len(ins), len(dels)

    def _reset_batch_counters(self) -> None:
        self.last_batch_moves = 0
        self.last_batch_rounds = 0

    # ------------------------------------------------------------------
    # Insertion phase: bottom-up sweep of Invariant-1 violators
    # ------------------------------------------------------------------
    def _insert_phase(self, batch: Sequence[Edge]) -> None:
        state = self.state
        moves0, rounds0 = self.last_batch_moves, self.last_batch_rounds
        with _OBS.span("plds.insert_phase") as sp:
            applied = state.apply_edges(batch, "insert")
            self._run_insert_rounds(applied)
            if _OBS.enabled:
                moved = self.last_batch_moves - moves0
                rounds = self.last_batch_rounds - rounds0
                sp.set(edges=len(applied), moves=moved, rounds=rounds)
                _MOVES_HIST.observe(moved)
                _ROUNDS_HIST.observe(rounds)

    def _run_insert_rounds(self, applied: Sequence[Edge]) -> None:
        state = self.state
        if getattr(state, "supports_frontier", False):
            # The columnar-frontier store runs the whole phase as numpy
            # array passes (same rounds, same counters — differentially
            # pinned); see repro.core.frontier.
            from repro.core.frontier import run_insert_rounds

            run_insert_rounds(self, applied)
            return
        self.hooks.batch_begin("insert", applied)
        try:
            pending: dict[int, set[Vertex]] = {}
            heap: list[int] = []

            def enqueue(v: Vertex, lvl: int) -> None:
                bucket = pending.get(lvl)
                if bucket is None:
                    pending[lvl] = {v}
                    heapq.heappush(heap, lvl)
                else:
                    bucket.add(v)

            for u, v in applied:
                enqueue(u, int(state.level[u]))
                enqueue(v, int(state.level[v]))

            max_level = self.params.max_level
            while heap:
                lvl = heapq.heappop(heap)
                cand = pending.pop(lvl, None)
                if cand is None:
                    continue
                movers = self._decide_inv1_violators(
                    [v for v in cand if state.level[v] == lvl]
                )
                if not movers or lvl >= max_level:
                    # Top-level vertices cannot move up (only reachable with
                    # shallow levels_per_group overrides; see LDSParams).
                    continue
                new_level = lvl + 1
                if state.supports_bulk:
                    # Hooks fire per mover in the same order as the scalar
                    # path; deferring the level writes to one scatter pass
                    # cannot change any hook's trigger scan (same-round
                    # movers satisfy `level >= lvl` at either ℓ or ℓ+1).
                    for v in movers:
                        self.hooks.before_move(v, lvl, new_level, "insert")
                    requeue = state.bulk_raise_level(movers, lvl)
                    self._count_moves(len(movers))
                    for v in movers:
                        enqueue(v, new_level)
                    for w in requeue:
                        enqueue(w, new_level)
                else:
                    for v in movers:
                        self.hooks.before_move(v, lvl, new_level, "insert")
                        state.set_level(v, new_level)
                    self._count_moves(len(movers))
                    # Movers re-check at the next level; their new same-level
                    # neighbours gained an up-neighbour and must re-check too.
                    for v in movers:
                        enqueue(v, new_level)
                        for w in self.graph.neighbors_unsafe(v):
                            if state.level[w] == new_level:
                                enqueue(w, new_level)
                self.hooks.round_boundary()
        finally:
            self.hooks.batch_end()

    def _decide_inv1_violators(self, cands: Sequence[Vertex]) -> list[Vertex]:
        """Read-only parallel decision: which candidates violate Invariant 1."""
        if not cands:
            return []
        state = self.state
        if state.supports_bulk:
            # One vectorised kernel decides the whole round; the no-op round
            # keeps executor round/work accounting backend-independent.
            self.executor.run_round(_noop, range(len(cands)))
            return state.bulk_inv1_violators(cands)
        flags = [False] * len(cands)

        def check(i: int) -> None:
            flags[i] = not state.satisfies_invariant1(cands[i])

        self.executor.run_round(check, range(len(cands)))
        return [v for v, f in zip(cands, flags) if f]

    # ------------------------------------------------------------------
    # Deletion phase: desire-level rounds in increasing level order
    # ------------------------------------------------------------------
    def _delete_phase(self, batch: Sequence[Edge]) -> None:
        state = self.state
        moves0, rounds0 = self.last_batch_moves, self.last_batch_rounds
        with _OBS.span("plds.delete_phase") as sp:
            applied = state.apply_edges(batch, "delete")
            self._run_delete_rounds(applied)
            if _OBS.enabled:
                moved = self.last_batch_moves - moves0
                rounds = self.last_batch_rounds - rounds0
                sp.set(edges=len(applied), moves=moved, rounds=rounds)
                _MOVES_HIST.observe(moved)
                _ROUNDS_HIST.observe(rounds)

    def _run_delete_rounds(self, applied: Sequence[Edge]) -> None:
        state = self.state
        if getattr(state, "supports_frontier", False):
            from repro.core.frontier import run_delete_rounds

            run_delete_rounds(self, applied)
            return
        self.hooks.batch_begin("delete", applied)
        try:
            outstanding: set[Vertex] = set()
            for u, v in applied:
                outstanding.add(u)
                outstanding.add(v)
            while True:
                desires = self._decide_desire_levels(outstanding)
                if not desires:
                    break
                lstar = min(d for _, d in desires)
                movers = sorted(v for v, d in desires if d == lstar)
                for v in movers:
                    old = int(state.level[v])
                    self.hooks.before_move(v, old, lstar, "delete")
                    state.set_level(v, lstar)
                self._count_moves(len(movers))
                # Vertices strictly above the landing level may have lost an
                # Invariant-2 supporter; everyone still outstanding re-checks
                # next round anyway (cheap, read-only).
                for v in movers:
                    for w in self.graph.neighbors_unsafe(v):
                        if state.level[w] > lstar:
                            outstanding.add(w)
                self.hooks.round_boundary()
        finally:
            self.hooks.batch_end()

    def _decide_desire_levels(
        self, outstanding: set[Vertex]
    ) -> list[tuple[Vertex, int]]:
        """Read-only parallel decision: desire levels of Invariant-2 violators.

        Non-violators are dropped from ``outstanding`` as a side effect so the
        working set shrinks as the phase converges.
        """
        if not outstanding:
            return []
        state = self.state
        cands = list(outstanding)
        if state.supports_bulk:
            self.executor.run_round(_noop, range(len(cands)))
            pairs = state.bulk_desire_levels(cands)
            outstanding.clear()
            outstanding.update(v for v, _ in pairs)
            return pairs
        desires: list[int] = [-1] * len(cands)

        def check(i: int) -> None:
            v = cands[i]
            if state.level[v] > 0 and not state.satisfies_invariant2(v):
                desires[i] = state.desire_level(v)

        self.executor.run_round(check, range(len(cands)))
        result: list[tuple[Vertex, int]] = []
        for v, d in zip(cands, desires):
            if d >= 0:
                result.append((v, d))
            else:
                outstanding.discard(v)
        return result

    def _count_moves(self, moved: int) -> None:
        self.last_batch_moves += moved
        self.last_batch_rounds += 1
        if _OBS.enabled:
            _MOVES.inc(moved)
            _ROUNDS.inc()
        if _REC.enabled:
            # One event per rebalancing round; ``moved`` is the frontier size.
            _REC.record(
                _EV.ROUND, moved, self.last_batch_moves, self.last_batch_rounds
            )
        if self.last_batch_moves > self._move_budget:
            raise LDSError(
                "batch rebalance exceeded the theoretical move budget; "
                "this indicates a bookkeeping bug"
            )

    # ------------------------------------------------------------------
    # State management (quiescent use)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture the full structure state (graph edges + level store)."""
        return {
            "edges": tuple(self.graph.edges()),
            "store": self.state.snapshot(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        self.graph.clear()
        self.graph.insert_batch(snap["edges"])
        self.state.restore(snap["store"])

    # ------------------------------------------------------------------
    # Verification support
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise if any vertex violates an invariant (quiescent use)."""
        from repro.lds.invariants import check_all_invariants

        check_all_invariants(self.state)
