"""Pluggable level-store backends: the storage seam under LDS/PLDS/CPLDS.

Every level structure in this library maintains the same three per-vertex
quantities — the live ``level``, the up-degree ``up_deg`` and the
below-level counter map ``down`` — but nothing about the *algorithms*
(rebalance sweeps, marking, the read sandwich) depends on how those
quantities are laid out in memory.  This module makes the layout a choice:

* :class:`~repro.lds.bookkeeping.ObjectLevelStore` — the original plain
  Python lists + dict-of-counts representation.  Kept as the semantic
  reference; every other backend is differentially tested against it.
* :class:`ColumnarLevelStore` — GBBS-style flat state: ``level`` and
  ``up_deg`` are contiguous numpy ``int64`` arrays and ``down`` is a dense
  ``(n × width)`` counter matrix (``width`` grows lazily with the highest
  occupied level, so it stays "num_groups-ish" in practice).  Invariant
  checks and desire-level scans over whole candidate sets become single
  vectorised kernels, and snapshots are O(1)-ish array copies.
* :class:`FrontierLevelStore` — the columnar layout plus the whole-frontier
  machinery behind the ``columnar-frontier`` engine: an incrementally
  maintained flat edge list frozen into a CSR view once per phase
  (:meth:`FrontierLevelStore.sync_csr`), neighbour gathers as
  ``offsets``/``targets`` slices, and array-in/array-out round kernels
  (:meth:`~FrontierLevelStore.bulk_inv1_violators_arr`,
  :meth:`~FrontierLevelStore.bulk_desire_levels_arr`,
  :meth:`~FrontierLevelStore.bulk_raise_level_rows`,
  :meth:`~FrontierLevelStore.bulk_move_to_level_rows`) consumed by the
  frontier round driver in :mod:`repro.core.frontier`.

All backends expose the same surface (see :class:`LevelStore`); pick one
with :func:`make_store` or — at the system level — via
``repro.engines.create(name, backend=...)``.

Concurrency note: both layouts expose ``level`` as a plain Python list —
element reads are one C-level operation under the CPython GIL, which is the
single-word-read atomicity the paper's read protocol assumes (and a list
read returns an unboxed ``int``, keeping the reader hot path allocation
free).  The columnar store mirrors the list into a private ``int64`` array
for its vectorised kernels; the list is always written last, so it is the
reader-visible word.  The counter structures remain writer-private.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import LDSError
from repro.graph.dynamic_graph import DynamicGraph
from repro.lds.params import LDSParams
from repro.obs import REGISTRY as _OBS
from repro.types import Vertex

#: Registered storage backends, in preference order.
BACKENDS = ("object", "columnar", "columnar-frontier")

# Cached kernel-call counters: one label per vectorised kernel, plus a rows
# counter so a snapshot shows both call counts and work volume.
_K_SCATTER = _OBS.counter("columnar_kernel_calls_total", {"kernel": "scatter_counters"})
_K_RAISE = _OBS.counter("columnar_kernel_calls_total", {"kernel": "bulk_raise_level"})
_K_INV1 = _OBS.counter("columnar_kernel_calls_total", {"kernel": "bulk_inv1_violators"})
_K_DESIRE = _OBS.counter("columnar_kernel_calls_total", {"kernel": "bulk_desire_levels"})
_K_MOVE = _OBS.counter("columnar_kernel_calls_total", {"kernel": "bulk_move_to_level"})
_K_CSR = _OBS.counter("columnar_kernel_calls_total", {"kernel": "csr_rebuild"})
_K_ROWS = _OBS.counter("columnar_kernel_rows_total")


@runtime_checkable
class LevelStore(Protocol):
    """The storage contract shared by every level-store backend.

    Attributes
    ----------
    backend:
        The backend's registry name (``"object"`` / ``"columnar"``).
    supports_bulk:
        True when the store provides vectorised whole-round decisions
        (:meth:`bulk_inv1_violators` / :meth:`bulk_desire_levels`); the PLDS
        uses them in place of per-vertex executor work when available.
    level:
        Indexable per-vertex live levels; element reads must be GIL-atomic
        (this is what concurrent readers touch).
    """

    backend: str
    supports_bulk: bool
    params: LDSParams
    graph: DynamicGraph

    # -- reads ----------------------------------------------------------
    def get_level(self, v: Vertex) -> int: ...
    def levels_snapshot(self) -> list[int]: ...
    def snapshot_levels(self): ...

    # -- edge/level bookkeeping -----------------------------------------
    def on_edge_inserted(self, u: Vertex, v: Vertex) -> None: ...
    def on_edge_deleted(self, u: Vertex, v: Vertex) -> None: ...
    def apply_edges(
        self, edges: Iterable[tuple[Vertex, Vertex]], kind: str
    ) -> list[tuple[Vertex, Vertex]]: ...
    def set_level(self, v: Vertex, new_level: int) -> None: ...

    # -- invariant predicates -------------------------------------------
    def satisfies_invariant1(self, v: Vertex) -> bool: ...
    def satisfies_invariant2(self, v: Vertex) -> bool: ...
    def desire_level(self, v: Vertex) -> int: ...

    # -- state management -----------------------------------------------
    def reset(self) -> None: ...
    def load_levels(self, levels: Sequence[int]) -> None: ...
    def snapshot(self): ...
    def restore(self, snap) -> None: ...

    # -- verification ----------------------------------------------------
    def recompute_counters(self): ...
    def assert_counters_consistent(self) -> None: ...


class ColumnarLevelStore:
    """Flat-array level state with vectorised round decisions.

    ``level`` / ``up_deg`` are flat ``int64`` arrays; ``down`` is a dense
    ``(n, width)`` counter matrix whose ``width`` lazily doubles to cover
    the highest level any vertex has occupied (bounded by
    ``params.num_levels``).  The per-level invariant thresholds are
    precomputed once into arrays, so a whole decision round — "which of
    these candidates violate Invariant 1/2" — is a handful of fancy-indexed
    numpy expressions instead of O(candidates) Python calls.
    """

    backend = "columnar"
    supports_bulk = True

    __slots__ = (
        "params", "graph", "level", "up_deg", "down",
        "_level_arr", "_stamp", "_width", "_upper", "_lower", "_lower_list",
    )

    #: Below this neighbour count ``set_level`` uses a scalar loop (the
    #: numpy fixed overhead dominates for tiny degrees).
    _VECTOR_MIN_DEG = 16

    def __init__(self, graph: DynamicGraph, params: LDSParams) -> None:
        if params.num_vertices != graph.num_vertices:
            raise ValueError(
                f"params sized for n={params.num_vertices} but graph has "
                f"n={graph.num_vertices}"
            )
        self.params = params
        self.graph = graph
        n = graph.num_vertices
        num_levels = params.num_levels
        # The live, reader-visible levels: a plain list (fast unboxed scalar
        # reads for the read protocol and the per-move hot loops), mirrored
        # into an int64 array for the vectorised kernels.
        self.level = [0] * n
        self._level_arr = np.zeros(n, dtype=np.int64)
        self.up_deg = np.zeros(n, dtype=np.int64)
        self._width = min(num_levels, 8)
        self.down = np.zeros((n, self._width), dtype=np.int64)
        self._stamp = np.zeros(n, dtype=bool)  # scratch for bulk kernels
        self._upper = np.array(
            [params.upper_threshold(l) for l in range(num_levels)],
            dtype=np.float64,
        )
        self._lower = np.array(
            [params.lower_threshold(l) for l in range(num_levels)],
            dtype=np.float64,
        )
        self._lower_list = self._lower.tolist()
        # All vertices start at level 0: every pre-existing neighbour is up.
        for v in range(n):
            d = graph.degree(v)
            if d:
                self.up_deg[v] = d

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_level(self, v: Vertex) -> int:
        """The live level of ``v`` — a single atomic list read."""
        return self.level[v]

    def levels_snapshot(self) -> list[int]:
        """A plain-int copy of all live levels (quiescent use only)."""
        return list(self.level)

    def snapshot_levels(self) -> np.ndarray:
        """An O(n) array copy of the live levels (indexable snapshot)."""
        return self._level_arr.copy()

    # ------------------------------------------------------------------
    # Capacity management for the dense down matrix
    # ------------------------------------------------------------------
    def _ensure_width(self, lvl: int) -> None:
        if lvl < self._width:
            return
        num_levels = self.params.num_levels
        new = self._width
        while new <= lvl:
            new = min(num_levels, max(new * 2, lvl + 1))
        grown = np.zeros((self.down.shape[0], new), dtype=np.int64)
        grown[:, : self._width] = self.down
        self.down = grown
        self._width = new

    # ------------------------------------------------------------------
    # Edge bookkeeping
    # ------------------------------------------------------------------
    def on_edge_inserted(self, u: Vertex, v: Vertex) -> None:
        """Update counters for a newly inserted edge ``(u, v)``."""
        lu, lv = self.level[u], self.level[v]
        if lv >= lu:
            self.up_deg[u] += 1
        else:
            self.down[u, lv] += 1
        if lu >= lv:
            self.up_deg[v] += 1
        else:
            self.down[v, lu] += 1

    def on_edge_deleted(self, u: Vertex, v: Vertex) -> None:
        """Update counters for a just-deleted edge ``(u, v)``."""
        lu, lv = self.level[u], self.level[v]
        if lv >= lu:
            self.up_deg[u] -= 1
        else:
            self.down[u, lv] -= 1
        if lu >= lv:
            self.up_deg[v] -= 1
        else:
            self.down[v, lu] -= 1

    def apply_edges(
        self, edges: Iterable[tuple[Vertex, Vertex]], kind: str
    ) -> list[tuple[Vertex, Vertex]]:
        """Apply one pre-filtered batch to the graph, then fix all counters
        with two ``np.add.at`` scatter kernels (one per endpoint side)."""
        batch = list(edges)
        if not batch:
            return batch
        if kind == "insert":
            applied = self.graph.insert_batch(batch)
            sign = 1
        elif kind == "delete":
            applied = self.graph.delete_batch(batch)
            sign = -1
        else:
            raise ValueError(f"unknown edge-batch kind {kind!r}")
        if applied != len(batch):
            raise LDSError(
                f"apply_edges expects a pre-filtered batch: {len(batch)} "
                f"edges submitted but {applied} applied"
            )
        arr = np.asarray(batch, dtype=np.int64).reshape(-1, 2)
        self._scatter_counters(arr, sign)
        return batch

    def _scatter_counters(self, arr: np.ndarray, sign: int) -> None:
        """Accumulate counter deltas for an edge array (levels held fixed,
        so the updates are order-independent)."""
        if _OBS.enabled:
            _K_SCATTER.inc()
            _K_ROWS.inc(int(arr.shape[0]))
        level = self._level_arr
        for a, b in ((arr[:, 0], arr[:, 1]), (arr[:, 1], arr[:, 0])):
            la = level[a]
            lb = level[b]
            up = lb >= la
            if up.any():
                np.add.at(self.up_deg, a[up], sign)
            dn = ~up
            if dn.any():
                np.add.at(self.down, (a[dn], lb[dn]), sign)

    # ------------------------------------------------------------------
    # Level changes
    # ------------------------------------------------------------------
    def set_level(self, v: Vertex, new_level: int) -> None:
        """Move ``v`` to ``new_level``, fixing all affected counters.

        Semantics identical to the object store's; the live level write
        happens last.  Large neighbourhoods are reclassified with masked
        array kernels, tiny ones with a scalar loop.
        """
        old = self.level[v]
        new_level = int(new_level)
        if new_level == old:
            return
        if not 0 <= new_level < self.params.num_levels:
            raise ValueError(
                f"new_level {new_level} out of range [0, {self.params.num_levels})"
            )
        self._ensure_width(new_level)
        nbrs = self.graph.neighbors_unsafe(v)
        if len(nbrs) >= self._VECTOR_MIN_DEG:
            self._set_level_vector(v, old, new_level, nbrs)
        elif nbrs:
            self._set_level_scalar(v, old, new_level, nbrs)
        self._level_arr[v] = new_level
        self.level[v] = new_level

    def _set_level_scalar(
        self, v: Vertex, old: int, new_level: int, nbrs: set
    ) -> None:
        level = self.level
        up_deg = self.up_deg
        down = self.down
        moving_up = new_level > old
        lo, hi = (old, new_level) if moving_up else (new_level, old)
        for w in nbrs:
            lw = level[w]
            was_up = old >= lw
            is_up = new_level >= lw
            if was_up and not is_up:
                up_deg[w] -= 1
                down[w, new_level] += 1
            elif not was_up and is_up:
                down[w, old] -= 1
                up_deg[w] += 1
            elif not was_up and not is_up:
                down[w, old] -= 1
                down[w, new_level] += 1
            if lw >= hi or lw < lo:
                continue
            if moving_up:
                up_deg[v] -= 1
                down[v, lw] += 1
            else:
                down[v, lw] -= 1
                up_deg[v] += 1

    def _set_level_vector(
        self, v: Vertex, old: int, new_level: int, nbrs: set
    ) -> None:
        w = np.fromiter(nbrs, count=len(nbrs), dtype=np.int64)
        lw = self._level_arr[w]
        was_up = lw <= old
        is_up = lw <= new_level
        # w's view of v (neighbour sets are duplicate-free, so plain fancy
        # assignment is safe on the w side).
        up2down = was_up & ~is_up
        if up2down.any():
            t = w[up2down]
            self.up_deg[t] -= 1
            self.down[t, new_level] += 1
        down2up = ~was_up & is_up
        if down2up.any():
            t = w[down2up]
            self.down[t, old] -= 1
            self.up_deg[t] += 1
        down2down = ~was_up & ~is_up
        if down2down.any():
            t = w[down2down]
            self.down[t, old] -= 1
            self.down[t, new_level] += 1
        # v's view of w: only neighbours whose level sits between the old
        # and new level switch sides (duplicates possible per level, so
        # scatter with np.add.at).
        if new_level > old:
            crossed = (lw >= old) & (lw < new_level)
            k = int(crossed.sum())
            if k:
                self.up_deg[v] -= k
                np.add.at(self.down[v], lw[crossed], 1)
        else:
            crossed = (lw >= new_level) & (lw < old)
            k = int(crossed.sum())
            if k:
                self.up_deg[v] += k
                np.subtract.at(self.down[v], lw[crossed], 1)

    def bulk_raise_level(
        self, movers: Sequence[Vertex], old: int
    ) -> list[int]:
        """Move every vertex in ``movers`` from ``old`` to ``old + 1`` in
        one scatter pass; returns the non-mover neighbours sitting at the
        destination level (the insertion sweep's re-check set).

        The counter delta of a simultaneous single-level raise reduces to
        three neighbour masks (mover–mover edges cancel: both endpoints
        stay mutually "up"):

        * neighbour at ``old``   — mover loses an up-neighbour, gains
          ``down[old]``;
        * neighbour at ``old+1`` — neighbour's ``down[old]`` becomes an
          up-neighbour;
        * neighbour above        — neighbour's ``down[old]`` shifts to
          ``down[old+1]``.

        Equivalent to calling :meth:`set_level` once per mover (the counter
        state is a pure function of the final levels); the live level list
        is written last, after all counters.
        """
        new = old + 1
        self._ensure_width(new)
        if _OBS.enabled:
            _K_RAISE.inc()
            _K_ROWS.inc(len(movers))
        graph = self.graph
        varr = np.fromiter(movers, count=len(movers), dtype=np.int64)
        counts = np.fromiter(
            (len(graph.neighbors_unsafe(v)) for v in movers),
            count=len(movers),
            dtype=np.int64,
        )
        requeue: list[int] = []
        total = int(counts.sum())
        if total:
            flat = np.empty(total, dtype=np.int64)
            pos = 0
            for v in movers:
                nb = graph.neighbors_unsafe(v)
                k = len(nb)
                flat[pos : pos + k] = np.fromiter(nb, count=k, dtype=np.int64)
                pos += k
            src = np.repeat(varr, counts)
            # Drop mover-mover pairs (no counter change) via the reusable
            # stamp array: O(movers) to set and clear.
            stamp = self._stamp
            stamp[varr] = True
            keep = ~stamp[flat]
            stamp[varr] = False
            flat = flat[keep]
            src = src[keep]
            lw = self._level_arr[flat]
            at_old = lw == old
            if at_old.any():
                np.add.at(self.up_deg, src[at_old], -1)
                np.add.at(self.down[:, old], src[at_old], 1)
            at_new = lw == new
            if at_new.any():
                t = flat[at_new]
                np.add.at(self.down[:, old], t, -1)
                np.add.at(self.up_deg, t, 1)
                requeue = np.unique(t).tolist()
            above = lw > new
            if above.any():
                t = flat[above]
                np.add.at(self.down[:, old], t, -1)
                np.add.at(self.down[:, new], t, 1)
        self._level_arr[varr] = new
        level = self.level
        for v in movers:
            level[v] = new
        return requeue

    # ------------------------------------------------------------------
    # Invariant predicates
    # ------------------------------------------------------------------
    def satisfies_invariant1(self, v: Vertex) -> bool:
        """Degree upper bound (vacuous at the top level)."""
        lvl = self.level[v]
        if lvl >= self.params.max_level:
            return True
        return bool(self.up_deg[v] <= self._upper[lvl])

    def satisfies_invariant2(self, v: Vertex) -> bool:
        """Degree lower bound at ``ℓ − 1``."""
        lvl = self.level[v]
        if lvl == 0:
            return True
        at_or_above = self.up_deg[v] + self.down[v, lvl - 1]
        return bool(at_or_above >= self._lower[lvl])

    def desire_level(self, v: Vertex) -> int:
        """Max feasible level ``d <= ℓ(v)`` — descending suffix scan.

        ``cnt(d) = up_deg(v) + Σ_{j >= d-1} down(v)[j]`` is the number of
        neighbours at ``>= d − 1``; the answer is the highest ``d`` with
        ``cnt(d) >= lower_threshold(d)``.  One row ``tolist`` then plain-int
        arithmetic: levels are O(log² n), so a Python scan beats the numpy
        fixed costs of a cumsum kernel on every realistic input.
        Equivalent to the object store's breakpoint scan (differentially
        tested).
        """
        lvl = self.level[v]
        if lvl == 0:
            return 0
        m = min(lvl, self._width)
        row = self.down[v, :m].tolist()
        up = int(self.up_deg[v])
        lower = self._lower_list
        suffix = 0
        for d in range(lvl, 0, -1):
            if d - 1 < m:
                suffix += row[d - 1]
            if up + suffix >= lower[d]:
                return d
        return 0

    # ------------------------------------------------------------------
    # Bulk (vectorised) round decisions
    # ------------------------------------------------------------------
    def bulk_inv1_violators(self, cands: Sequence[Vertex]) -> list[Vertex]:
        """Which candidates violate Invariant 1, in submission order."""
        if _OBS.enabled:
            _K_INV1.inc()
            _K_ROWS.inc(len(cands))
        c = np.asarray(cands, dtype=np.int64)
        lv = self._level_arr[c]
        viol = (lv < self.params.max_level) & (self.up_deg[c] > self._upper[lv])
        return [cands[i] for i in np.nonzero(viol)[0]]

    def bulk_desire_levels(
        self, cands: Sequence[Vertex]
    ) -> list[tuple[Vertex, int]]:
        """(vertex, desire level) for every Invariant-2 violator among
        ``cands`` (others are simply omitted)."""
        if _OBS.enabled:
            _K_DESIRE.inc()
            _K_ROWS.inc(len(cands))
        c = np.asarray(cands, dtype=np.int64)
        lv = self._level_arr[c]
        positive = lv > 0
        below = np.where(positive, lv - 1, 0)
        cnt = self.up_deg[c] + np.where(positive, self.down[c, below], 0)
        viol = positive & (cnt < self._lower[lv])
        return [
            (cands[i], self.desire_level(cands[i]))
            for i in np.nonzero(viol)[0]
        ]

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all levels and recompute counters for the current graph
        (every vertex back at level 0)."""
        n = self.graph.num_vertices
        self.level[:] = [0] * n
        self._level_arr[:] = 0
        self.up_deg[:] = 0
        self.down[:] = 0
        graph = self.graph
        for v in range(graph.num_vertices):
            d = graph.degree(v)
            if d:
                self.up_deg[v] = d

    def load_levels(self, levels: Sequence[int]) -> None:
        """Adopt a level assignment and rebuild all counters from the graph
        (one vectorised pass over the edge array)."""
        arr = np.asarray(levels, dtype=np.int64)
        n = self.graph.num_vertices
        if arr.shape != (n,):
            raise ValueError(f"expected {n} levels, got shape {arr.shape}")
        if n and (arr.min() < 0 or arr.max() >= self.params.num_levels):
            raise ValueError("level assignment out of range")
        if n:
            self._ensure_width(int(arr.max()))
        self._level_arr[:] = arr
        self.level[:] = arr.tolist()
        self.up_deg[:] = 0
        self.down[:] = 0
        edge_list = list(self.graph.edges())
        if edge_list:
            self._scatter_counters(
                np.asarray(edge_list, dtype=np.int64).reshape(-1, 2), 1
            )

    def snapshot(self):
        """O(1)-ish state snapshot: three array copies."""
        return (
            self._level_arr.copy(), self.up_deg.copy(), self.down.copy()
        )

    def restore(self, snap) -> None:
        """Restore a :meth:`snapshot` (the snapshot stays reusable).

        ``level``/``up_deg`` are written in place so references held by the
        read hot path stay valid.
        """
        level, up_deg, down = snap
        self._level_arr[:] = level
        self.level[:] = level.tolist()
        self.up_deg[:] = up_deg
        if down.shape[1] != self._width:
            self.down = down.copy()
            self._width = down.shape[1]
        else:
            self.down[:] = down

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def recompute_counters(self) -> tuple[list[int], list[dict[int, int]]]:
        """Recompute ``up_deg`` / ``down`` from scratch, in the common
        (list, dict-per-vertex) exchange format."""
        n = self.graph.num_vertices
        up = [0] * n
        down: list[dict[int, int]] = [dict() for _ in range(n)]
        level = self.level
        for v in range(n):
            lv = level[v]
            for w in self.graph.neighbors_unsafe(v):
                lw = level[w]
                if lw >= lv:
                    up[v] += 1
                else:
                    key = int(lw)
                    down[v][key] = down[v].get(key, 0) + 1
        return up, down

    def assert_counters_consistent(self) -> None:
        """Raise ``AssertionError`` if any counter drifted from the graph."""
        if self.level != self._level_arr.tolist():
            raise AssertionError("level list and its array mirror diverged")
        up, down = self.recompute_counters()
        width = self._width
        for v in range(self.graph.num_vertices):
            if up[v] != int(self.up_deg[v]):
                raise AssertionError(
                    f"up_deg[{v}] = {int(self.up_deg[v])}, recomputed {up[v]}"
                )
            row = {
                lvl: int(c)
                for lvl, c in enumerate(self.down[v, :width].tolist())
                if c
            }
            if down[v] != row:
                raise AssertionError(
                    f"down[{v}] = {row}, recomputed {down[v]}"
                )


class FrontierLevelStore(ColumnarLevelStore):
    """Columnar store + per-phase CSR view + whole-frontier round kernels.

    The backend behind the ``columnar-frontier`` engine.  On top of the
    columnar layout it maintains a flat edge list (``_eu``/``_ev`` slot
    arrays with an alive mask, appended/killed incrementally by
    :meth:`apply_edges` and compacted when dead slots dominate).  At the
    start of each update phase the round driver calls :meth:`sync_csr`,
    which freezes the live edges into ``offsets``/``targets`` CSR arrays
    with one stable integer argsort — O(m) radix work amortised against the
    whole phase's neighbour gathers, and skipped entirely when the edge set
    did not change since the last build (keyed on
    :attr:`DynamicGraph.version`, so out-of-band mutations such as
    ``restore_state``/``rebuild`` trigger a full resync instead of silent
    staleness).

    The ``*_arr`` / ``*_rows`` kernels are the array-in/array-out versions
    of the scalar round decisions; each is differentially pinned to the
    scalar semantics by the backend differential suite.
    """

    backend = "columnar-frontier"
    #: The frontier round driver (repro.core.frontier) takes over the PLDS
    #: phase loops when the store advertises this.
    supports_frontier = True

    __slots__ = (
        "_eu", "_ev", "_alive", "_n_slots", "_dead", "_slot_of",
        "_graph_version", "_csr_offsets", "_csr_targets", "_csr_version",
        "_iota",
    )

    def __init__(self, graph: DynamicGraph, params: LDSParams) -> None:
        super().__init__(graph, params)
        self._graph_version = -1
        self._csr_version = -1
        self._csr_offsets = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        self._csr_targets = np.empty(0, dtype=np.int64)
        self._iota = np.arange(1024, dtype=np.int64)
        self._resync_edges()

    # ------------------------------------------------------------------
    # Incremental edge list
    # ------------------------------------------------------------------
    def _resync_edges(self) -> None:
        """Rebuild the slot arrays from the graph (restore/rebuild path)."""
        edge_list = list(self.graph.edges())
        k = len(edge_list)
        cap = max(16, 2 * k)
        self._eu = np.empty(cap, dtype=np.int64)
        self._ev = np.empty(cap, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=bool)
        if k:
            arr = np.asarray(edge_list, dtype=np.int64)
            self._eu[:k] = arr[:, 0]
            self._ev[:k] = arr[:, 1]
            self._alive[:k] = True
        self._slot_of = {e: i for i, e in enumerate(edge_list)}
        self._n_slots = k
        self._dead = 0
        self._graph_version = self.graph.version
        self._csr_version = -1

    def _grow_slots(self, need: int) -> None:
        cap = max(2 * len(self._eu), need)
        for name in ("_eu", "_ev"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._n_slots] = old[: self._n_slots]
            setattr(self, name, grown)
        alive = np.zeros(cap, dtype=bool)
        alive[: self._n_slots] = self._alive[: self._n_slots]
        self._alive = alive

    def _append_edges(self, batch: list[tuple[Vertex, Vertex]]) -> None:
        k = len(batch)
        s = self._n_slots
        if s + k > len(self._eu):
            self._grow_slots(s + k)
        arr = np.asarray(batch, dtype=np.int64).reshape(-1, 2)
        self._eu[s : s + k] = arr[:, 0]
        self._ev[s : s + k] = arr[:, 1]
        self._alive[s : s + k] = True
        slot_of = self._slot_of
        for i, e in enumerate(batch):
            slot_of[e] = s + i
        self._n_slots = s + k

    def _kill_edges(self, batch: list[tuple[Vertex, Vertex]]) -> None:
        slot_of = self._slot_of
        idx = np.fromiter(
            (slot_of.pop(e) for e in batch), dtype=np.int64, count=len(batch)
        )
        self._alive[idx] = False
        self._dead += len(batch)
        if self._dead > max(256, self._n_slots - self._dead):
            self._compact_slots()

    def _compact_slots(self) -> None:
        live = self._alive[: self._n_slots]
        eu = self._eu[: self._n_slots][live]
        ev = self._ev[: self._n_slots][live]
        k = len(eu)
        self._eu[:k] = eu
        self._ev[:k] = ev
        self._alive[:k] = True
        self._alive[k:] = False
        self._slot_of = {
            (int(u), int(v)): i
            for i, (u, v) in enumerate(zip(eu.tolist(), ev.tolist()))
        }
        self._n_slots = k
        self._dead = 0

    def apply_edges(
        self, edges: Iterable[tuple[Vertex, Vertex]], kind: str
    ) -> list[tuple[Vertex, Vertex]]:
        pre = self.graph.version
        batch = super().apply_edges(edges, kind)
        if batch:
            if self._graph_version == pre:
                # In sync before the batch: track it incrementally.  When
                # stale (out-of-band graph mutation), stay stale and let
                # sync_csr trigger the full resync.
                if kind == "insert":
                    self._append_edges(batch)
                else:
                    self._kill_edges(batch)
                self._graph_version = self.graph.version
        return batch

    # ------------------------------------------------------------------
    # CSR view + gathers
    # ------------------------------------------------------------------
    def sync_csr(self) -> None:
        """Freeze the live edge set into CSR arrays (no-op when current)."""
        version = self.graph.version
        if self._graph_version != version:
            self._resync_edges()
        if self._csr_version == version:
            return
        n = self.graph.num_vertices
        k = self._n_slots
        eu = self._eu[:k]
        ev = self._ev[:k]
        if self._dead:
            live = self._alive[:k]
            eu = eu[live]
            ev = ev[live]
        src = np.concatenate([eu, ev])
        dst = np.concatenate([ev, eu])
        if _OBS.enabled:
            _K_CSR.inc()
            _K_ROWS.inc(int(src.size))
        order = np.argsort(src, kind="stable")
        self._csr_targets = dst[order]
        offsets = np.zeros(n + 1, dtype=np.int64)
        if src.size:
            counts = np.bincount(src, minlength=n)
            np.cumsum(counts, out=offsets[1:])
        self._csr_offsets = offsets
        self._csr_version = version

    def gather_rows(self, varr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All CSR adjacency rows of ``varr`` flattened: ``(src, flat)``
        where ``flat[i]`` is a neighbour of ``src[i]``.  Syncs the CSR view
        on demand (a two-comparison no-op when already current), so phases
        that never gather skip the rebuild entirely."""
        self.sync_csr()
        offsets = self._csr_offsets
        start = offsets[varr]
        cnt = offsets[varr + 1] - start
        total = int(cnt.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if total > len(self._iota):
            self._iota = np.arange(
                max(total, 2 * len(self._iota)), dtype=np.int64
            )
        cum = np.cumsum(cnt)
        # iota - repeat(exclusive-cumsum - start): one repeat pass instead
        # of two, and the iota ramp is a cached slice, not a fresh arange.
        idx = self._iota[:total] - np.repeat(cum - cnt - start, cnt)
        return np.repeat(varr, cnt), self._csr_targets[idx]

    # ------------------------------------------------------------------
    # Array-in/array-out round kernels
    # ------------------------------------------------------------------
    def bulk_inv1_violators_arr(self, cands: np.ndarray) -> np.ndarray:
        """Array version of :meth:`bulk_inv1_violators` (sorted input stays
        sorted — the mask preserves order)."""
        if _OBS.enabled:
            _K_INV1.inc()
            _K_ROWS.inc(int(cands.size))
        lv = self._level_arr[cands]
        viol = (lv < self.params.max_level) & (self.up_deg[cands] > self._upper[lv])
        return cands[viol]

    def bulk_desire_levels_arr(
        self, cands: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array version of :meth:`bulk_desire_levels`: ``(violators,
        desires)`` with the violators in input order.

        The desire level — the highest ``d <= ℓ(v)`` whose neighbour count
        ``up_deg + Σ_{j >= d-1} down[j]`` meets ``lower_threshold(d)`` — is
        computed for all violators at once from a reversed-cumsum suffix
        matrix, replacing the per-vertex descending Python scan.
        """
        if _OBS.enabled:
            _K_DESIRE.inc()
            _K_ROWS.inc(int(cands.size))
        lv = self._level_arr[cands]
        positive = lv > 0
        below = np.where(positive, lv - 1, 0)
        cnt0 = self.up_deg[cands] + np.where(positive, self.down[cands, below], 0)
        viol = positive & (cnt0 < self._lower[lv])
        v = cands[viol]
        if v.size == 0:
            return v, np.empty(0, dtype=np.int64)
        lvl_v = lv[viol]
        width = self._width
        rows = self.down[v]
        # suffix[:, j] = Σ_{k >= j} rows[:, k]; padded with a zero column at
        # index `width` so `d - 1 >= width` contributes nothing.
        suffix = np.zeros((len(v), width + 1), dtype=np.int64)
        suffix[:, :width] = rows[:, ::-1].cumsum(axis=1)[:, ::-1]
        d = np.arange(1, int(lvl_v.max()) + 1, dtype=np.int64)
        cnt = self.up_deg[v][:, None] + suffix[:, np.minimum(d - 1, width)]
        feasible = (cnt >= self._lower[d][None, :]) & (d[None, :] <= lvl_v[:, None])
        desire = np.where(feasible, d[None, :], 0).max(axis=1)
        return v, desire

    def bulk_raise_level_rows(
        self, movers: np.ndarray, old: int, src: np.ndarray, flat: np.ndarray
    ) -> np.ndarray:
        """:meth:`bulk_raise_level` fed by pre-gathered CSR rows; returns
        the requeue set (non-mover neighbours at the destination level) as
        a sorted array."""
        new = old + 1
        self._ensure_width(new)
        if _OBS.enabled:
            _K_RAISE.inc()
            _K_ROWS.inc(int(movers.size))
        requeue = np.empty(0, dtype=np.int64)
        if flat.size:
            stamp = self._stamp
            stamp[movers] = True
            keep = ~stamp[flat]
            stamp[movers] = False
            f = flat[keep]
            s = src[keep]
            lw = self._level_arr[f]
            at_old = lw == old
            if at_old.any():
                np.add.at(self.up_deg, s[at_old], -1)
                np.add.at(self.down[:, old], s[at_old], 1)
            # Neighbours at >= new all leave v's down[old] class …
            not_below = lw >= new
            if not_below.any():
                np.add.at(self.down[:, old], f[not_below], -1)
            # … landing in up_deg (== new) or down[new] (> new).
            at_new = lw == new
            if at_new.any():
                t = f[at_new]
                np.add.at(self.up_deg, t, 1)
                requeue = np.unique(t)
            above = lw > new
            if above.any():
                np.add.at(self.down[:, new], f[above], 1)
        self._level_arr[movers] = new
        level = self.level
        for v in movers.tolist():
            level[v] = new
        return requeue

    def bulk_move_to_level_rows(
        self, movers: np.ndarray, lstar: int, src: np.ndarray, flat: np.ndarray
    ) -> None:
        """Move every mover to ``lstar`` (a strict down-move) in one scatter
        pass over the pre-gathered rows.

        Counter state is a pure function of the final levels, so each row
        (``v=src[i]`` mover, ``w=flat[i]``) contributes a remove-old-class /
        add-new-class delta to ``v``'s ledger and — for non-mover ``w`` — to
        ``w``'s view of ``v``; mover–mover edges appear as two rows, one per
        direction, and intermediate cancellations are harmless under
        ``np.add.at``.  Equivalent to interleaved :meth:`set_level` calls;
        the live level list is written last.
        """
        self._ensure_width(lstar)
        if _OBS.enabled:
            _K_MOVE.inc()
            _K_ROWS.inc(int(movers.size))
        if flat.size:
            stamp = self._stamp
            stamp[movers] = True
            w_moves = stamp[flat]
            stamp[movers] = False
            lw_old = self._level_arr[flat]
            old_src = self._level_arr[src]
            lw_new = np.where(w_moves, lstar, lw_old)
            # v's ledger: remove w's old class, add its new class.
            old_up = lw_old >= old_src
            np.add.at(self.up_deg, src[old_up], -1)
            dn = ~old_up
            np.add.at(self.down, (src[dn], lw_old[dn]), -1)
            new_up = lw_new >= lstar
            np.add.at(self.up_deg, src[new_up], 1)
            dn = ~new_up
            np.add.at(self.down, (src[dn], lw_new[dn]), 1)
            # Non-mover w's view of v (mover w rows are covered by their own
            # symmetric row).
            nm = ~w_moves
            t = flat[nm]
            ov = old_src[nm]
            lw = lw_old[nm]
            was_up = ov >= lw
            np.add.at(self.up_deg, t[was_up], -1)
            np.add.at(self.down, (t[~was_up], ov[~was_up]), -1)
            is_up = lstar >= lw
            np.add.at(self.up_deg, t[is_up], 1)
            np.add.at(self.down[:, lstar], t[~is_up], 1)
        self._level_arr[movers] = lstar
        level = self.level
        for v in movers.tolist():
            level[v] = lstar


def make_store(
    backend: str, graph: DynamicGraph, params: LDSParams
) -> LevelStore:
    """Construct the level store named ``backend`` over ``graph``."""
    from repro.lds.bookkeeping import ObjectLevelStore

    if backend == "object":
        return ObjectLevelStore(graph, params)
    if backend == "columnar":
        return ColumnarLevelStore(graph, params)
    if backend == "columnar-frontier":
        return FrontierLevelStore(graph, params)
    raise ValueError(
        f"unknown level-store backend {backend!r} (available: {BACKENDS})"
    )
