"""Sequential Level Data Structure (Bhattacharya et al.; Henzinger et al.).

This is the classic single-update structure the paper's Section 3.1
describes: after each edge insertion or deletion, any vertex violating one of
the two degree invariants moves one level at a time (up for Invariant 1, down
for Invariant 2) until a fixpoint is reached; every move can cascade to
neighbours.  It maintains a (2+ε)-approximate coreness for every vertex.

The PLDS (:mod:`repro.lds.plds`) is the batch-parallel evolution of this
structure and shares its bookkeeping; this sequential version is kept as the
semantic reference — the test suite checks that both end up with levels that
satisfy the same invariants and yield estimates within the same bounds.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import LDSError
from repro.graph.dynamic_graph import DynamicGraph
from repro.lds.params import LDSParams
from repro.lds.store import LevelStore, make_store
from repro.types import Edge, Vertex


class LDS:
    """Sequential LDS over a dynamic graph.

    Parameters
    ----------
    num_vertices:
        Size of the vertex universe.
    params:
        Optional :class:`LDSParams`; defaults to the paper's (δ=0.2, λ=9).
    graph:
        Optional existing :class:`DynamicGraph` to adopt; it must be empty
        (bring edges in through :meth:`insert_edge` so levels stay correct).
    backend:
        Level-store backend name (``"object"`` or ``"columnar"``); see
        :mod:`repro.lds.store`.

    Examples
    --------
    >>> lds = LDS(5)
    >>> for e in [(0, 1), (0, 2), (1, 2)]:
    ...     _ = lds.insert_edge(*e)
    >>> lds.coreness_estimate(0) >= 1.0
    True
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        graph: DynamicGraph | None = None,
        backend: str = "object",
    ) -> None:
        if graph is not None and graph.num_edges:
            raise LDSError(
                "adopted graph must be empty; stream edges through insert_edge"
            )
        self.graph = graph if graph is not None else DynamicGraph(num_vertices)
        self.params = params if params is not None else LDSParams(num_vertices)
        self.state: LevelStore = make_store(backend, self.graph, self.params)
        self.backend = self.state.backend
        #: Safety valve for the rebalance fixpoint (theory guarantees
        #: termination; this catches implementation bugs loudly).
        self._max_moves = max(1, num_vertices) * self.params.num_levels * 4 + 64

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def level(self, v: Vertex) -> int:
        """The current level of ``v``."""
        return self.state.get_level(v)

    def coreness_estimate(self, v: Vertex) -> float:
        """The (2+ε)-approximate coreness of ``v`` (Definition 3.1)."""
        return self.params.coreness_estimate(self.state.get_level(v))

    def levels(self) -> list[int]:
        """A snapshot of all levels."""
        return self.state.levels_snapshot()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert ``(u, v)`` and rebalance; ``False`` if already present."""
        if not self.graph.insert_edge(u, v):
            return False
        self.state.on_edge_inserted(u, v)
        self._rebalance({u, v})
        return True

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete ``(u, v)`` and rebalance; ``False`` if absent."""
        if not self.graph.delete_edge(u, v):
            return False
        self.state.on_edge_deleted(u, v)
        self._rebalance({u, v})
        return True

    def insert_edges(self, edges: Iterable[Edge]) -> int:
        """Insert edges one at a time (sequential semantics); return count."""
        return sum(1 for u, v in edges if self.insert_edge(u, v))

    def delete_edges(self, edges: Iterable[Edge]) -> int:
        """Delete edges one at a time; return count."""
        return sum(1 for u, v in edges if self.delete_edge(u, v))

    # ------------------------------------------------------------------
    # CoreEngine adapter surface (see repro.engines)
    # ------------------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        """Engine-protocol alias: sequential one-at-a-time insertion."""
        return self.insert_edges(edges)

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        """Engine-protocol alias: sequential one-at-a-time deletion."""
        return self.delete_edges(edges)

    def read(self, v: Vertex) -> float:
        """Engine-protocol alias for :meth:`coreness_estimate`."""
        return self.coreness_estimate(v)

    def snapshot_state(self) -> dict:
        """Capture the full structure state (graph edges + level store)."""
        return {
            "edges": tuple(self.graph.edges()),
            "store": self.state.snapshot(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        self.graph.clear()
        self.graph.insert_batch(snap["edges"])
        self.state.restore(snap["store"])

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def _rebalance(self, seeds: set[Vertex]) -> None:
        """Move invariant violators one level at a time until fixpoint.

        The worklist over-approximates: after any move of ``v`` we re-enqueue
        ``v`` and all of its neighbours, which is always sound (a vertex whose
        invariants still hold is simply popped and dropped) and terminates by
        the LDS potential argument.
        """
        state = self.state
        work = set(seeds)
        moves = 0
        while work:
            v = work.pop()
            if not state.satisfies_invariant1(v):
                state.set_level(v, state.level[v] + 1)
            elif not state.satisfies_invariant2(v):
                state.set_level(v, state.level[v] - 1)
            else:
                continue
            moves += 1
            if moves > self._max_moves:
                raise LDSError(
                    "rebalance fixpoint exceeded the theoretical move budget; "
                    "this indicates a bookkeeping bug"
                )
            work.add(v)
            work.update(self.graph.neighbors_unsafe(v))

    # ------------------------------------------------------------------
    # Verification support
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise if any vertex violates Invariant 1 or 2 (quiescent use)."""
        from repro.lds.invariants import check_all_invariants

        check_all_invariants(self.state)
