"""Per-vertex level state and degree counters shared by LDS / PLDS / CPLDS.

For every vertex ``v`` the structure maintains:

* ``level[v]`` — v's current level (the *live level* read by CPLDS readers);
* ``up_deg[v]`` — the number of neighbours ``w`` with ``level[w] >= level[v]``
  (the induced degree in ``Z_{ℓ(v)}``, the quantity bounded by Invariant 1);
* ``down[v]`` — a sparse ``{level: count}`` map of neighbours strictly below
  ``v`` (zero entries pruned), from which Invariant 2 counts and desire
  levels are computed.

``level`` is a plain Python list of ints: element reads and writes are atomic
under the CPython GIL, which is exactly the single-word-read/write atomicity
the paper's algorithm assumes for ``LDS.get_level``.  The counter structures
are only ever touched by the update path, never by readers, so they need no
synchronisation in the single-writer configurations this library runs
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import LDSError
from repro.graph.dynamic_graph import DynamicGraph
from repro.lds.params import LDSParams
from repro.types import Vertex


class ObjectLevelStore:
    """Mutable level/degree bookkeeping for all vertices of one graph.

    The class is a pure state holder plus local update rules; the rebalancing
    *policies* (when to move which vertex) live in :class:`~repro.lds.lds.LDS`
    and :class:`~repro.lds.plds.PLDS`.

    This is the ``"object"`` backend of the :class:`~repro.lds.store.LevelStore`
    seam — the original plain-Python representation, kept as the semantic
    reference that the columnar backend is differentially tested against.
    """

    backend = "object"
    supports_bulk = False

    __slots__ = ("params", "graph", "level", "up_deg", "down")

    def __init__(self, graph: DynamicGraph, params: LDSParams) -> None:
        if params.num_vertices != graph.num_vertices:
            raise ValueError(
                f"params sized for n={params.num_vertices} but graph has "
                f"n={graph.num_vertices}"
            )
        self.params = params
        self.graph = graph
        n = graph.num_vertices
        self.level: list[int] = [0] * n
        self.up_deg: list[int] = [0] * n
        self.down: list[dict[int, int]] = [dict() for _ in range(n)]
        # Account for any edges already present in the graph (all vertices
        # start at level 0, so every existing neighbour is an up-neighbour).
        for v in range(n):
            self.up_deg[v] = graph.degree(v)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_level(self, v: Vertex) -> int:
        """The live level of ``v`` — a single atomic list read.

        This is the only method on this class that concurrent readers call.
        """
        return self.level[v]

    # ------------------------------------------------------------------
    # Edge bookkeeping (called after the graph itself has been mutated)
    # ------------------------------------------------------------------
    def on_edge_inserted(self, u: Vertex, v: Vertex) -> None:
        """Update counters for a newly inserted edge ``(u, v)``."""
        lu, lv = self.level[u], self.level[v]
        if lv >= lu:
            self.up_deg[u] += 1
        else:
            self.down[u][lv] = self.down[u].get(lv, 0) + 1
        if lu >= lv:
            self.up_deg[v] += 1
        else:
            self.down[v][lu] = self.down[v].get(lu, 0) + 1

    def on_edge_deleted(self, u: Vertex, v: Vertex) -> None:
        """Update counters for a just-deleted edge ``(u, v)``."""
        lu, lv = self.level[u], self.level[v]
        if lv >= lu:
            self.up_deg[u] -= 1
        else:
            self._dec_down(u, lv)
        if lu >= lv:
            self.up_deg[v] -= 1
        else:
            self._dec_down(v, lu)

    def _dec_down(self, v: Vertex, lvl: int) -> None:
        d = self.down[v]
        c = d[lvl] - 1
        if c:
            d[lvl] = c
        else:
            del d[lvl]

    # ------------------------------------------------------------------
    # Level changes
    # ------------------------------------------------------------------
    def set_level(self, v: Vertex, new_level: int) -> None:
        """Move ``v`` to ``new_level``, fixing all affected counters.

        O(deg(v)).  The live level write happens *last*, after every counter
        is consistent, so a concurrent reader either sees the old or the new
        level with matching semantics (counters are writer-private anyway).
        """
        old = self.level[v]
        if new_level == old:
            return
        if not 0 <= new_level < self.params.num_levels:
            raise ValueError(
                f"new_level {new_level} out of range [0, {self.params.num_levels})"
            )
        level = self.level
        lo, hi = (old, new_level) if old < new_level else (new_level, old)
        moving_up = new_level > old
        down_v = self.down[v]
        for w in self.graph.neighbors_unsafe(v):
            lw = level[w]
            # --- fix w's view of v ---
            was_up = old >= lw  # v counted in up_deg[w] before the move
            is_up = new_level >= lw
            if was_up and not is_up:
                self.up_deg[w] -= 1
                self.down[w][new_level] = self.down[w].get(new_level, 0) + 1
            elif not was_up and is_up:
                self._dec_down(w, old)
                self.up_deg[w] += 1
            elif not was_up and not is_up:
                self._dec_down(w, old)
                self.down[w][new_level] = self.down[w].get(new_level, 0) + 1
            # --- fix v's view of w ---
            if lw >= hi or lw < lo:
                continue  # w stays on the same side of v
            if moving_up:
                # old <= lw < new: w drops out of v's up set.
                self.up_deg[v] -= 1
                down_v[lw] = down_v.get(lw, 0) + 1
            else:
                # new <= lw < old: w joins v's up set.
                self._dec_down(v, lw)
                self.up_deg[v] += 1
        level[v] = new_level

    # ------------------------------------------------------------------
    # Invariant predicates
    # ------------------------------------------------------------------
    def satisfies_invariant1(self, v: Vertex) -> bool:
        """Degree upper bound: ``up_deg(v) <= (2+3/λ)(1+δ)^{group(ℓ)}``.

        Vertices on the top level cannot move up, so they vacuously satisfy
        the invariant (with theory-sized parameters the top level is never
        reached; shallow ``levels_per_group`` overrides can reach it).
        """
        lvl = self.level[v]
        if lvl >= self.params.max_level:
            return True
        return self.up_deg[v] <= self.params.upper_threshold(lvl)

    def satisfies_invariant2(self, v: Vertex) -> bool:
        """Degree lower bound: ``#nbrs at >= ℓ−1`` is at least ``(1+δ)^{group(ℓ−1)}``."""
        lvl = self.level[v]
        if lvl == 0:
            return True
        at_or_above = self.up_deg[v] + self.down[v].get(lvl - 1, 0)
        return at_or_above >= self.params.lower_threshold(lvl)

    def desire_level(self, v: Vertex) -> int:
        """The highest level ``d <= ℓ(v)`` at which ``v`` satisfies Invariant 2.

        Feasibility is downward-closed (lowering ``d`` only adds neighbours to
        the count and weakens the threshold), so the maximum feasible level is
        found by scanning candidate *breakpoints* — the only levels where the
        count or the threshold can change — from high to low.  Breakpoints are
        ``ℓ`` itself, ``key+1`` for every populated down-level, and group
        boundaries; this keeps the scan O(deg + num_groups) instead of O(K).
        """
        lvl = self.level[v]
        if lvl == 0:
            return 0
        params = self.params
        height = params.group_height
        down_v = self.down[v]

        bps = {lvl}
        for key in down_v:
            d = key + 1
            if 1 <= d <= lvl:
                bps.add(d)
        # Threshold drops when d crosses a multiple of the group height.
        g = height
        while g <= lvl:
            bps.add(g)
            g += height

        keys_desc = sorted(down_v, reverse=True)
        ki = 0
        cnt = self.up_deg[v]  # neighbours at >= lvl so far
        for d in sorted(bps, reverse=True):
            # Fold in down-neighbours at levels >= d − 1.
            while ki < len(keys_desc) and keys_desc[ki] >= d - 1:
                cnt += down_v[keys_desc[ki]]
                ki += 1
            if cnt >= params.lower_threshold(d):
                return d
        return 0

    # ------------------------------------------------------------------
    # Consistency checking (test / debug support)
    # ------------------------------------------------------------------
    def recompute_counters(self) -> tuple[list[int], list[dict[int, int]]]:
        """Recompute ``up_deg`` / ``down`` from scratch (for verification)."""
        n = self.graph.num_vertices
        up = [0] * n
        down: list[dict[int, int]] = [dict() for _ in range(n)]
        for v in range(n):
            lv = self.level[v]
            for w in self.graph.neighbors_unsafe(v):
                lw = self.level[w]
                if lw >= lv:
                    up[v] += 1
                else:
                    down[v][lw] = down[v].get(lw, 0) + 1
        return up, down

    def assert_counters_consistent(self) -> None:
        """Raise ``AssertionError`` if any counter drifted from the graph."""
        up, down = self.recompute_counters()
        for v in range(self.graph.num_vertices):
            if up[v] != self.up_deg[v]:
                raise AssertionError(
                    f"up_deg[{v}] = {self.up_deg[v]}, recomputed {up[v]}"
                )
            if down[v] != self.down[v]:
                raise AssertionError(
                    f"down[{v}] = {self.down[v]}, recomputed {down[v]}"
                )

    def levels_snapshot(self) -> list[int]:
        """A copy of all live levels (quiescent use only)."""
        return list(self.level)

    def snapshot_levels(self) -> list[int]:
        """An indexable copy of the live levels (same as the list snapshot)."""
        return list(self.level)

    def apply_edges(
        self, edges: Iterable[tuple[Vertex, Vertex]], kind: str
    ) -> list[tuple[Vertex, Vertex]]:
        """Apply one pre-filtered batch to the graph, then fix counters.

        Callers (PLDS) canonicalise and dedup the batch against the graph
        first, so the whole batch goes through ``insert_batch``/``delete_batch``
        in one call; the per-edge counter updates are order-independent
        because levels are held fixed while a batch is applied.
        """
        batch = list(edges)
        if not batch:
            return batch
        if kind == "insert":
            applied = self.graph.insert_batch(batch)
            book_op = self.on_edge_inserted
        elif kind == "delete":
            applied = self.graph.delete_batch(batch)
            book_op = self.on_edge_deleted
        else:
            raise ValueError(f"unknown edge-batch kind {kind!r}")
        if applied != len(batch):
            raise LDSError(
                f"apply_edges expects a pre-filtered batch: {len(batch)} "
                f"edges submitted but {applied} applied"
            )
        for u, v in batch:
            book_op(u, v)
        return batch

    # ------------------------------------------------------------------
    # State management (snapshot / restore / reload)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all levels and recompute counters for the current graph
        (every vertex back at level 0)."""
        n = self.graph.num_vertices
        self.level[:] = [0] * n
        self.down[:] = [dict() for _ in range(n)]
        self.up_deg[:] = [self.graph.degree(v) for v in range(n)]

    def load_levels(self, levels) -> None:
        """Adopt a level assignment and rebuild all counters from the graph."""
        n = self.graph.num_vertices
        lv = [int(x) for x in levels]
        if len(lv) != n:
            raise ValueError(f"expected {n} levels, got {len(lv)}")
        if lv and (min(lv) < 0 or max(lv) >= self.params.num_levels):
            raise ValueError("level assignment out of range")
        self.level[:] = lv
        up, down = self.recompute_counters()
        self.up_deg[:] = up
        self.down[:] = down

    def snapshot(self):
        """A deep-enough copy of the full counter state (levels + degrees)."""
        return (
            list(self.level),
            list(self.up_deg),
            [dict(d) for d in self.down],
        )

    def restore(self, snap) -> None:
        """Restore a :meth:`snapshot` (the snapshot stays reusable).

        ``level``/``up_deg`` are written in place so references held by the
        read hot path stay valid.
        """
        level, up_deg, down = snap
        self.level[:] = level
        self.up_deg[:] = up_deg
        self.down[:] = [dict(d) for d in down]


#: Historical name for the object backend, kept for callers/tests that
#: predate the LevelStore seam.
LevelState = ObjectLevelStore
