"""LDS parameterisation: levels, groups and invariant thresholds.

The level data structure partitions its ``K`` levels into groups; all
structures in this library share this arithmetic, so it lives in one place.

Following the paper (Sections 3.1 and 3.2):

* there are ``⌈log_{1+δ} n⌉`` groups;
* each group has ``4⌈log_{1+δ} n⌉`` levels (Definition 3.1), unless overridden
  by the ``levels_per_group`` argument — the paper's experiments run the
  original PLDS code with ``-opt 20``, a shallower structure that "speeds up
  the code but degrades its approximation error", reproduced here by passing
  ``levels_per_group=20``;
* Invariant 1 (degree upper bound) threshold for a vertex on a level in group
  ``i`` is ``(2 + 3/λ)(1+δ)^i``;
* Invariant 2 (degree lower bound) threshold for group ``i`` is ``(1+δ)^i``;
* the coreness estimate of a vertex on level ``ℓ`` is
  ``(1+δ)^{max(⌊(ℓ+1)/levels_per_group⌋ − 1, 0)}``.

The paper's experiments use ``δ = 0.2`` and ``λ = 9``, giving a theoretical
approximation factor of ``(2 + 3/λ)(1+δ) ≈ 2.8``; those are the defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LDSParams:
    """Immutable parameter pack for one level data structure instance.

    Parameters
    ----------
    num_vertices:
        ``n``; fixes the number of groups and (by default) the group height.
    delta:
        The ``δ > 0`` constant; controls the geometric growth of thresholds.
    lam:
        The ``λ > 0`` constant of Invariant 1 (``lambda`` is reserved).
    levels_per_group:
        Override for the per-group height.  ``None`` (default) uses the
        theoretical ``4⌈log_{1+δ} n⌉``; the paper's benchmarks use ``20``.
    """

    num_vertices: int
    delta: float = 0.2
    lam: float = 9.0
    levels_per_group: int | None = None

    # Derived fields, computed in __post_init__.
    log_base: float = field(init=False)
    num_groups: int = field(init=False)
    group_height: int = field(init=False)
    num_levels: int = field(init=False)
    #: ``estimate_table[ℓ]`` is the coreness estimate for level ℓ.
    estimate_table: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        if self.delta <= 0:
            raise ValueError("delta must be > 0")
        if self.lam <= 0:
            raise ValueError("lam must be > 0")
        if self.levels_per_group is not None and self.levels_per_group < 1:
            raise ValueError("levels_per_group override must be >= 1")

        n = max(self.num_vertices, 2)
        log_n = math.log(n) / math.log(1.0 + self.delta)
        object.__setattr__(self, "log_base", 1.0 + self.delta)
        num_groups = max(1, math.ceil(log_n))
        object.__setattr__(self, "num_groups", num_groups)
        height = (
            self.levels_per_group
            if self.levels_per_group is not None
            else max(1, 4 * math.ceil(log_n))
        )
        object.__setattr__(self, "group_height", height)
        object.__setattr__(self, "num_levels", num_groups * height)
        # Precomputed per-level estimates: the read hot path is a single
        # tuple index instead of a float pow (see coreness_estimate).
        table = tuple(
            (1.0 + self.delta) ** max((lvl + 1) // height - 1, 0)
            for lvl in range(num_groups * height)
        )
        object.__setattr__(self, "estimate_table", table)

    # ------------------------------------------------------------------
    # Group arithmetic
    # ------------------------------------------------------------------
    def group_of_level(self, level: int) -> int:
        """The group index ``i`` that ``level`` belongs to."""
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} out of range [0, {self.num_levels})"
            )
        return level // self.group_height

    @property
    def max_level(self) -> int:
        """The topmost level index, ``K − 1``."""
        return self.num_levels - 1

    # ------------------------------------------------------------------
    # Invariant thresholds
    # ------------------------------------------------------------------
    def upper_threshold(self, level: int) -> float:
        """Invariant 1 bound for a vertex on ``level``: ``(2+3/λ)(1+δ)^i``.

        A vertex on this level with *more* same-or-higher-level neighbours
        than this violates Invariant 1 and must move up.
        """
        i = self.group_of_level(level)
        return (2.0 + 3.0 / self.lam) * (1.0 + self.delta) ** i

    def lower_threshold(self, level: int) -> float:
        """Invariant 2 bound for a vertex on ``level > 0``: ``(1+δ)^i``
        where ``i`` is the group of ``level − 1``.

        A vertex on this level with *fewer* neighbours at ``level − 1`` or
        above than this violates Invariant 2 and must move down.
        """
        if level <= 0:
            return 0.0  # level 0 trivially satisfies Invariant 2
        i = self.group_of_level(level - 1)
        return (1.0 + self.delta) ** i

    # ------------------------------------------------------------------
    # Coreness estimate (Definition 3.1)
    # ------------------------------------------------------------------
    def coreness_estimate(self, level: int) -> float:
        """The (2+ε)-approximate coreness of a vertex on ``level``."""
        return self.estimate_table[level]

    def theoretical_approximation_factor(self) -> float:
        """The worst-case factor ``(2 + 3/λ)(1 + δ)`` of Lemma 3.2.

        For the paper's defaults (δ=0.2, λ=9) this is 2.8, the blue line of
        Fig 6.
        """
        return (2.0 + 3.0 / self.lam) * (1.0 + self.delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LDSParams(n={self.num_vertices}, δ={self.delta}, λ={self.lam}, "
            f"groups={self.num_groups} × {self.group_height} levels = "
            f"{self.num_levels})"
        )
