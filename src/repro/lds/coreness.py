"""Coreness-estimate formula (Definition 3.1) and Lemma 3.2 helpers.

These are free functions so that readers (which must not touch any mutable
structure beyond the live-level array and descriptors) can map a level to an
estimate without holding the LDS object itself.
"""

from __future__ import annotations

from repro.lds.params import LDSParams


def coreness_estimate(params: LDSParams, level: int) -> float:
    """``k̂ = (1+δ)^{max(⌊(ℓ+1)/group_height⌋ − 1, 0)}`` for a vertex on ``level``."""
    return params.coreness_estimate(level)


def approximation_factor(estimate: float, exact: int) -> float:
    """The symmetric error factor ``max(k̂/k, k/k̂)`` between estimate and truth.

    Vertices of coreness 0 are excluded from error statistics (any positive
    estimate would make the ratio infinite; the paper's error plots likewise
    aggregate only over vertices with defined ratios).  Returns 1.0 when both
    sides agree that the vertex is coreless.
    """
    if exact <= 0:
        return 1.0 if estimate <= 1.0 else float(estimate)
    if estimate <= 0:
        return float("inf")
    ratio = estimate / exact
    return ratio if ratio >= 1.0 else 1.0 / ratio


def lemma_3_2_bounds(params: LDSParams, exact: int) -> tuple[float, float]:
    """The (loose) interval the estimate must fall in per Lemma 3.2.

    For true coreness ``k(v)``, the lemma implies
    ``k(v) / ((2 + 3/λ)(1+δ)) <= k̂(v) <= (2 + 3/λ)(1+δ) · k(v)``
    whenever ``k(v) >= 1`` (up to one geometric step of slack, which we
    include).  Used by property tests to sanity-check steady-state estimates.
    """
    c = params.theoretical_approximation_factor()
    slack = 1.0 + params.delta
    if exact <= 0:
        return (0.0, c * slack)
    return (exact / (c * slack), exact * c * slack)
