"""Whole-batch union-find over a numpy parent forest.

The frontier engine (:mod:`repro.core.frontier`) merges dependency DAGs for
*every* move of a batch at once, so the per-call structures in
:mod:`repro.unionfind.sequential` / :mod:`~repro.unionfind.concurrent` become
the bottleneck: one Python-level ``find`` loop per pair.  This module keeps
the same deterministic *min-id root* linking discipline but executes both
operations as array passes:

* :meth:`VectorizedUnionFind.find_many` — vectorized path halving.  Each
  pass replaces every unfinished walker with its grandparent and compresses
  ``parent`` along the way; the number of passes is the maximum tree depth,
  which stays tiny because every pass halves every path it touches.
* :meth:`VectorizedUnionFind.union_pairs` — grouped linking via
  sort + ``reduceat``: resolve both endpoints to roots, sort the (hi, lo)
  root pairs by hi, take the per-group minimum lo with
  ``np.minimum.reduceat``, and point each hi root at that minimum.  Every
  link goes from a larger id to a strictly smaller id, so the forest stays
  acyclic, and iterating to a fixed point yields exactly the components —
  with the same min-id representatives — that pairwise
  :class:`~repro.unionfind.sequential.SequentialUnionFind` unions produce.

The parent array uses the *self-root* convention (``parent[x] == x`` means
root), matching ``np.arange`` initialisation, so a freshly reset forest needs
no sentinel handling.  ``benchmarks/bench_unionfind.py`` measures the
crossover against the sequential baseline.
"""

from __future__ import annotations

import numpy as np


class VectorizedUnionFind:
    """Array union-find over ``0..n-1`` with batch ``find`` / ``union``.

    >>> uf = VectorizedUnionFind(6)
    >>> uf.union_pairs(np.array([4, 2]), np.array([5, 4]))
    >>> uf.find_many(np.array([5, 3])).tolist()
    [2, 3]
    """

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.parent = np.arange(n, dtype=np.int64)

    # ------------------------------------------------------------------
    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Roots of every element of ``xs``, compressing paths as it goes."""
        parent = self.parent
        roots = np.asarray(xs, dtype=np.int64).copy()
        if roots.size == 0:
            return roots
        while True:
            p = parent[roots]
            done = p == roots
            if done.all():
                return roots
            # Path halving: point each unfinished walker's current node at
            # its grandparent, then step the walker there.
            gp = parent[p]
            live = ~done
            parent[roots[live]] = gp[live]
            roots = np.where(done, roots, gp)

    def find(self, x: int) -> int:
        """Scalar convenience wrapper over :meth:`find_many`."""
        return int(self.find_many(np.array([x], dtype=np.int64))[0])

    # ------------------------------------------------------------------
    def union_pairs(self, a: np.ndarray, b: np.ndarray) -> None:
        """Merge ``a[i]`` with ``b[i]`` for every ``i`` (min-id roots).

        Equivalent to calling ``union(a[i], b[i])`` pairwise in any order:
        min-id linking makes the final representatives order-independent.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.size == 0:
            return
        parent = self.parent
        while True:
            ra = self.find_many(a)
            rb = self.find_many(b)
            ne = ra != rb
            if not ne.any():
                return
            hi = np.maximum(ra[ne], rb[ne])
            lo = np.minimum(ra[ne], rb[ne])
            order = np.argsort(hi, kind="stable")
            hs, ls = hi[order], lo[order]
            starts = np.flatnonzero(np.r_[True, hs[1:] != hs[:-1]])
            gmin = np.minimum.reduceat(ls, starts)
            heads = hs[starts]
            # Each link strictly decreases the id along the chain, so no
            # pass can create a cycle even when groups collide.
            parent[heads] = np.minimum(parent[heads], gmin)

    # ------------------------------------------------------------------
    def reset(self, xs: np.ndarray) -> None:
        """Make every element of ``xs`` a singleton root again."""
        self.parent[xs] = xs

    def num_sets(self) -> int:
        """Number of disjoint sets (O(n); for tests and benchmarks)."""
        n = len(self.parent)
        if n == 0:
            return 0
        roots = self.find_many(np.arange(n, dtype=np.int64))
        return int(np.unique(roots).size)
