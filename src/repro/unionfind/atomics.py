"""Atomic primitives: CAS cells emulated with striped locks.

CPython offers no user-level compare-and-swap, so — per the substitution
table in DESIGN.md — a CAS is encoded as a read-modify-write under a lock.
This is *semantically* identical to a hardware CAS (it is atomic with respect
to every other accessor of the same cell and supports the usual retry-loop
idioms); what it costs is the lock acquisition, which we keep cheap by
striping a fixed pool of locks across cells instead of allocating one lock
per cell per batch.

Plain loads and stores of Python object references are already atomic under
the GIL, so ``load``/``store`` are direct attribute accesses.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Generic, TypeVar

T = TypeVar("T")

#: Number of striped locks shared by all AtomicCell instances.  64 matches a
#: plausible cache-line-sharding factor and keeps contention negligible for
#: the thread counts this library runs (≤ ~32).
_NUM_STRIPES = 64
_STRIPES = [threading.Lock() for _ in range(_NUM_STRIPES)]
_stripe_counter = itertools.count()


class AtomicCell(Generic[T]):
    """A single mutable cell with atomic ``compare_exchange``.

    >>> cell = AtomicCell(0)
    >>> cell.compare_exchange(0, 5)
    True
    >>> cell.compare_exchange(0, 7)
    False
    >>> cell.load()
    5
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: T) -> None:
        self._value = value
        self._lock = _STRIPES[next(_stripe_counter) % _NUM_STRIPES]

    def load(self) -> T:
        """Atomic read (a GIL-atomic attribute load)."""
        return self._value

    def store(self, value: T) -> None:
        """Atomic unconditional write."""
        self._value = value

    def compare_exchange(self, expected: T, new: T) -> bool:
        """Atomically set the cell to ``new`` iff it currently equals
        ``expected`` (identity-or-equality: ``is`` first, ``==`` fallback);
        return whether the swap happened."""
        with self._lock:
            cur = self._value
            if cur is expected or cur == expected:
                self._value = new
                return True
            return False

    def swap(self, new: T) -> T:
        """Atomically replace the value, returning the previous one."""
        with self._lock:
            old = self._value
            self._value = new
            return old


class AtomicCounter:
    """A monotonically adjustable integer with atomic fetch-and-add.

    Used for batch numbers and telemetry counters shared across threads.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    def load(self) -> int:
        return self._value

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta``; return the value *before* the addition."""
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def add(self, delta: int = 1) -> int:
        """Add ``delta``; return the value *after* the addition."""
        return self.fetch_add(delta) + delta


def cas_slot(owner: Any, attr: str, expected: Any, new: Any, lock: threading.Lock) -> bool:
    """CAS an arbitrary attribute under an external lock.

    Helper for structures (like descriptors) whose fields are CAS'd without
    wrapping each field in an :class:`AtomicCell`.
    """
    with lock:
        cur = getattr(owner, attr)
        if cur is expected or cur == expected:
            setattr(owner, attr, new)
            return True
        return False


def stripe_lock_for(index: int) -> threading.Lock:
    """A deterministic striped lock for an integer key (e.g. a vertex id)."""
    return _STRIPES[index % _NUM_STRIPES]
