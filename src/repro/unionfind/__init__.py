"""Union-find substrates.

The CPLDS merges dependency DAGs with the same mechanics as concurrent
union-find (the paper reuses the Jayanti–Tarjan-style implementation from
ConnectIt).  This package provides:

* :mod:`repro.unionfind.atomics` — CAS cells standing in for hardware
  compare-and-swap (see DESIGN.md substitution table);
* :mod:`repro.unionfind.sequential` — the classic array-based structure with
  path compression (reference semantics and a baseline);
* :mod:`repro.unionfind.concurrent` — a CAS-loop union-find safe under
  concurrent ``union``/``find`` callers, with deterministic min-id roots,
  exactly the linking discipline the CPLDS descriptor DAGs use.
"""

from repro.unionfind.atomics import AtomicCell, AtomicCounter
from repro.unionfind.sequential import SequentialUnionFind
from repro.unionfind.concurrent import ConcurrentUnionFind

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "SequentialUnionFind",
    "ConcurrentUnionFind",
]
