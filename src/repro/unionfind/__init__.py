"""Union-find substrates.

The CPLDS merges dependency DAGs with the same mechanics as concurrent
union-find (the paper reuses the Jayanti–Tarjan-style implementation from
ConnectIt).  This package provides:

* :mod:`repro.unionfind.atomics` — CAS cells standing in for hardware
  compare-and-swap (see DESIGN.md substitution table);
* :mod:`repro.unionfind.sequential` — the classic array-based structure with
  path compression (reference semantics and a baseline);
* :mod:`repro.unionfind.concurrent` — a CAS-loop union-find safe under
  concurrent ``union``/``find`` callers, with deterministic min-id roots,
  exactly the linking discipline the CPLDS descriptor DAGs use;
* :mod:`repro.unionfind.vectorized` — a numpy parent forest with batched
  ``find_many`` (vectorized path halving) and ``union_pairs`` (grouped
  sort + reduceat linking), used by the ``columnar-frontier`` engine to
  merge a whole batch of dependency-DAG edges in a handful of array passes.
"""

from repro.unionfind.atomics import AtomicCell, AtomicCounter
from repro.unionfind.sequential import SequentialUnionFind
from repro.unionfind.concurrent import ConcurrentUnionFind
from repro.unionfind.vectorized import VectorizedUnionFind

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "SequentialUnionFind",
    "ConcurrentUnionFind",
    "VectorizedUnionFind",
]
