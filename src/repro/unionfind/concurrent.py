"""Concurrent union-find: CAS-loop linking with min-id roots.

This follows the structure of the Jayanti–Tarjan concurrent disjoint-set
algorithms the paper reuses via ConnectIt [28, 47]: ``union`` finds the two
roots, then tries to CAS the larger-id root's parent pointer from *self* to
the smaller root, retrying from fresh ``find``s on contention.  ``find``
performs path compression by CAS (a failed compression write is simply
skipped — some other thread already installed an equal-or-better parent).

Safety properties relied on by the CPLDS descriptor DAGs (and tested in
``tests/test_unionfind.py``):

* the parent graph is acyclic at all times (links always point to a strictly
  smaller root id at link time; compression writes only ancestors);
* once two elements are in the same set they stay in the same set;
* concurrent unions of overlapping sets converge to the same min-id
  representative as a sequential execution of any interleaving.
"""

from __future__ import annotations

from repro.obs import REGISTRY as _OBS
from repro.unionfind.atomics import stripe_lock_for

# Cached metric handles; every site below is guarded by ``_OBS.enabled``
# so the disabled cost is one branch per operation.
_FINDS = _OBS.counter("unionfind_finds_total")
_UNIONS = _OBS.counter("unionfind_unions_total")
_COMPRESSIONS = _OBS.counter("unionfind_compressions_total")
_UNION_RETRIES = _OBS.counter("unionfind_union_retries_total")


class ConcurrentUnionFind:
    """Union-find over ``0..n-1`` safe for concurrent ``union`` and ``find``.

    The parent array is a plain Python list (element loads/stores are
    GIL-atomic); CAS on a slot is emulated with striped locks, per the
    DESIGN.md substitution rules.
    """

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.parent = list(range(n))

    # ------------------------------------------------------------------
    # CAS on a parent slot
    # ------------------------------------------------------------------
    def _cas_parent(self, x: int, expected: int, new: int) -> bool:
        with stripe_lock_for(x):
            if self.parent[x] == expected:
                self.parent[x] = new
                return True
            return False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Current representative of ``x``, compressing the traversed path.

        Wait-free for a fixed set of completed unions; lock-free in general
        (a retry implies another thread completed a link).
        """
        parent = self.parent
        root = x
        while True:
            p = parent[root]
            if p == root:
                break
            root = p
        # Compress: every traversed node may point at the discovered root.
        # Races are benign — we only overwrite values we just observed, and
        # the observed parent is always an ancestor of the node.
        node = x
        compressed = 0
        while node != root:
            p = parent[node]
            if p == root:
                break
            if self._cas_parent(node, p, root):
                compressed += 1
            node = p
        if _OBS.enabled:
            _FINDS.inc()
            if compressed:
                _COMPRESSIONS.inc(compressed)
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the representative.

        The retry loop is the standard lock-free pattern: a failed CAS means
        a concurrent link changed one of the roots, so re-``find`` and retry.
        """
        if _OBS.enabled:
            _UNIONS.inc()
        while True:
            ra, rb = self.find(a), self.find(b)
            if ra == rb:
                return ra
            winner, loser = (ra, rb) if ra < rb else (rb, ra)
            if self._cas_parent(loser, loser, winner):
                return winner
            # Contention: someone linked `loser` elsewhere; retry from finds.
            if _OBS.enabled:
                _UNION_RETRIES.inc()

    def same_set(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set.

        Only a stable answer when no concurrent unions straddle the call —
        exactly the quiescence the CPLDS guarantees when it queries DAGs.
        """
        return self.find(a) == self.find(b)

    def roots(self) -> list[int]:
        """All current representatives (quiescent use)."""
        return [x for x in range(len(self.parent)) if self.parent[x] == x]
