"""Classic sequential union-find with path compression.

Reference semantics for the concurrent variant's tests, and the "sole root is
the smallest id" linking discipline the CPLDS dependency DAGs rely on: with
deterministic linking, the representative of a set is reproducible across
runs, which keeps the whole experiment harness deterministic.
"""

from __future__ import annotations


class SequentialUnionFind:
    """Array-based union-find over elements ``0..n-1``.

    Linking is *by minimum id* (the smaller root becomes the representative)
    rather than by rank: deterministic representatives matter more to this
    library than the last log factor, and with path compression the observed
    depth stays tiny at our scales.

    >>> uf = SequentialUnionFind(4)
    >>> uf.union(2, 3)
    2
    >>> uf.find(3)
    2
    >>> uf.same_set(0, 3)
    False
    """

    __slots__ = ("parent", "_num_sets")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.parent = list(range(n))
        self._num_sets = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set, with full path compression."""
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        winner, loser = (ra, rb) if ra < rb else (rb, ra)
        self.parent[loser] = winner
        self._num_sets -= 1
        return winner

    def same_set(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets remaining."""
        return self._num_sets

    def sets(self) -> dict[int, list[int]]:
        """All sets as ``{representative: sorted members}`` (diagnostics)."""
        out: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
