"""Union-find strategy variants (the ConnectIt design space).

The paper reuses "the union implementation described in [Jayanti–Tarjan]
and implemented in [ConnectIt]"; ConnectIt itself is a *framework* of find
and compaction strategies.  This module reproduces the relevant slice of
that design space so the choice the CPLDS depends on can be studied:

* **find strategies** — ``naive`` (no writes), ``compress`` (full path
  compression), ``split`` (path splitting: every node re-points to its
  grandparent), ``halve`` (path halving: every other node re-points);
* **link strategy** — deterministic min-id linking with a CAS loop, as in
  :class:`~repro.unionfind.concurrent.ConcurrentUnionFind` (kept fixed:
  deterministic roots are what the descriptor DAGs need).

All variants are interchangeable semantically (same partition, same
representatives); they differ in pointer-chase length and write traffic,
which ``benchmarks/bench_unionfind.py`` measures.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.unionfind.atomics import stripe_lock_for

FindStrategy = Literal["naive", "compress", "split", "halve"]

FIND_STRATEGIES: tuple[FindStrategy, ...] = ("naive", "compress", "split", "halve")


class VariantUnionFind:
    """Concurrent-discipline union-find with a pluggable find strategy.

    >>> uf = VariantUnionFind(4, find_strategy="halve")
    >>> uf.union(3, 1)
    1
    >>> uf.find(3)
    1
    """

    __slots__ = ("parent", "find_strategy", "_find", "pointer_hops")

    def __init__(self, n: int, find_strategy: FindStrategy = "compress") -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        if find_strategy not in FIND_STRATEGIES:
            raise ValueError(
                f"unknown find strategy {find_strategy!r}; "
                f"choose from {FIND_STRATEGIES}"
            )
        self.parent = list(range(n))
        self.find_strategy = find_strategy
        self._find: Callable[[int], int] = getattr(self, f"_find_{find_strategy}")
        #: Total parent-pointer dereferences (work metric for the bench).
        self.pointer_hops = 0

    # ------------------------------------------------------------------
    def _cas_parent(self, x: int, expected: int, new: int) -> bool:
        with stripe_lock_for(x):
            if self.parent[x] == expected:
                self.parent[x] = new
                return True
            return False

    # ------------------------------------------------------------------
    # Find variants
    # ------------------------------------------------------------------
    def _find_naive(self, x: int) -> int:
        parent = self.parent
        while True:
            p = parent[x]
            self.pointer_hops += 1
            if p == x:
                return x
            x = p

    def _find_compress(self, x: int) -> int:
        parent = self.parent
        root = x
        while True:
            p = parent[root]
            self.pointer_hops += 1
            if p == root:
                break
            root = p
        node = x
        while node != root:
            p = parent[node]
            if p == root:
                break
            self._cas_parent(node, p, root)
            node = p
        return root

    def _find_split(self, x: int) -> int:
        """Path splitting: point every traversed node at its grandparent."""
        parent = self.parent
        while True:
            p = parent[x]
            self.pointer_hops += 1
            if p == x:
                return x
            gp = parent[p]
            if gp != p:
                self._cas_parent(x, p, gp)
            x = p

    def _find_halve(self, x: int) -> int:
        """Path halving: like splitting, but hop to the grandparent."""
        parent = self.parent
        while True:
            p = parent[x]
            self.pointer_hops += 1
            if p == x:
                return x
            gp = parent[p]
            if gp == p:
                return p
            self._cas_parent(x, p, gp)
            x = gp

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Current representative of ``x`` under the configured strategy."""
        return self._find(x)

    def union(self, a: int, b: int) -> int:
        """CAS-loop min-id union (identical across variants)."""
        while True:
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                return ra
            winner, loser = (ra, rb) if ra < rb else (rb, ra)
            if self._cas_parent(loser, loser, winner):
                return winner

    def same_set(self, a: int, b: int) -> bool:
        return self._find(a) == self._find(b)

    def roots(self) -> list[int]:
        return [x for x in range(len(self.parent)) if self.parent[x] == x]
