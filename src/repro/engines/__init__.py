"""Engine registry: the single construction path for k-core engines.

Everything above the data-structure layer — runtime services, the
experiment harness, workload replay, benchmarks — builds engines through
:func:`create` instead of naming concrete classes, so both the engine
*algorithm* (``"cplds"``, ``"nonsync"``, ...) and the level-store
*backend* (``"object"``, ``"columnar"``, ``"columnar-frontier"``) are
late-bound configuration — the ``cplds`` factory routes the frontier
backend to the vectorized :class:`repro.core.frontier.FrontierCPLDS`:

>>> from repro import engines
>>> eng = engines.create("cplds", 100, backend="columnar")
>>> eng.insert_batch([(0, 1), (1, 2), (0, 2)])
3
>>> sorted(engines.available())[:2]
['cplds', 'lds']

New engines register with :func:`register`; the registry is deliberately a
plain dict so extensions (and tests) can add entries without import-order
tricks.
"""

from __future__ import annotations

from typing import Callable

from repro.core.baselines import NonSyncKCore, SyncReadsKCore
from repro.core.cplds import CPLDS
from repro.core.naive import NaiveMarkedKCore
from repro.engines.base import CoreEngine
from repro.lds.lds import LDS
from repro.lds.plds import PLDS
from repro.lds.store import BACKENDS

__all__ = [
    "CoreEngine",
    "available",
    "backends",
    "create",
    "register",
]

EngineFactory = Callable[..., CoreEngine]


def _make_lds(num_vertices: int, *, params=None, executor=None, **kwargs):
    if executor is not None:
        raise ValueError("the sequential LDS does not take an executor")
    return LDS(num_vertices, params=params, **kwargs)


def _make_plds(num_vertices: int, *, params=None, executor=None, **kwargs):
    return PLDS(num_vertices, params=params, executor=executor, **kwargs)


def _make_cplds(
    num_vertices: int, *, params=None, executor=None, backend="object", **kwargs
):
    if backend == "columnar-frontier":
        from repro.core.frontier import FrontierCPLDS

        return FrontierCPLDS(
            num_vertices,
            params=params,
            executor=executor,
            backend=backend,
            **kwargs,
        )
    return CPLDS(
        num_vertices, params=params, executor=executor, backend=backend, **kwargs
    )


def _make_nonsync(num_vertices: int, *, params=None, executor=None, **kwargs):
    return NonSyncKCore(num_vertices, params=params, executor=executor, **kwargs)


def _make_syncreads(num_vertices: int, *, params=None, executor=None, **kwargs):
    return SyncReadsKCore(num_vertices, params=params, executor=executor, **kwargs)


def _make_naive(num_vertices: int, *, params=None, executor=None, **kwargs):
    return NaiveMarkedKCore(num_vertices, params=params, executor=executor, **kwargs)


_FACTORIES: dict[str, EngineFactory] = {
    "lds": _make_lds,
    "plds": _make_plds,
    "cplds": _make_cplds,
    "nonsync": _make_nonsync,
    "syncreads": _make_syncreads,
    "naive": _make_naive,
}


def register(name: str, factory: EngineFactory, *, replace: bool = False) -> None:
    """Register an engine factory under ``name``.

    The factory must accept ``(num_vertices, *, params, executor, backend,
    **kwargs)`` and return a :class:`CoreEngine`.
    """
    if name in _FACTORIES and not replace:
        raise ValueError(f"engine {name!r} already registered")
    _FACTORIES[name] = factory


def available() -> tuple[str, ...]:
    """Names of all registered engines."""
    return tuple(sorted(_FACTORIES))


def backends() -> tuple[str, ...]:
    """Names of all level-store backends."""
    return BACKENDS


def create(
    name: str,
    num_vertices: int,
    *,
    backend: str = "object",
    params=None,
    executor=None,
    epoch_store=None,
    **kwargs,
) -> CoreEngine:
    """Construct the engine ``name`` over ``num_vertices`` vertices.

    ``backend`` selects the level-store layout (see
    :mod:`repro.lds.store`); ``epoch_store`` optionally attaches a
    :class:`repro.reads.EpochSnapshotStore` so the engine publishes a
    level snapshot per batch epoch (CPLDS family only); every other
    keyword is passed through to the engine's constructor.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r} (available: {', '.join(available())})"
        ) from None
    engine = factory(
        num_vertices, params=params, executor=executor, backend=backend, **kwargs
    )
    if epoch_store is not None:
        from repro.reads import attach_epoch_store

        attach_epoch_store(engine, epoch_store)
    return engine
