"""The ``CoreEngine`` protocol: what every k-core engine must expose.

An *engine* is any object that maintains an approximate k-core
decomposition under batched edge updates — the sequential LDS, the batch
PLDS, the concurrent CPLDS and its paper baselines all qualify.  The
protocol is the structural contract the registry
(:mod:`repro.engines`) hands out, and the surface runtime/, harness/,
workloads/ and benchmarks/ are written against.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.types import Edge, Vertex


@runtime_checkable
class CoreEngine(Protocol):
    """Structural interface of a k-core engine.

    All methods are quiescent-or-better: ``read`` may additionally be safe
    under a concurrent batch (CPLDS), but the protocol only promises the
    single-writer sequential contract.
    """

    def insert_batch(self, edges: Iterable[Edge]) -> int:
        """Apply an insertion batch; return the number of new edges."""
        ...

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        """Apply a deletion batch; return the number of removed edges."""
        ...

    def read(self, v: Vertex) -> float:
        """The engine's current coreness estimate of ``v``."""
        ...

    def levels(self) -> list[int]:
        """Snapshot of all levels (quiescent use)."""
        ...

    def snapshot_state(self):
        """Capture the full quiescent state for later :meth:`restore_state`."""
        ...

    def restore_state(self, snap) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        ...
