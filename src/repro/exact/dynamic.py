"""Exact *dynamic* k-core maintenance (the related-work baseline class).

The paper's related work compares the approximate batch-dynamic approach
against exact core-maintenance algorithms [Sariyüce et al., VLDB 2013;
Li et al., TKDE 2014; Zhang et al., ICDE 2017]; the PLDS paper showed the
approximate structure significantly outperforms them at scale.  This module
implements the classic *traversal* algorithm so the comparison can be run
here too (see ``benchmarks/bench_ablations.py``):

* an edge insertion can raise corenesses by at most one, and only inside the
  *subcore* of the lower-coreness endpoint (its maximal connected
  same-coreness subgraph); candidates are confirmed by iterative pruning of
  vertices without enough qualified support;
* an edge deletion can lower corenesses by at most one, cascading through
  same-coreness vertices whose remaining support drops below their coreness.

Unlike the CPLDS this structure is exact, sequential, per-edge, and offers
no read/update concurrency story — which is precisely the gap the paper
fills.  Reads here are only meaningful in quiescence.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.errors import VertexOutOfRange
from repro.graph.dynamic_graph import DynamicGraph
from repro.types import Edge, Vertex


class DynamicExactKCore:
    """Exact coreness under single-edge (or looped batch) updates.

    Examples
    --------
    >>> kc = DynamicExactKCore(4)
    >>> for e in [(0, 1), (1, 2), (0, 2)]:
    ...     _ = kc.insert_edge(*e)
    >>> kc.coreness(0)
    2
    >>> _ = kc.delete_edge(0, 1)
    >>> kc.coreness(0)
    1
    """

    def __init__(self, num_vertices: int) -> None:
        self.graph = DynamicGraph(num_vertices)
        self.core: list[int] = [0] * num_vertices

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def coreness(self, v: Vertex) -> int:
        """Exact coreness of ``v`` (quiescent)."""
        if not 0 <= v < self.graph.num_vertices:
            raise VertexOutOfRange(v, self.graph.num_vertices)
        return self.core[v]

    def read(self, v: Vertex) -> float:
        """Coreness as a float (interface parity with the approximate
        structures)."""
        return float(self.coreness(v))

    def corenesses(self) -> np.ndarray:
        """All corenesses as an int64 array."""
        return np.asarray(self.core, dtype=np.int64)

    # ------------------------------------------------------------------
    # Insertion (traversal algorithm)
    # ------------------------------------------------------------------
    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert ``(u, v)``; return whether the edge was new."""
        if not self.graph.insert_edge(u, v):
            return False
        core = self.core
        k = min(core[u], core[v])
        # Candidates: the same-coreness subcores of the endpoint(s) at level
        # k — the only vertices whose coreness can rise (by exactly one).
        roots = [w for w in (u, v) if core[w] == k]
        candidates = self._same_core_component(roots, k)
        self._promote_supported(candidates, k)
        return True

    def _same_core_component(self, roots: list[Vertex], k: int) -> set[Vertex]:
        seen: set[Vertex] = set()
        dq = deque(roots)
        core = self.core
        while dq:
            w = dq.popleft()
            if w in seen:
                continue
            seen.add(w)
            for x in self.graph.neighbors_unsafe(w):
                if core[x] == k and x not in seen:
                    dq.append(x)
        return seen

    def _promote_supported(self, candidates: set[Vertex], k: int) -> None:
        """Iteratively prune candidates without enough (k+1)-support; the
        survivors' coreness rises to ``k + 1``."""
        core = self.core
        # cd[w]: neighbours that could support w in a (k+1)-core — those of
        # higher coreness, plus surviving candidates.
        cd: dict[Vertex, int] = {}
        for w in candidates:
            cd[w] = sum(
                1
                for x in self.graph.neighbors_unsafe(w)
                if core[x] > k or x in candidates
            )
        dq = deque(w for w in candidates if cd[w] < k + 1)
        removed: set[Vertex] = set()
        while dq:
            w = dq.popleft()
            if w in removed:
                continue
            removed.add(w)
            for x in self.graph.neighbors_unsafe(w):
                if x in candidates and x not in removed:
                    cd[x] -= 1
                    if cd[x] < k + 1:
                        dq.append(x)
        for w in candidates - removed:
            core[w] = k + 1

    # ------------------------------------------------------------------
    # Deletion (cascading demotion)
    # ------------------------------------------------------------------
    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete ``(u, v)``; return whether the edge was present."""
        if not self.graph.delete_edge(u, v):
            return False
        core = self.core
        k = min(core[u], core[v])
        seeds = [w for w in (u, v) if core[w] == k]
        self._demote_unsupported(seeds, k)
        return True

    def _demote_unsupported(self, seeds: list[Vertex], k: int) -> None:
        """Cascade coreness decrements from ``seeds`` at level ``k``.

        A vertex of coreness ``k`` needs at least ``k`` neighbours of
        coreness >= ``k``; vertices falling below cascade to their
        same-coreness neighbours.  Each vertex drops by at most one per
        deleted edge (the classic invariant).
        """
        core = self.core

        def support(w: Vertex) -> int:
            return sum(
                1 for x in self.graph.neighbors_unsafe(w) if core[x] >= k
            )

        dq = deque(w for w in seeds if core[w] == k and support(w) < k)
        demoted: set[Vertex] = set()
        while dq:
            w = dq.popleft()
            if w in demoted or core[w] != k:
                continue
            demoted.add(w)
            core[w] = k - 1
            for x in self.graph.neighbors_unsafe(w):
                if core[x] == k and x not in demoted and support(x) < k:
                    dq.append(x)

    # ------------------------------------------------------------------
    # Batch conveniences (sequential loops — this is the point of the
    # comparison: exact maintenance has no batch parallelism to offer)
    # ------------------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        return sum(1 for u, v in edges if self.insert_edge(u, v))

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        return sum(1 for u, v in edges if self.delete_edge(u, v))

    # ------------------------------------------------------------------
    # Verification support
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Assert the maintained corenesses equal a from-scratch recompute."""
        from repro.exact.peeling import core_decomposition

        expected = core_decomposition(self.graph)
        actual = self.corenesses()
        if not np.array_equal(expected, actual):
            bad = np.nonzero(expected != actual)[0][:10]
            raise AssertionError(
                f"dynamic exact coreness drifted at vertices {bad.tolist()}: "
                f"expected {expected[bad].tolist()}, got {actual[bad].tolist()}"
            )
