"""Validity checking for exact k-core decompositions.

Used by the test suite (including the hypothesis property tests) to certify
:func:`repro.exact.peeling.core_decomposition` against the definitional
characterisation of coreness, independently of the peeling implementation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph


def check_core_decomposition(
    graph: CSRGraph | DynamicGraph, core: np.ndarray
) -> None:
    """Raise ``AssertionError`` unless ``core`` is the exact coreness vector.

    Checks the two definitional directions:

    1. *Feasibility*: for every k, the subgraph induced by
       ``{v : core[v] >= k}`` has minimum induced degree >= k, i.e. each
       claimed k-core really is a k-core.
    2. *Maximality*: iteratively peeling vertices with induced degree
       < core[v] + 1 from the (core[v]+1)-candidate set must eliminate every
       vertex, i.e. no vertex belongs to a deeper core than claimed.

    Both are established simultaneously by recomputing the decomposition with
    an entirely different (naive, O(n·m)) algorithm and comparing.
    """
    naive = naive_core_decomposition(graph)
    if not np.array_equal(naive, np.asarray(core)):
        diff = np.nonzero(naive != np.asarray(core))[0]
        raise AssertionError(
            f"core decomposition mismatch at vertices {diff[:10].tolist()}: "
            f"expected {naive[diff[:10]].tolist()}, "
            f"got {np.asarray(core)[diff[:10]].tolist()}"
        )


def naive_core_decomposition(graph: CSRGraph | DynamicGraph) -> np.ndarray:
    """Reference O(n·m) coreness: repeatedly strip min-degree vertices per k.

    For k = 1, 2, ...: repeatedly delete vertices of induced degree < k; the
    survivors form the k-core.  Deliberately written without the bucket
    machinery so it shares no code (and no bugs) with the fast path.
    """
    if isinstance(graph, CSRGraph):
        n = graph.num_vertices
        adj = [set(graph.neighbors(v).tolist()) for v in range(n)]
    else:
        n = graph.num_vertices
        adj = [set(graph.neighbors_unsafe(v)) for v in range(n)]

    core = np.zeros(n, dtype=np.int64)
    alive = set(range(n))
    deg = {v: len(adj[v]) for v in alive}
    k = 1
    while alive:
        # Strip everything of degree < k.
        queue = [v for v in alive if deg[v] < k]
        while queue:
            v = queue.pop()
            if v not in alive:
                continue
            alive.discard(v)
            core[v] = k - 1
            for u in adj[v]:
                if u in alive:
                    deg[u] -= 1
                    if deg[u] < k:
                        queue.append(u)
        k += 1
    return core
