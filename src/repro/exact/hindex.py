"""H-index iteration for coreness (Lü–Chen–Ren–Zhou–Zhang–Zhou, 2016).

A classical result connecting local computation to k-cores: start from
degrees and repeatedly replace every vertex's value with the **h-index of
its neighbours' values** (the largest ``h`` such that at least ``h``
neighbours have value ≥ ``h``); the process converges, monotonically from
above, to exact coreness.  It is embarrassingly parallel per sweep — the
kind of algorithm the paper's related work contrasts level structures with —
and makes an excellent independent cross-check for both the peeling code and
the LDS estimates, since it shares no machinery with either.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, csr_view
from repro.graph.dynamic_graph import DynamicGraph


def h_index(values: np.ndarray) -> int:
    """The h-index of a multiset: largest ``h`` with ≥ ``h`` entries ≥ ``h``.

    >>> import numpy as np
    >>> h_index(np.array([3, 3, 3]))
    3
    >>> h_index(np.array([5, 1, 1]))
    1
    >>> h_index(np.array([], dtype=int))
    0
    """
    if len(values) == 0:
        return 0
    ordered = np.sort(values)[::-1]
    ranks = np.arange(1, len(ordered) + 1)
    qualified = ordered >= ranks
    return int(ranks[qualified][-1]) if qualified.any() else 0


def hindex_coreness(
    graph: CSRGraph | DynamicGraph,
    *,
    max_sweeps: int | None = None,
    return_sweeps: bool = False,
):
    """Exact coreness by h-index iteration.

    Converges in at most O(n) sweeps; real graphs settle in a handful.
    ``max_sweeps`` bounds the loop (``None`` = run to convergence);
    ``return_sweeps`` additionally returns how many sweeps were needed.
    """
    csr = graph if isinstance(graph, CSRGraph) else csr_view(graph)
    n = csr.num_vertices
    values = csr.degrees().astype(np.int64)
    sweeps = 0
    limit = max_sweeps if max_sweeps is not None else max(n, 1)
    offsets, targets = csr.offsets, csr.targets
    while sweeps < limit:
        nxt = np.empty_like(values)
        for v in range(n):
            nbr_vals = values[targets[offsets[v] : offsets[v + 1]]]
            nxt[v] = h_index(nbr_vals)
        sweeps += 1
        if np.array_equal(nxt, values):
            break
        values = nxt
    if return_sweeps:
        return values, sweeps
    return values


def hindex_upper_bound_property(graph: CSRGraph | DynamicGraph) -> bool:
    """Verify the monotone-from-above property on one sweep.

    After any number of sweeps the values are an upper bound on coreness;
    used by the property tests as an independent invariant.
    """
    from repro.exact.peeling import core_decomposition

    csr = graph if isinstance(graph, CSRGraph) else csr_view(graph)
    exact = core_decomposition(csr)
    one_sweep = hindex_coreness(csr, max_sweeps=1)
    return bool(np.all(one_sweep >= exact))
