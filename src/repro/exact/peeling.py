"""Exact k-core decomposition by bucketed peeling (Matula–Beck / Batagelj–Zavernik).

This is the classic O(n + m) algorithm: repeatedly remove a vertex of minimum
remaining degree; the coreness of a vertex is the largest minimum-degree seen
when it is removed.  Implemented over the CSR snapshot with flat numpy arrays
for position/bucket bookkeeping — the one place in this library where the HPC
guides' "keep the hot kernel on contiguous arrays" advice pays off directly,
since this runs on every dataset in the Table 1 and Fig 6 benches.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, csr_view
from repro.graph.dynamic_graph import DynamicGraph


def _as_csr(graph: CSRGraph | DynamicGraph) -> CSRGraph:
    if isinstance(graph, DynamicGraph):
        return csr_view(graph)
    return graph


def core_decomposition(graph: CSRGraph | DynamicGraph) -> np.ndarray:
    """Exact coreness of every vertex, as an int64 array of length ``n``.

    Runs the Batagelj–Zaversnik bucket-sort peeling in O(n + m):

    1. bucket-sort vertices by degree (``bin_start`` / ``order`` / ``pos``),
    2. sweep vertices in non-decreasing degree order; the sweep-time degree of
       a vertex is its coreness,
    3. when ``v`` is peeled, decrement each unpeeled higher-degree neighbour
       by swapping it to the front of its bucket — O(1) per decrement.

    Examples
    --------
    >>> from repro.graph import DynamicGraph
    >>> g = DynamicGraph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    >>> core_decomposition(g).tolist()
    [2, 2, 2, 1]
    """
    csr = _as_csr(graph)
    n = csr.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    deg = csr.degrees().astype(np.int64)
    max_deg = int(deg.max(initial=0))

    # Bucket sort vertices by degree.
    bin_count = np.bincount(deg, minlength=max_deg + 1)
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    np.cumsum(bin_count, out=bin_start[1:])
    # order[i] = i-th vertex in degree order; pos[v] = index of v in order.
    order = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n, dtype=np.int64)
    # next_in_bin[d] = next free slot in bucket d (mutable copy of starts).
    next_slot = bin_start[:-1].copy()

    core = deg.copy()
    offsets, targets = csr.offsets, csr.targets
    # Peeling needs per-vertex mutable degrees and the bucket swap trick.
    for i in range(n):
        v = order[i]
        dv = core[v]
        for j in range(offsets[v], offsets[v + 1]):
            u = targets[j]
            du = core[u]
            if du > dv:
                # Move u to the front of its bucket, then shrink its degree.
                pu = pos[u]
                front = next_slot[du]
                w = order[front]
                if u != w:
                    order[front], order[pu] = u, w
                    pos[u], pos[w] = front, pu
                next_slot[du] += 1
                core[u] = du - 1
        # Advance the bucket pointer past v itself so future swaps in bucket
        # dv cannot move an unpeeled vertex onto an already-peeled slot.
        if next_slot[dv] <= i:
            next_slot[dv] = i + 1
    return core


def degeneracy(graph: CSRGraph | DynamicGraph) -> int:
    """The degeneracy of the graph = its largest coreness (Table 1's "largest k")."""
    cores = core_decomposition(graph)
    return int(cores.max(initial=0))


def k_core_subgraph(graph: CSRGraph | DynamicGraph, k: int) -> np.ndarray:
    """Boolean mask of vertices in the k-core (coreness >= k)."""
    return core_decomposition(graph) >= k


def degeneracy_ordering(graph: CSRGraph | DynamicGraph) -> np.ndarray:
    """A peeling (smallest-last) ordering of the vertices.

    Vertex ``order[0]`` is peeled first.  Useful for downstream consumers
    (greedy colouring, clique enumeration) and exercised by the examples.
    """
    csr = _as_csr(graph)
    n = csr.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    deg = csr.degrees().astype(np.int64)
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Simple heap-free repeated-min loop driven by buckets.
    buckets: list[list[int]] = [[] for _ in range(int(deg.max(initial=0)) + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    d = 0
    for i in range(n):
        while d < len(buckets) and not buckets[d]:
            d += 1
        # Degrees only decrease, so also rewind when decrements re-populate
        # lower buckets.
        while d > 0 and buckets[d - 1]:
            d -= 1
        v = buckets[d].pop()
        if removed[v] or deg[v] != d:
            # Stale bucket entry; re-resolve.
            while True:
                while d < len(buckets) and not buckets[d]:
                    d += 1
                while d > 0 and buckets[d - 1]:
                    d -= 1
                v = buckets[d].pop()
                if not removed[v] and deg[v] == d:
                    break
        removed[v] = True
        order[i] = v
        for u in csr.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(int(u))
    return order
