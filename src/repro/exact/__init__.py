"""Exact k-core decomposition (ground truth for the approximate structures).

k-core decomposition is P-complete, so the paper (and this reproduction)
maintain an *approximate* decomposition dynamically; the exact sequential
algorithm here is the reference every approximation is measured against in
the Fig 6 error experiments and the Table 1 largest-k column.
"""

from repro.exact.dynamic import DynamicExactKCore
from repro.exact.hindex import hindex_coreness
from repro.exact.peeling import core_decomposition, degeneracy, k_core_subgraph
from repro.exact.verify import check_core_decomposition

__all__ = [
    "DynamicExactKCore",
    "core_decomposition",
    "degeneracy",
    "hindex_coreness",
    "k_core_subgraph",
    "check_core_decomposition",
]
