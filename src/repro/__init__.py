"""repro — Parallel k-Core Decomposition with Batched Updates and Asynchronous Reads.

A from-scratch Python reproduction of Liu, Shun & Zablotchi (PPoPP 2024):
the **CPLDS** — a concurrent/parallel level data structure maintaining a
(2+ε)-approximate k-core decomposition under *batched* edge updates while
serving *asynchronous, lock-free, linearizable* per-vertex coreness reads —
together with every substrate it stands on (dynamic graphs, exact peeling,
the sequential LDS and batch-parallel PLDS, concurrent union-find), the
paper's two baselines, a linearizability checker, and the full experiment
harness regenerating Table 1 and Figures 3–7.

Quick start
-----------
>>> from repro import CPLDS
>>> kcore = CPLDS(num_vertices=100)
>>> kcore.insert_batch([(0, 1), (1, 2), (0, 2)])
3
>>> kcore.read(0)  # linearizable, lock-free, callable from any thread
1.0

Package map
-----------
``repro.core``        the paper's contribution (CPLDS, descriptors, baselines)
``repro.lds``         level data structures (LDS, PLDS, parameters)
``repro.graph``       dynamic graph, generators, Table 1 dataset stand-ins
``repro.exact``       exact k-core peeling (ground truth)
``repro.unionfind``   sequential + concurrent disjoint sets
``repro.runtime``     executors, real-thread sessions, virtual-time machine
``repro.verify``      history recording, linearizability checking, error metrics
``repro.workloads``   batch streams and read generators
``repro.harness``     experiment drivers (Table 1, Figs 3–7) and reporting
``repro.extensions``  §9 applications: orientation, densest subgraph, vertex updates
"""

from repro.core import CPLDS, NonSyncKCore, SyncReadsKCore
from repro.exact import core_decomposition, degeneracy
from repro.graph import DynamicGraph
from repro.lds import LDS, PLDS, LDSParams

__version__ = "1.0.0"

__all__ = [
    "CPLDS",
    "NonSyncKCore",
    "SyncReadsKCore",
    "LDS",
    "PLDS",
    "LDSParams",
    "DynamicGraph",
    "core_decomposition",
    "degeneracy",
    "__version__",
]
