"""Online invariant monitoring during batches.

The quiescent checkers (`check_all_invariants`) certify end-of-batch states;
this monitor hooks into the PLDS rounds and samples *mid-batch* consistency
— the counters must track the graph at every round boundary, and the
descriptor table must satisfy its structural rules (non-root parents point
at marked vertices, parent vertex ids differ from their children) whenever
marks exist.  Catching a drift at the round it happens, instead of at batch
end, turns bookkeeping bugs from archaeology into stack traces.

Intended for tests and debugging (it adds O(n + m) work per sampled round);
attach with :func:`attach_monitor`, which returns the monitor for later
interrogation.
"""

from __future__ import annotations

from repro.core.descriptor import I_AM_ROOT
from repro.errors import InvariantViolation
from repro.lds.plds import Phase, UpdateHooks
from repro.runtime.inject import HookChain


class InvariantMonitor(UpdateHooks):
    """Sample mid-batch consistency every ``sample_every`` rounds."""

    def __init__(self, cplds, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.cplds = cplds
        self.sample_every = sample_every
        self.rounds_seen = 0
        self.samples_taken = 0

    # ------------------------------------------------------------------
    def round_boundary(self) -> None:
        self.rounds_seen += 1
        if self.rounds_seen % self.sample_every == 0:
            self.sample()

    def batch_end(self) -> None:
        self.sample()

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Run all mid-batch checks once."""
        self.samples_taken += 1
        self._check_counters()
        self._check_descriptor_structure()

    def _check_counters(self) -> None:
        state = self.cplds.plds.state
        state.assert_counters_consistent()

    def _check_descriptor_structure(self) -> None:
        table = self.cplds.descriptors
        slots = table.slots
        for v in table.marked_vertices:
            desc = slots[v]
            if desc is None:
                continue  # already unmarked (end-of-batch rounds)
            parent = desc.parent
            if parent == I_AM_ROOT:
                continue
            if parent == desc.vertex:
                raise InvariantViolation(
                    f"descriptor of {v} points at itself", vertex=v
                )
            if not 0 <= parent < len(slots):
                raise InvariantViolation(
                    f"descriptor of {v} has out-of-range parent {parent}",
                    vertex=v,
                )
            # Chains must terminate: walk with a step bound.
            seen = 0
            node = desc
            while node is not None and node.parent != I_AM_ROOT:
                node = slots[node.parent]
                seen += 1
                if seen > len(slots):
                    raise InvariantViolation(
                        f"descriptor chain from {v} does not terminate",
                        vertex=v,
                    )


def attach_monitor(cplds, sample_every: int = 1) -> InvariantMonitor:
    """Chain an :class:`InvariantMonitor` after ``cplds``'s hooks."""
    monitor = InvariantMonitor(cplds, sample_every=sample_every)
    cplds.plds.hooks = HookChain(cplds.plds.hooks, monitor)
    return monitor
