"""Operation-history recording for concurrent executions.

Events are timestamped with a :class:`LogicalClock` — an atomic counter whose
ticks embed into real time (each tick is taken at a single instant), so
"response before invocation" comparisons between operations are exactly the
real-time order linearizability constrains.

A :class:`RecordedKCore` wraps any k-core implementation exposing the common
read/update surface and records:

* one :class:`ReadRecord` per read: invocation tick, response tick, the
  *level* the estimate was computed from, and which batch it claimed;
* one :class:`BatchRecord` per batch: start/end ticks, the post-batch level
  snapshot, which vertices changed level, and (when the implementation
  tracks them, as the CPLDS does) the dependency-DAG partition of the batch;
* one :class:`EpochReadRecord` per bulk read through the epoch-snapshot
  read tier (:meth:`RecordedKCore.read_epoch`): the pinned epoch, the
  newest epoch at pin time, and the levels of every queried vertex —
  the checker verifies the whole bulk read is exactly the state after
  the pinned batch (linearizable *at that epoch*).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import HistoryError
from repro.types import Edge, Vertex


class LogicalClock:
    """A shared monotonic tick counter; each tick is atomic in real time."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def tick(self) -> int:
        """Take the next tick (thread-safe)."""
        with self._lock:
            self._value += 1
            return self._value

    def now(self) -> int:
        """The latest tick taken (no new tick)."""
        return self._value


@dataclass(frozen=True)
class ReadRecord:
    """One completed read operation."""

    vertex: Vertex
    invoked: int
    responded: int
    level: int
    from_descriptor: bool
    #: The implementation's claimed batch (diagnostics only).
    batch: int

    def __post_init__(self) -> None:
        if self.responded < self.invoked:
            raise HistoryError(
                f"read of {self.vertex} responded at {self.responded} before "
                f"invocation at {self.invoked}"
            )


@dataclass(frozen=True)
class EpochReadRecord:
    """One completed bulk read against a pinned epoch.

    ``epoch`` is the epoch the read was served at (after any
    force-advance); ``latest_epoch`` is the newest epoch the store had
    published when the pin was taken, so ``latest_epoch - epoch`` is the
    read's staleness in epochs (never negative by construction: the
    latest epoch is sampled *before* pinning).
    """

    vertices: tuple[Vertex, ...]
    levels: tuple[int, ...]
    epoch: int
    latest_epoch: int
    invoked: int
    responded: int

    def __post_init__(self) -> None:
        if self.responded < self.invoked:
            raise HistoryError(
                f"epoch read at epoch {self.epoch} responded at "
                f"{self.responded} before invocation at {self.invoked}"
            )
        if len(self.levels) != len(self.vertices):
            raise HistoryError(
                f"epoch read at epoch {self.epoch} returned {len(self.levels)} "
                f"levels for {len(self.vertices)} vertices"
            )


@dataclass(frozen=True)
class BatchRecord:
    """One completed update batch."""

    index: int
    kind: str
    started: int
    ended: int
    #: Level of every vertex after this batch completed.
    levels_after: tuple[int, ...]
    #: Vertices whose level changed during this batch.
    changed: frozenset[Vertex]
    #: Dependency-DAG partition: vertex -> DAG root (empty if untracked).
    dag_of: dict[Vertex, Vertex] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ended < self.started:
            raise HistoryError(
                f"batch {self.index} ended at {self.ended} before start "
                f"{self.started}"
            )


@dataclass
class History:
    """A full recorded execution: initial levels, batches, reads."""

    initial_levels: tuple[int, ...]
    batches: list[BatchRecord] = field(default_factory=list)
    reads: list[ReadRecord] = field(default_factory=list)
    epoch_reads: list[EpochReadRecord] = field(default_factory=list)

    @property
    def num_vertices(self) -> int:
        return len(self.initial_levels)

    def level_versions(self, v: Vertex) -> list[tuple[int, int]]:
        """``(batch_index, level)`` pairs at which ``v``'s level changed.

        Entry ``(0, L)`` is the initial level (batch index 0 means "before
        any recorded batch"); subsequent entries carry 1-based batch indexes.
        """
        versions = [(0, self.initial_levels[v])]
        for b in self.batches:
            lvl = b.levels_after[v]
            if lvl != versions[-1][1]:
                versions.append((b.index, lvl))
        return versions


class RecordedKCore:
    """Wrap a k-core implementation, recording every read and batch.

    The wrapper is transparent: reads return exactly what the wrapped
    implementation returns.  Reads may be issued from any thread; batches
    must come from the single update thread (matching the library's
    single-writer model).
    """

    def __init__(self, impl, clock: Optional[LogicalClock] = None) -> None:
        self.impl = impl
        self.clock = clock if clock is not None else LogicalClock()
        levels = tuple(impl.levels())
        self.history = History(initial_levels=levels)
        self._last_levels = list(levels)
        self._batch_index = 0
        self._reads_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, v: Vertex) -> float:
        invoked = self.clock.tick()
        result = self.impl.read_verbose(v)
        responded = self.clock.tick()
        rec = ReadRecord(
            vertex=v,
            invoked=invoked,
            responded=responded,
            level=result.level,
            from_descriptor=result.from_descriptor,
            batch=result.batch,
        )
        with self._reads_lock:
            self.history.reads.append(rec)
        return result.estimate

    def read_epoch(self, store, vertices=None) -> tuple[int, ...]:
        """Bulk-read ``vertices`` (default: all) from a pinned epoch.

        Pins the newest epoch of ``store`` (an
        :class:`~repro.reads.EpochSnapshotStore`), reads every queried
        vertex's level through the pin, and records the whole bulk read
        as one :class:`EpochReadRecord`.  The newest epoch is sampled
        *before* pinning so the recorded staleness is never spuriously
        positive.  Callable from any reader thread.
        """
        if vertices is None:
            vertices = range(self.history.num_vertices)
        verts = tuple(int(v) for v in vertices)
        invoked = self.clock.tick()
        latest = store.latest_epoch
        with store.pin() as pin:
            levels = tuple(int(x) for x in pin.levels_many(verts))
            epoch = pin.epoch
        responded = self.clock.tick()
        rec = EpochReadRecord(
            vertices=verts,
            levels=levels,
            epoch=epoch,
            latest_epoch=epoch if latest is None else max(latest, epoch),
            invoked=invoked,
            responded=responded,
        )
        with self._reads_lock:
            self.history.epoch_reads.append(rec)
        return levels

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        return self._run_batch("insert", list(edges))

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        return self._run_batch("delete", list(edges))

    def _run_batch(self, kind: str, edges: Sequence[Edge]) -> int:
        started = self.clock.tick()
        if kind == "insert":
            applied = self.impl.insert_batch(edges)
        else:
            applied = self.impl.delete_batch(edges)
        levels_after = tuple(self.impl.levels())
        ended = self.clock.tick()
        self._batch_index += 1
        changed = frozenset(
            v
            for v in range(len(levels_after))
            if levels_after[v] != self._last_levels[v]
        )
        dag_of = dict(getattr(self.impl, "last_batch_dag_map", {}) or {})
        self.history.batches.append(
            BatchRecord(
                index=self._batch_index,
                kind=kind,
                started=started,
                ended=ended,
                levels_after=levels_after,
                changed=changed,
                dag_of=dag_of,
            )
        )
        self._last_levels = list(levels_after)
        return applied

    # ------------------------------------------------------------------
    # Pass-throughs
    # ------------------------------------------------------------------
    def levels(self) -> list[int]:
        return self.impl.levels()

    @property
    def graph(self):
        return self.impl.graph
