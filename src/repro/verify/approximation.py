"""Approximation-error measurement against exact coreness (Fig 6 machinery).

The paper evaluates a read's error against the exact coreness at the *nearer*
batch boundary: "our reads are guaranteed to be linearizable to either the
beginning of the batch or the end of the batch.  Since it is difficult to
know whether the read linearized to the beginning or the end of the batch, we
take the minimum of the two errors."  :func:`read_error` implements exactly
that; :class:`BoundaryOracle` precomputes exact corenesses at every batch
boundary by replaying the edge stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exact import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.lds.coreness import approximation_factor
from repro.types import Edge, Vertex


class BoundaryOracle:
    """Exact coreness of every vertex at every batch boundary.

    Boundary ``0`` is the state before the first batch; boundary ``i`` the
    state after batch ``i`` (1-based), obtained by replaying the batches onto
    a private graph.
    """

    def __init__(self, num_vertices: int, initial_edges: Sequence[Edge] = ()) -> None:
        self._graph = DynamicGraph(num_vertices, initial_edges)
        self._cores: list[np.ndarray] = [core_decomposition(self._graph)]

    def push_batch(self, kind: str, edges: Sequence[Edge]) -> None:
        """Replay one batch and record the new exact decomposition."""
        if kind == "insert":
            self._graph.insert_batch(edges)
        elif kind == "delete":
            self._graph.delete_batch(edges)
        else:
            raise ValueError(f"unknown batch kind {kind!r}")
        self._cores.append(core_decomposition(self._graph))

    @property
    def num_boundaries(self) -> int:
        return len(self._cores)

    def coreness_at(self, boundary: int, v: Vertex) -> int:
        """Exact coreness of ``v`` at ``boundary`` (0 = before first batch)."""
        return int(self._cores[boundary][v])

    def cores_at(self, boundary: int) -> np.ndarray:
        return self._cores[boundary]


def read_error(
    oracle: BoundaryOracle, batch: int, v: Vertex, estimate: float
) -> float:
    """Error factor of one read that linearized inside batch ``batch``.

    Per the paper, the minimum of the errors against the boundary before and
    the boundary after the batch; vertices coreless at both boundaries
    contribute a neutral 1.0 (see :func:`approximation_factor`).
    """
    before = max(0, min(batch - 1, oracle.num_boundaries - 1))
    after = max(0, min(batch, oracle.num_boundaries - 1))
    err_before = approximation_factor(estimate, oracle.coreness_at(before, v))
    err_after = approximation_factor(estimate, oracle.coreness_at(after, v))
    return min(err_before, err_after)


@dataclass
class ErrorStats:
    """Aggregate error statistics over a set of reads."""

    count: int = 0
    total: float = 0.0
    worst: float = 1.0

    def add(self, err: float) -> None:
        self.count += 1
        self.total += err
        if err > self.worst:
            self.worst = err

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 1.0

    def merge(self, other: "ErrorStats") -> "ErrorStats":
        out = ErrorStats(
            count=self.count + other.count,
            total=self.total + other.total,
            worst=max(self.worst, other.worst),
        )
        return out
