"""Verification: operation histories, linearizability checking, error metrics.

The paper's safety claim is linearizability of reads concurrent with update
batches (§6.1).  This package records histories of concurrent executions
(:mod:`repro.verify.history`) and checks them against the three structural
rules that linearizability implies for this object
(:mod:`repro.verify.linearizability`); the rules are conservative —
violations reported are real, some exotic violations may be missed — see
DESIGN.md.  :mod:`repro.verify.approximation` measures coreness-estimate
error against exact ground truth, powering the Fig 6 reproduction.
"""

from repro.verify.history import (
    BatchRecord,
    EpochReadRecord,
    History,
    LogicalClock,
    ReadRecord,
    RecordedKCore,
)
from repro.verify.linearizability import LinearizabilityChecker, Violation
from repro.verify.liveness import LivenessReport, analyze_stepped
from repro.verify.monitor import InvariantMonitor, attach_monitor

__all__ = [
    "BatchRecord",
    "EpochReadRecord",
    "History",
    "LogicalClock",
    "ReadRecord",
    "RecordedKCore",
    "LinearizabilityChecker",
    "Violation",
    "LivenessReport",
    "analyze_stepped",
    "InvariantMonitor",
    "attach_monitor",
]
