"""Linearizability checking for recorded k-core histories.

General black-box linearizability checking is NP-complete, but this object
has structure the checker exploits: per-vertex values (levels) only change
inside known batch windows, and the batch-internal linearization points of
all updates in one dependency DAG coincide (§6.1 of the paper).  That yields
three *sound* rules — every reported violation is a real linearizability
violation; conversely a pathological history could in principle slip through,
which is why DESIGN.md calls the checker conservative:

Rule A — **no intermediate values**: every read must return a level that was
  current at some instant of the read's interval, i.e. one of the vertex's
  batch-boundary versions whose validity window overlaps the read.  NonSync
  fails this on any batch that cascades a vertex through intermediate levels.

Rule B — **per-vertex monotonicity**: if two reads of the same vertex do not
  overlap, the later read cannot return a strictly older version than every
  version the earlier read could have returned.

Rule C — **DAG atomicity**: all level changes in one dependency DAG linearize
  together, so once any read has *definitely* observed a DAG's post-batch
  value, no subsequent (non-overlapping) read may *definitely* observe
  another member's pre-batch value.  The §4 strawman fails this under the
  schedule built in ``tests/test_linearizability.py``.

Rule E — **epoch exactness**: a bulk read pinned to epoch ``e`` (an
  :class:`~repro.verify.history.EpochReadRecord` from the multi-version
  read tier, :mod:`repro.reads`) must return, for *every* queried vertex,
  exactly the level after batch ``e`` (the initial level for ``e = 0``) —
  unlike sandwiched reads there is no one-epoch ambiguity, the whole bulk
  read linearizes atomically at the pinned batch's end — and cannot
  respond before that batch started (no reading the future).
  :meth:`LinearizabilityChecker.epoch_staleness_violations` additionally
  bounds ``latest_epoch - epoch`` against a staleness budget.

Version windows
---------------
A version of vertex ``v`` introduced by batch ``b`` can be observed no
earlier than ``b``'s start tick (its LP is inside the batch window) and no
later than the end tick of the next batch that changes ``v`` (that batch's
LP is inside *its* window).  A read is *consistent with* a version if the
read's interval overlaps the version's window and the read returned exactly
that version's level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NotLinearizable
from repro.verify.history import History, ReadRecord


@dataclass(frozen=True)
class Violation:
    """One detected linearizability violation."""

    rule: str  # "A", "B", "C", or "E"
    message: str
    reads: tuple[ReadRecord, ...] = ()


@dataclass
class _AnalyzedRead:
    record: ReadRecord
    #: Batch indexes of the versions this read is consistent with (sorted).
    consistent: list[int] = field(default_factory=list)

    @property
    def min_version(self) -> int:
        return self.consistent[0]

    @property
    def max_version(self) -> int:
        return self.consistent[-1]


class LinearizabilityChecker:
    """Check a :class:`~repro.verify.history.History` against rules A–C."""

    def __init__(self, history: History) -> None:
        self.history = history
        self._batch_by_index = {b.index: b for b in history.batches}
        self._version_cache: dict[int, list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def violations(self) -> list[Violation]:
        """All violations found, grouped by rule (A first)."""
        analyzed, rule_a = self._analyze_reads()
        out = list(rule_a)
        out.extend(self._check_rule_b(analyzed))
        out.extend(self._check_rule_c(analyzed))
        out.extend(self._check_rule_e())
        return out

    def check(self) -> None:
        """Raise :class:`~repro.errors.NotLinearizable` on any violation."""
        found = self.violations()
        if found:
            head = found[0]
            raise NotLinearizable(
                f"{len(found)} violation(s); first: [rule {head.rule}] "
                f"{head.message}"
            )

    # ------------------------------------------------------------------
    # Version-window machinery
    # ------------------------------------------------------------------
    def _versions(self, v: int) -> list[tuple[int, int]]:
        cached = self._version_cache.get(v)
        if cached is None:
            cached = self.history.level_versions(v)
            self._version_cache[v] = cached
        return cached

    def _version_window(
        self, versions: list[tuple[int, int]], i: int
    ) -> tuple[float, float]:
        """``[earliest, latest]`` ticks at which version ``i`` can be current."""
        batch_idx, _level = versions[i]
        if batch_idx == 0:
            earliest = float("-inf")
        else:
            earliest = self._batch_by_index[batch_idx].started
        if i + 1 < len(versions):
            next_batch = versions[i + 1][0]
            latest = self._batch_by_index[next_batch].ended
        else:
            latest = float("inf")
        return earliest, latest

    def _analyze_reads(self) -> tuple[list[_AnalyzedRead], list[Violation]]:
        analyzed: list[_AnalyzedRead] = []
        violations: list[Violation] = []
        for rec in self.history.reads:
            versions = self._versions(rec.vertex)
            consistent: list[int] = []
            for i, (batch_idx, level) in enumerate(versions):
                if level != rec.level:
                    continue
                earliest, latest = self._version_window(versions, i)
                if earliest <= rec.responded and rec.invoked <= latest:
                    consistent.append(batch_idx)
            if not consistent:
                boundary_levels = sorted({lvl for _, lvl in versions})
                violations.append(
                    Violation(
                        rule="A",
                        message=(
                            f"read of vertex {rec.vertex} over ticks "
                            f"[{rec.invoked}, {rec.responded}] returned level "
                            f"{rec.level}, which was never current in that "
                            f"interval (boundary levels: {boundary_levels})"
                        ),
                        reads=(rec,),
                    )
                )
            else:
                analyzed.append(_AnalyzedRead(rec, sorted(consistent)))
        return analyzed, violations

    # ------------------------------------------------------------------
    # Rule B: per-vertex monotonicity
    # ------------------------------------------------------------------
    def _check_rule_b(self, analyzed: list[_AnalyzedRead]) -> list[Violation]:
        violations: list[Violation] = []
        per_vertex: dict[int, list[_AnalyzedRead]] = {}
        for ar in analyzed:
            per_vertex.setdefault(ar.record.vertex, []).append(ar)
        for reads in per_vertex.values():
            # For every precedence pair R1 -> R2 (R1.responded < R2.invoked),
            # require min_version(R1) <= max_version(R2).  Equivalent to
            # checking each read against the running max of min_version over
            # already-responded reads.
            by_invoked = sorted(reads, key=lambda ar: ar.record.invoked)
            by_responded = sorted(reads, key=lambda ar: ar.record.responded)
            ri = 0
            best: Optional[_AnalyzedRead] = None  # max min_version so far
            for ar in by_invoked:
                while (
                    ri < len(by_responded)
                    and by_responded[ri].record.responded < ar.record.invoked
                ):
                    cand = by_responded[ri]
                    if best is None or cand.min_version > best.min_version:
                        best = cand
                    ri += 1
                if best is not None and best.min_version > ar.max_version:
                    violations.append(
                        Violation(
                            rule="B",
                            message=(
                                f"vertex {ar.record.vertex}: a read finishing "
                                f"at tick {best.record.responded} observed a "
                                f"version from batch >= {best.min_version}, "
                                f"but a later read (invoked "
                                f"{ar.record.invoked}) observed a version "
                                f"from batch <= {ar.max_version}"
                            ),
                            reads=(best.record, ar.record),
                        )
                    )
        return violations

    # ------------------------------------------------------------------
    # Rule E: epoch exactness (bulk reads from the read tier)
    # ------------------------------------------------------------------
    def _check_rule_e(self) -> list[Violation]:
        violations: list[Violation] = []
        for rec in self.history.epoch_reads:
            if rec.epoch == 0:
                expected = self.history.initial_levels
                started = float("-inf")
            else:
                batch = self._batch_by_index.get(rec.epoch)
                if batch is None:
                    violations.append(
                        Violation(
                            rule="E",
                            message=(
                                f"epoch read over ticks [{rec.invoked}, "
                                f"{rec.responded}] claims epoch {rec.epoch}, "
                                f"which no recorded batch produced"
                            ),
                        )
                    )
                    continue
                expected = batch.levels_after
                started = batch.started
            mismatches = [
                (v, got, expected[v])
                for v, got in zip(rec.vertices, rec.levels)
                if got != expected[v]
            ]
            if mismatches:
                v, got, want = mismatches[0]
                violations.append(
                    Violation(
                        rule="E",
                        message=(
                            f"epoch read at epoch {rec.epoch}: vertex {v} "
                            f"returned level {got} but the epoch-{rec.epoch} "
                            f"state has level {want} "
                            f"({len(mismatches)} mismatching vertices)"
                        ),
                    )
                )
                continue
            if rec.responded < started:
                violations.append(
                    Violation(
                        rule="E",
                        message=(
                            f"epoch read responded at tick {rec.responded} "
                            f"but claims epoch {rec.epoch}, whose batch only "
                            f"started at tick {started} — it observed the "
                            f"future"
                        ),
                    )
                )
        return violations

    def epoch_staleness_violations(self, max_staleness: int) -> list[Violation]:
        """Epoch reads that exceeded a bounded-staleness budget.

        Separate from :meth:`violations` because the budget is a policy
        choice of the store under test, not a linearizability rule.
        """
        violations: list[Violation] = []
        for rec in self.history.epoch_reads:
            staleness = rec.latest_epoch - rec.epoch
            if staleness > max_staleness:
                violations.append(
                    Violation(
                        rule="E",
                        message=(
                            f"epoch read served at epoch {rec.epoch} was "
                            f"{staleness} epochs behind the newest "
                            f"({rec.latest_epoch}); budget is {max_staleness}"
                        ),
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # Rule C: DAG atomicity
    # ------------------------------------------------------------------
    def _check_rule_c(self, analyzed: list[_AnalyzedRead]) -> list[Violation]:
        violations: list[Violation] = []
        for batch in self.history.batches:
            if not batch.dag_of:
                continue
            b = batch.index
            # Partition this batch's reads-of-DAG-members into
            # definitely-new (all consistent versions >= b) and
            # definitely-old (all consistent versions < b), per DAG root.
            new_by_root: dict[int, _AnalyzedRead] = {}  # min responded
            old_by_root: dict[int, _AnalyzedRead] = {}  # max invoked
            for ar in analyzed:
                root = batch.dag_of.get(ar.record.vertex)
                if root is None:
                    continue
                if ar.min_version >= b:
                    cur = new_by_root.get(root)
                    if cur is None or ar.record.responded < cur.record.responded:
                        new_by_root[root] = ar
                elif ar.max_version < b:
                    cur = old_by_root.get(root)
                    if cur is None or ar.record.invoked > cur.record.invoked:
                        old_by_root[root] = ar
            for root, new_ar in new_by_root.items():
                old_ar = old_by_root.get(root)
                if (
                    old_ar is not None
                    and new_ar.record.responded < old_ar.record.invoked
                ):
                    violations.append(
                        Violation(
                            rule="C",
                            message=(
                                f"batch {b}, DAG rooted at {root}: vertex "
                                f"{new_ar.record.vertex} was read post-batch "
                                f"(responded {new_ar.record.responded}) "
                                f"before vertex {old_ar.record.vertex} was "
                                f"read pre-batch (invoked "
                                f"{old_ar.record.invoked}) — a new-old "
                                f"inversion inside one dependency DAG"
                            ),
                            reads=(new_ar.record, old_ar.record),
                        )
                    )
        return violations
