"""Liveness (lock-freedom) analysis of read executions.

The paper's §6.2 argument: a CPLDS read restarts only when (1) the batch
number changed across the sandwich or (2) the live level changed — both of
which certify that an *update operation made progress*.  So reads are
lock-free: a read delayed forever implies updates completing infinitely
often.

This module turns that argument into checkable artifacts:

* :func:`analyze_stepped` audits :class:`~repro.runtime.stepping.SteppedResult`
  populations — every retry must carry a valid cause, and the retry counts
  are summarised for reporting;
* :func:`check_session_liveness` audits a real-thread
  :class:`~repro.runtime.threads.SessionResult` — retries may only appear on
  reads that were concurrent with updates (a quiescent retry would mean the
  read spun with no update progressing, i.e. a real lock-freedom bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.runtime.stepping import SteppedResult
from repro.runtime.threads import SessionResult

VALID_CAUSES = ("batch", "level")


@dataclass(frozen=True)
class LivenessReport:
    """Aggregate retry behaviour of a read population."""

    reads: int
    total_retries: int
    max_retries: int
    cause_counts: dict[str, int]

    @property
    def retry_rate(self) -> float:
        """Mean retries per read."""
        return self.total_retries / self.reads if self.reads else 0.0


def analyze_stepped(results: Sequence[SteppedResult]) -> LivenessReport:
    """Audit stepped reads: every retry must have a progress cause.

    Raises :class:`~repro.errors.ReproError` on a causeless or
    invalid-cause retry — a direct counterexample to the §6.2 argument.
    """
    total = 0
    worst = 0
    causes: dict[str, int] = {c: 0 for c in VALID_CAUSES}
    for r in results:
        if len(r.retry_causes) != r.retries:
            raise ReproError(
                f"read of {r.vertex}: {r.retries} retries but "
                f"{len(r.retry_causes)} recorded causes"
            )
        for c in r.retry_causes:
            if c not in VALID_CAUSES:
                raise ReproError(
                    f"read of {r.vertex}: invalid retry cause {c!r}"
                )
            causes[c] += 1
        total += r.retries
        worst = max(worst, r.retries)
    return LivenessReport(
        reads=len(results),
        total_retries=total,
        max_retries=worst,
        cause_counts=causes,
    )


def check_session_liveness(session: SessionResult) -> LivenessReport:
    """Audit a real-thread session: retries imply concurrency with updates.

    The thread harness classifies a read as in-flight when an update batch
    was running at its invocation *or* the read retried/waited; a retried
    read recorded as quiescent would therefore indicate the classification
    (and the lock-freedom witness) broke.  Retry counts are not directly
    visible per sample in sessions, so this checks the classification
    invariant and summarises what is available.
    """
    retried_quiescent = [
        s for s in session.reads if not s.in_flight and s.latency > 1.0
    ]
    if retried_quiescent:
        raise ReproError(
            f"{len(retried_quiescent)} quiescent reads took > 1 s — reads "
            "appear to spin without update progress"
        )
    in_flight = [s for s in session.reads if s.in_flight]
    return LivenessReport(
        reads=len(session.reads),
        total_retries=len(in_flight),
        max_retries=0,
        cause_counts={c: 0 for c in VALID_CAUSES},
    )
