"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch every library failure with a single ``except`` clause while still
being able to distinguish the concrete failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the dynamic-graph substrate."""


class VertexOutOfRange(GraphError):
    """A vertex id lies outside ``[0, num_vertices)``."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} out of range for a graph with "
            f"{num_vertices} vertices"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class SelfLoopError(GraphError):
    """Self-loops are not supported by the k-core algorithms in this library."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"self-loop on vertex {vertex} is not allowed")
        self.vertex = vertex


class EdgeStateError(GraphError):
    """An edge insertion/deletion conflicts with the current graph state.

    Raised in *strict* mode when inserting an edge that already exists or
    deleting one that does not.
    """


class LDSError(ReproError):
    """Base class for level-data-structure errors."""


class InvariantViolation(LDSError):
    """An LDS degree invariant does not hold when it was required to.

    Carried by the invariant checkers in :mod:`repro.lds.invariants`; seeing
    this outside of a test indicates a bug in the rebalancing logic.
    """

    def __init__(self, message: str, vertex: int | None = None) -> None:
        super().__init__(message)
        self.vertex = vertex


class BatchInProgressError(ReproError):
    """An operation that requires quiescence was invoked mid-batch."""


class HistoryError(ReproError):
    """An operation history is malformed (e.g. response before invocation)."""


class NotLinearizable(ReproError):
    """A recorded history admits no valid linearization.

    Raised by :mod:`repro.verify.linearizability` when a violation is found;
    the message pinpoints the offending operations.
    """


class SimulationError(ReproError):
    """The deterministic scheduler was driven into an invalid state."""


class WorkloadError(ReproError):
    """A workload specification is inconsistent (e.g. deleting absent edges)."""
