"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch every library failure with a single ``except`` clause while still
being able to distinguish the concrete failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the dynamic-graph substrate."""


class VertexOutOfRange(GraphError):
    """A vertex id lies outside ``[0, num_vertices)``."""

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} out of range for a graph with "
            f"{num_vertices} vertices"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class SelfLoopError(GraphError):
    """Self-loops are not supported by the k-core algorithms in this library."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"self-loop on vertex {vertex} is not allowed")
        self.vertex = vertex


class EdgeStateError(GraphError):
    """An edge insertion/deletion conflicts with the current graph state.

    Raised in *strict* mode when inserting an edge that already exists or
    deleting one that does not.
    """


class LDSError(ReproError):
    """Base class for level-data-structure errors."""


class InvariantViolation(LDSError):
    """An LDS degree invariant does not hold when it was required to.

    Carried by the invariant checkers in :mod:`repro.lds.invariants`; seeing
    this outside of a test indicates a bug in the rebalancing logic.
    """

    def __init__(self, message: str, vertex: int | None = None) -> None:
        super().__init__(message)
        self.vertex = vertex


class BatchInProgressError(ReproError):
    """An operation that requires quiescence was invoked mid-batch."""


class PersistError(ReproError):
    """Base class for errors raised by the persistence layer."""


class CheckpointCorruptError(PersistError):
    """A checkpoint file is unreadable, truncated, or fails its checksum.

    Raised by :func:`repro.persist.load_cplds` instead of surfacing raw
    numpy/zipfile errors, so recovery code can fall back to an earlier
    checkpoint (or a full journal replay) with a single ``except`` clause.
    """


class JournalCorruptError(PersistError):
    """A batch-journal record *before* the tail failed validation.

    A torn final record is the normal signature of a crash mid-append and is
    tolerated (dropped) by the journal reader; corruption anywhere earlier
    means the file was damaged after the fact and replaying past it could
    silently skip committed batches — so the reader refuses.
    """


class CoordinatorClosedError(ReproError):
    """An update was submitted to a coordinator after :meth:`close`.

    Also set as the :attr:`~repro.runtime.coordinator.UpdateTicket.error` of
    any ticket that was still queued when the coordinator shut down, so no
    producer is ever left waiting on a ticket that can no longer complete.
    """


class CoordinatorDiedError(ReproError):
    """The coordinator's update thread died on an unhandled exception.

    The original exception is chained as ``__cause__``; every pending ticket
    is failed with this error so waiting producers unblock.
    """


class TicketTimeoutError(ReproError, TimeoutError):
    """An :meth:`UpdateTicket.wait` deadline expired before completion.

    Subclasses :class:`TimeoutError` as well, so callers may catch either the
    library hierarchy or the builtin.
    """


class PoisonUpdateError(ReproError):
    """An update failed deterministically and was quarantined.

    The supervisor retried the containing batch, then bisected it down to
    this individual update, which still failed; the update is dropped and
    only its ticket fails — the rest of the batch commits normally.
    """


class ServiceFailedError(ReproError):
    """The supervised service is in the terminal FAILED state.

    Raised for new submissions once recovery has been exhausted; reads keep
    being served from the last-known-good snapshot.
    """


class RecoveryError(ReproError):
    """A recovery attempt could not restore a consistent structure."""


class HistoryError(ReproError):
    """An operation history is malformed (e.g. response before invocation)."""


class NotLinearizable(ReproError):
    """A recorded history admits no valid linearization.

    Raised by :mod:`repro.verify.linearizability` when a violation is found;
    the message pinpoints the offending operations.
    """


class EpochUnavailableError(ReproError):
    """The requested epoch is not retained by the snapshot store.

    Raised by :meth:`repro.reads.EpochSnapshotStore.pin` when the epoch was
    evicted (outside the retention window) or never published, and by
    :class:`repro.reads.EpochPin` read methods after :meth:`release`.
    """


class SimulationError(ReproError):
    """The deterministic scheduler was driven into an invalid state."""


class WorkloadError(ReproError):
    """A workload specification is inconsistent (e.g. deleting absent edges)."""
