"""repro-top: a live terminal view of the observability stack.

One screen combining the three observability surfaces of ``repro.obs``:

* the **metrics registry** — key pipeline counters and gauges;
* the **SLO state** — :data:`repro.obs.staleness.DEFAULT_SLOS` evaluated
  against the live registry into PASS/WARN/FAIL verdicts;
* the **flight-recorder tail** — the most recent typed events.

Run ``repro-top --demo`` (or ``python -m repro.harness.top --demo``) to
watch a seeded workload drive the whole stack; embed :func:`render` to
print the same screen from any process that has the registry enabled.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.obs import staleness
from repro.obs.flightrec import FlightRecorder, format_event
from repro.obs.registry import MetricsRegistry

#: Counters surfaced in the key-metrics panel, in display order.
_KEY_COUNTERS = (
    "cplds_batches_total",
    "plds_moves_total",
    "plds_rounds_total",
    "cplds_marked_total",
    "cplds_dags_total",
    "cplds_reads_live_total",
    "cplds_reads_descriptor_total",
    "cplds_read_retries_total",
    "coordinator_batches_total",
    "coordinator_updates_total",
    "service_recoveries_total",
    "service_stale_reads_total",
)


def render(
    registry: MetricsRegistry | None = None,
    recorder: FlightRecorder | None = None,
    tail: int = 12,
) -> str:
    """The repro-top screen as a string (no terminal control codes)."""
    from repro.harness.report import format_table

    reg = registry if registry is not None else obs.REGISTRY
    rec = recorder if recorder is not None else obs.RECORDER
    lines = [
        "repro-top — batch/read pipeline observability",
        f"registry: {'enabled' if reg.enabled else 'DISABLED'}   "
        f"recorder: {'enabled' if rec.enabled else 'DISABLED'} "
        f"({len(rec)}/{rec.capacity} events retained, {rec.total} lifetime)",
        "",
    ]

    rows = [
        (name, reg.counter_value(name))
        for name in _KEY_COUNTERS
        if reg.counter_value(name)
    ]
    lines.append("== key counters ==")
    lines.append(format_table(["counter", "value"], rows) if rows else "(none yet)")
    gauges = [(g.key[0], g.value) for g in reg.gauges() if g.value]
    if gauges:
        lines.append("")
        lines.append("== gauges ==")
        lines.append(format_table(["gauge", "value"], gauges))

    lines.append("")
    lines.append("== SLO state ==")
    report = staleness.evaluate(
        staleness.DEFAULT_SLOS, staleness.observations_from_registry(reg)
    )
    lines.append(report.render())

    lines.append("")
    lines.append(f"== flight recorder (last {tail}) ==")
    events = rec.events()[-tail:]
    if events:
        lines.extend(format_event(e) for e in events)
    else:
        lines.append("(no events)")
    return "\n".join(lines)


def _start_demo_workload(seed: int = 7) -> "object":
    """Background thread driving seeded batches + reads forever."""
    import random
    import threading

    from repro.core.cplds import CPLDS

    obs.enable()
    obs.RECORDER.enable()
    cp = CPLDS(256)
    stop = threading.Event()

    def drive() -> None:
        rng = random.Random(seed)
        live: set = set()
        while not stop.is_set():
            ins = []
            for _ in range(rng.randint(4, 32)):
                u, v = rng.randrange(256), rng.randrange(256)
                if u != v and (min(u, v), max(u, v)) not in live:
                    ins.append((min(u, v), max(u, v)))
            dels = rng.sample(sorted(live), min(len(live), rng.randint(0, 8)))
            cp.apply_batch(ins, dels)
            live.update(ins)
            live.difference_update(dels)
            for _ in range(64):
                cp.read_verbose(rng.randrange(256))
            time.sleep(0.05)

    thread = threading.Thread(target=drive, daemon=True, name="repro-top-demo")
    thread.start()
    return stop


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (the ``repro-top`` console script)."""
    parser = argparse.ArgumentParser(
        prog="repro-top", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh interval in seconds")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N refreshes (0 = until interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="render one screen and exit")
    parser.add_argument("--tail", type=int, default=12,
                        help="flight-recorder events to show")
    parser.add_argument("--demo", action="store_true",
                        help="drive a seeded demo workload in-process")
    args = parser.parse_args(argv)

    stop: Optional[object] = None
    if args.demo:
        stop = _start_demo_workload()

    try:
        iteration = 0
        while True:
            iteration += 1
            screen = render(tail=args.tail)
            if args.once or args.iterations:
                print(screen)
            else:
                # Clear + home; keep it plain enough for dumb terminals.
                sys.stdout.write("\x1b[2J\x1b[H" + screen + "\n")
                sys.stdout.flush()
            if args.once or (args.iterations and iteration >= args.iterations):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if stop is not None:
            stop.set()  # type: ignore[attr-defined]


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
