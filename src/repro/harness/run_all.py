"""Run the complete reproduction and print every table/figure as text.

Usage::

    python -m repro.harness.run_all            # quick configuration
    python -m repro.harness.run_all --full     # all ten datasets, 3 trials
    python -m repro.harness.run_all --datasets dblp yt --trials 2

The output is the paper's evaluation section in text form: Table 1, Figures
3–7, the §6.3 flash-crowd supplement, and the abstract's headline factors.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness import report as R


def build_config(args: argparse.Namespace) -> E.ExperimentConfig:
    """Resolve CLI arguments into an ExperimentConfig."""
    base = E.FULL if args.full else E.QUICK
    overrides = {}
    if args.datasets:
        unknown = set(args.datasets) - set(ds.names())
        if unknown:
            raise SystemExit(f"unknown datasets: {sorted(unknown)}")
        overrides["datasets"] = tuple(args.datasets)
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.readers is not None:
        overrides["num_readers"] = args.readers
    return base.with_(**overrides) if overrides else base


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments and print every table (CLI entry)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="full sweep")
    parser.add_argument("--datasets", nargs="*", help="dataset stand-ins")
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--readers", type=int, default=None)
    parser.add_argument(
        "--skip", nargs="*", default=[],
        choices=["table1", "fig3", "fig4", "fig5", "fig6", "fig7"],
        help="experiments to skip",
    )
    args = parser.parse_args(argv)
    config = build_config(args)

    def banner(title: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    started = time.perf_counter()
    fig3_rows = fig5_rows = fig6_rows = None

    if "table1" not in args.skip:
        banner("Table 1: graph sizes and largest k (paper vs stand-in)")
        print(R.render_table1(E.table1(config.datasets)))

    if "fig3" not in args.skip:
        banner("Fig 3: read latency by implementation")
        fig3_rows = E.fig3(config)
        print(R.render_fig3(fig3_rows))

    if "fig4" not in args.skip:
        banner("Fig 4: read latency vs insertion batch size")
        print(R.render_fig4(E.fig4(config.with_(datasets=config.datasets[:2]))))

    if "fig5" not in args.skip:
        banner("Fig 5: batch update times")
        fig5_rows = E.fig5(config)
        print(R.render_fig5(fig5_rows))

    if "fig6" not in args.skip:
        banner("Fig 6: read approximation error")
        fig6_rows = E.fig6(config)
        print(R.render_fig6(fig6_rows))
        banner("Fig 6 supplement: §6.3 flash-crowd error growth")
        print(R.render_fig6_flash(E.fig6_flash()))

    if "fig7" not in args.skip:
        banner("Fig 7: throughput scalability (virtual-time machine)")
        print(R.render_fig7(E.fig7(config.with_(datasets=config.datasets[:2]))))

    if fig3_rows and fig5_rows and fig6_rows:
        banner("Headline factors")
        print(R.render_headline(E.headline_factors(fig3_rows, fig5_rows, fig6_rows)))

    print(f"\ntotal reproduction time: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
