"""Latency / throughput statistics used by every experiment.

The paper reports, per configuration, the *average*, *99th percentile* and
*99.99th percentile* read latency (Fig 3/4), average and maximum batch update
time (Fig 5), and average throughputs (Fig 7).  These helpers compute exactly
those aggregates, with the same nearest-rank percentile definition throughout
so numbers are comparable across experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def trim_warmup(
    samples: Sequence[float], fraction: float, min_keep: int = 1
) -> list[float]:
    """Drop the first ``fraction`` of ``samples`` (warmup transient).

    The first batches of every run hit cold caches, an empty level
    structure and the allocator's growth path; their latencies are not
    representative of steady state and dominate the p99.99 of short runs.
    Always keeps at least ``min_keep`` samples so downstream aggregates
    never see an empty set.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    drop = min(int(len(samples) * fraction), max(len(samples) - min_keep, 0))
    return list(samples[drop:])


def median_of_trials(values: Sequence[float]) -> float:
    """Median over repeated trials of the same aggregate.

    The standard de-noising step for wall-clock aggregates: the median of
    per-trial means is robust to one trial being perturbed (GC pause,
    scheduler interference) in a way the pooled mean is not.
    """
    if not values:
        raise ValueError("median_of_trials of empty trial set")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (``pct`` in [0, 100]).

    Deterministic and exact for small sample counts (unlike interpolating
    definitions), which matters for the p99.99 of modest-size runs.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if pct == 0.0:
        return ordered[0]
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyStats:
    """The paper's latency aggregate: mean / p99 / p99.99 / min / max / count."""

    count: int
    mean: float
    p50: float
    p99: float
    p9999: float
    min: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            raise ValueError("LatencyStats of empty sample set")
        ordered = sorted(samples)
        n = len(ordered)
        # fsum + clamp: naive summation can push the mean one ULP outside
        # [min, max] (e.g. three identical samples), breaking the ordering
        # invariant downstream consumers assert.
        mean = min(max(math.fsum(ordered) / n, ordered[0]), ordered[-1])
        return cls(
            count=n,
            mean=mean,
            p50=percentile(ordered, 50.0),
            p99=percentile(ordered, 99.0),
            p9999=percentile(ordered, 99.99),
            min=ordered[0],
            max=ordered[-1],
        )

    def scaled(self, factor: float) -> "LatencyStats":
        """Same stats with every latency multiplied by ``factor`` (unit
        conversion, e.g. seconds → microseconds)."""
        return LatencyStats(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p99=self.p99 * factor,
            p9999=self.p9999 * factor,
            min=self.min * factor,
            max=self.max * factor,
        )


def summarize_latencies(samples: Sequence[float]) -> LatencyStats:
    """Convenience alias for :meth:`LatencyStats.from_samples`."""
    return LatencyStats.from_samples(samples)


@dataclass(frozen=True)
class ThroughputStats:
    """Operations per unit time, as the paper computes them.

    For CPLDS/NonSync reads and writes: total operations divided by total
    *write* time over all batches; for SyncReads, divided by write + read
    time (see §7, "Scalability of Read and Write Throughputs").
    """

    operations: int
    duration: float

    @property
    def per_second(self) -> float:
        return self.operations / self.duration if self.duration > 0 else 0.0


def speedup(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline``.

    Latency-style speedup: > 1 means ``improved`` is better (smaller).
    """
    if improved <= 0:
        return float("inf")
    return baseline / improved
