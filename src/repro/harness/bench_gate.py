"""CI perf-regression gate over ``BENCH_*.json`` documents.

Compares a freshly generated benchmark document (the *candidate*) against
the checked-in baseline and decides pass/fail:

* **Deterministic work counters** (``metrics.<backend>.work`` — see
  :data:`repro.harness.bench_json.WORK_COUNTERS`) are compared **exactly**.
  A candidate counter *above* the baseline means the algorithm now does
  more work for the same seeded stream — that is a real regression and the
  gate **fails**.  A counter *below* baseline is an improvement; the gate
  only warns that the baseline should be refreshed.
* **Wall-clock medians** (Fig 5 batch time, Fig 3 read latency) are
  machine-dependent, so they are **warn-only**: a deviation beyond
  ``--tolerance`` (default ±25%) prints a warning and never fails the
  gate.
* **SLO budgets** (``backends.<b>.staleness`` — staleness-epoch p99,
  descriptor-read fraction, retries per read) are likewise **warn-only**:
  a candidate spending noticeably more of a staleness/retry budget than
  the baseline, losing the section entirely, or carrying a FAIL verdict
  in its embedded SLO report prints a warning.  Retry counts are
  contention-timing-dependent, so these can never hard-fail; baselines
  predating the staleness section are skipped silently.

Intentional work-counter changes (an algorithmic improvement that legally
shifts rounds/moves) are landed by regenerating the baseline in the same
PR — ``make bench-baseline`` — or, in CI, by applying the
``bench-baseline-reset`` override label, which runs this gate with
``--warn-only`` (see ``docs/observability.md``).

Usage::

    PYTHONPATH=src python -m repro.harness.bench_json -o /tmp/candidate.json
    PYTHONPATH=src python -m repro.harness.bench_gate \
        --candidate /tmp/candidate.json  # baseline defaults to BENCH_ARTIFACT
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.harness.bench_json import BENCH_ARTIFACT, WORK_COUNTERS

#: Wall-clock medians compared (warn-only), as (label, path-in-document).
_WALL_CLOCK_FIELDS = (
    ("fig5_batch_time_s", ("fig5", "cplds_median_batch_time_s")),
    ("fig3_read_latency_s", ("fig3", "cplds_median_read_latency_s")),
)

#: SLO-budget fields from ``backends.<b>.staleness`` compared (warn-only).
_SLO_BUDGET_FIELDS = (
    "staleness_epochs_p99",
    "descriptor_read_fraction",
    "retries_per_read",
)

#: Absolute slack added to the relative SLO-budget tolerance so a
#: near-zero baseline (e.g. retries_per_read = 0.0001) does not warn on
#: every tiny absolute wiggle.
_SLO_SLACK = 0.01


@dataclass
class GateResult:
    """Outcome of one baseline/candidate comparison."""

    failures: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing hard-failed (warnings are allowed)."""
        return not self.failures


def _backend_work(doc: dict, backend: str) -> dict | None:
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return None
    entry = metrics.get(backend)
    if not isinstance(entry, dict):
        return None
    work = entry.get("work")
    return work if isinstance(work, dict) else None


def _backend_staleness(doc: dict, backend: str) -> dict | None:
    entry = doc.get("backends", {}).get(backend)
    if not isinstance(entry, dict):
        return None
    stale = entry.get("staleness")
    return stale if isinstance(stale, dict) else None


def _check_slo_budgets(
    result: "GateResult",
    backend: str,
    base_st: dict | None,
    cand_st: dict | None,
    tolerance: float,
) -> None:
    """Warn-only SLO-budget comparison for one backend.

    A baseline without a staleness section predates the accounting —
    nothing to compare, skip silently.  A *candidate* without one while
    the baseline has it means the accounting was dropped: warn.
    """
    if base_st is None:
        return
    if cand_st is None:
        result.warnings.append(
            f"[{backend}] candidate lost the staleness section the "
            "baseline carries (accounting disabled?)"
        )
        return
    for name in _SLO_BUDGET_FIELDS:
        base = base_st.get(name)
        cand = cand_st.get(name)
        if not isinstance(base, (int, float)) or not isinstance(
            cand, (int, float)
        ):
            continue  # None = no data on that side; nothing to budget
        budget = base * (1.0 + tolerance) + _SLO_SLACK
        if cand > budget:
            result.warnings.append(
                f"[{backend}] SLO budget {name} over baseline: "
                f"{base:.6g} -> {cand:.6g} "
                f"(budget {budget:.6g}; warn-only)"
            )
    slo = cand_st.get("slo")
    if isinstance(slo, dict) and slo.get("status") == "FAIL":
        failing = [
            v.get("name")
            for v in slo.get("verdicts", [])
            if isinstance(v, dict) and v.get("status") == "FAIL"
        ]
        result.warnings.append(
            f"[{backend}] candidate SLO report is FAIL "
            f"({', '.join(str(n) for n in failing) or 'unknown target'}; "
            "warn-only)"
        )


def _wall_clock(doc: dict, backend: str, path: tuple[str, str]) -> float | None:
    node = doc.get("backends", {}).get(backend, {})
    for part in path:
        if not isinstance(node, dict):
            return None
        node = node.get(part)
    return node if isinstance(node, (int, float)) else None


def compare(
    baseline: dict, candidate: dict, *, tolerance: float = 0.25
) -> GateResult:
    """Gate ``candidate`` against ``baseline``; see the module docstring."""
    result = GateResult()
    backends = sorted(
        set(baseline.get("backends", {})) | set(candidate.get("backends", {}))
    )
    if not backends:
        result.failures.append("no backends found in either document")
        return result

    for backend in backends:
        base_work = _backend_work(baseline, backend)
        cand_work = _backend_work(candidate, backend)
        if base_work is None:
            result.failures.append(
                f"[{backend}] baseline has no metrics.work section — "
                "regenerate it with `make bench-baseline`"
            )
            continue
        if cand_work is None:
            result.failures.append(
                f"[{backend}] candidate has no metrics.work section"
            )
            continue
        for name in WORK_COUNTERS:
            base = base_work.get(name)
            cand = cand_work.get(name)
            if base is None or cand is None:
                result.failures.append(
                    f"[{backend}] work counter {name} missing "
                    f"(baseline={base!r}, candidate={cand!r})"
                )
                continue
            if cand > base:
                result.failures.append(
                    f"[{backend}] {name} regressed: {base} -> {cand} "
                    f"(+{cand - base})"
                )
            elif cand < base:
                result.warnings.append(
                    f"[{backend}] {name} improved: {base} -> {cand} "
                    "(refresh the baseline to lock this in)"
                )

        for label, path in _WALL_CLOCK_FIELDS:
            base_t = _wall_clock(baseline, backend, path)
            cand_t = _wall_clock(candidate, backend, path)
            if not base_t or cand_t is None:
                continue
            ratio = cand_t / base_t
            if abs(ratio - 1.0) > tolerance:
                result.warnings.append(
                    f"[{backend}] {label} off baseline by "
                    f"{(ratio - 1.0) * 100:+.1f}% "
                    f"({base_t:.6g}s -> {cand_t:.6g}s; warn-only)"
                )

        _check_slo_budgets(
            result,
            backend,
            _backend_staleness(baseline, backend),
            _backend_staleness(candidate, backend),
            tolerance,
        )
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit 0 = pass, 1 = work-counter regression."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BENCH_ARTIFACT,
                        help="checked-in BENCH_*.json to gate against "
                             f"(default: {BENCH_ARTIFACT})")
    parser.add_argument("--candidate", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="wall-clock warn threshold (fraction, default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report failures but exit 0 (override-label mode)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    result = compare(baseline, candidate, tolerance=args.tolerance)
    for w in result.warnings:
        print(f"WARN  {w}")
    for f in result.failures:
        print(f"FAIL  {f}")
    if result.ok:
        print("bench-gate: PASS (deterministic work counters match)")
        return 0
    if args.warn_only:
        print("bench-gate: FAIL overridden by --warn-only")
        return 0
    print(
        "bench-gate: FAIL — work counters regressed; if intentional, "
        "regenerate the baseline (make bench-baseline) or apply the "
        "'bench-baseline-reset' label"
    )
    return 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
