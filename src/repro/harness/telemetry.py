"""Per-batch telemetry: structured series for dashboards and debugging.

Collects one record per executed batch — sizes, moves, rounds, marked
vertices, DAG counts, durations — by chaining a telemetry hook after the
structure's own.  The series answers the operational questions the
experiment drivers aggregate away: *which* batch was slow, did cascade depth
spike, how bursty is marking.

Both collectors here are **thin views over the observability registry**
(:mod:`repro.obs`): they keep their own structured records/fields (the
stable API), and when the registry is enabled every increment is mirrored
into process-wide metrics (``telemetry_batch_seconds``,
``service_<counter>_total``, ...) so one snapshot covers the whole stack.

Example
-------
>>> from repro.core import CPLDS
>>> from repro.harness.telemetry import TelemetryCollector
>>> cp = CPLDS(6)
>>> tele = TelemetryCollector.attach(cp)
>>> _ = cp.insert_batch([(0, 1), (1, 2), (0, 2)])
>>> len(tele.records)
1
>>> tele.records[0].kind
'insert'
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.lds.plds import Phase, UpdateHooks
from repro.obs import REGISTRY as _OBS, TIME_BUCKETS
from repro.runtime.inject import HookChain
from repro.types import Edge

_BATCH_SECONDS = {
    "insert": _OBS.histogram(
        "telemetry_batch_seconds", TIME_BUCKETS, {"kind": "insert"}
    ),
    "delete": _OBS.histogram(
        "telemetry_batch_seconds", TIME_BUCKETS, {"kind": "delete"}
    ),
}


@dataclass(frozen=True)
class BatchTelemetry:
    """One batch's operational record."""

    index: int
    kind: str
    edges: int
    moves: int
    rounds: int
    marked: int
    dags: int
    duration: float  # seconds, wall clock of the phase


@dataclass
class TelemetryCollector(UpdateHooks):
    """Hook-based per-batch telemetry recorder.

    Use :meth:`attach` to chain onto a CPLDS (or baseline); interrogate
    ``records`` afterwards or render with :meth:`render`.
    """

    impl: object = None
    records: list[BatchTelemetry] = field(default_factory=list)
    _started: float = 0.0
    _kind: str = "insert"
    _edges: int = 0

    @classmethod
    def attach(cls, impl) -> "TelemetryCollector":
        """Chain a collector after ``impl``'s existing PLDS hooks."""
        collector = cls(impl=impl)
        impl.plds.hooks = HookChain(impl.plds.hooks, collector)
        return collector

    # -- hook callbacks --------------------------------------------------
    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        self._kind = kind
        self._edges = len(edges)
        self._started = time.perf_counter()

    def batch_end(self) -> None:
        impl = self.impl
        plds = impl.plds
        duration = time.perf_counter() - self._started
        self.records.append(
            BatchTelemetry(
                index=len(self.records) + 1,
                kind=self._kind,
                edges=self._edges,
                moves=plds.last_batch_moves,
                rounds=plds.last_batch_rounds,
                marked=getattr(impl, "last_batch_marked", 0),
                dags=getattr(impl, "last_batch_dags", 0),
                duration=duration,
            )
        )
        if _OBS.enabled:
            hist = _BATCH_SECONDS.get(self._kind)
            if hist is not None:
                hist.observe(duration)

    # -- reporting --------------------------------------------------------
    def render(self, *, last: int | None = None) -> str:
        """Render (the tail of) the series as an aligned text table."""
        # Imported here: report pulls in the experiment drivers, which would
        # be a circular import at harness package-init time.
        from repro.harness.report import format_table

        rows = self.records if last is None else self.records[-last:]
        return format_table(
            ["#", "kind", "edges", "moves", "rounds", "marked", "dags", "ms"],
            [
                (
                    r.index, r.kind, r.edges, r.moves, r.rounds,
                    r.marked, r.dags, round(r.duration * 1e3, 2),
                )
                for r in rows
            ],
        )

    def totals(self) -> dict[str, float]:
        """Aggregate counters over the whole series."""
        return {
            "batches": len(self.records),
            "edges": sum(r.edges for r in self.records),
            "moves": sum(r.moves for r in self.records),
            "marked": sum(r.marked for r in self.records),
            "duration": sum(r.duration for r in self.records),
        }

    def worst_batch(self) -> BatchTelemetry | None:
        """The slowest batch (None when no batches ran)."""
        return max(self.records, key=lambda r: r.duration, default=None)


#: ServiceTelemetry counter fields mirrored into the registry as
#: ``service_<name>_total``.
_SERVICE_COUNTER_FIELDS = (
    "batches_applied",
    "batch_failures",
    "retries",
    "recoveries",
    "bisections",
    "poison_updates",
    "checkpoints_written",
    "checkpoints_rejected",
    "journal_records",
    "stale_reads",
)

_SERVICE_COUNTERS = {
    name: _OBS.counter(f"service_{name}_total") for name in _SERVICE_COUNTER_FIELDS
}
_SERVICE_FIELD_SET = frozenset(_SERVICE_COUNTER_FIELDS)


@dataclass
class ServiceTelemetry:
    """Operational counters for the supervised service layer.

    Maintained by :class:`~repro.runtime.supervisor.SupervisedCPLDS`; the
    counters answer the on-call questions (is the service healthy, how many
    recoveries/retries/quarantines has it absorbed, how stale are degraded
    reads), and ``transitions`` is the audit log of the health state machine
    (pairs of state names, oldest first).

    A thin view over the registry: while observability is enabled, every
    positive counter delta is mirrored process-wide as
    ``service_<name>_total`` and each health transition increments
    ``service_health_transitions_total{from=...,to=...}``.  The dataclass
    fields remain the source of truth for this instance.
    """

    batches_applied: int = 0
    batch_failures: int = 0
    retries: int = 0
    recoveries: int = 0
    bisections: int = 0
    poison_updates: int = 0
    checkpoints_written: int = 0
    checkpoints_rejected: int = 0
    journal_records: int = 0
    stale_reads: int = 0
    #: Largest snapshot age (in batch epochs) any stale read was served at.
    #: A max, not a counter — kept out of ``_SERVICE_COUNTER_FIELDS`` and
    #: mirrored as the gauge ``service_stale_read_age_epochs_max`` instead.
    stale_read_max_age: int = 0
    #: Health state machine audit log: (from-state, to-state) names.
    transitions: list[tuple[str, str]] = field(default_factory=list)

    def __setattr__(self, name: str, value) -> None:
        # Mirror positive deltas of the counter fields into the registry
        # (the dataclass __init__ also lands here; the default 0 is a
        # zero-delta no-op, explicit non-zero starts are mirrored as-is).
        if _OBS.enabled and name in _SERVICE_FIELD_SET:
            delta = value - getattr(self, name, 0)
            if delta > 0:
                _SERVICE_COUNTERS[name].inc(delta)
        object.__setattr__(self, name, value)

    def note_stale_read_age(self, age: int) -> None:
        """Track the worst snapshot age served to a degraded read."""
        if age > self.stale_read_max_age:
            self.stale_read_max_age = age
            if _OBS.enabled:
                _OBS.set_gauge("service_stale_read_age_epochs_max", age)

    def record_transition(self, old: str, new: str) -> None:
        """Append one health transition to the audit log."""
        self.transitions.append((old, new))
        if _OBS.enabled:
            _OBS.inc(
                "service_health_transitions_total",
                labels={"from": old, "to": new},
            )

    def as_dict(self) -> dict[str, int]:
        """Plain counter snapshot (transitions reported as a count)."""
        return {
            "batches_applied": self.batches_applied,
            "batch_failures": self.batch_failures,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "bisections": self.bisections,
            "poison_updates": self.poison_updates,
            "checkpoints_written": self.checkpoints_written,
            "checkpoints_rejected": self.checkpoints_rejected,
            "journal_records": self.journal_records,
            "stale_reads": self.stale_reads,
            "stale_read_max_age": self.stale_read_max_age,
            "transitions": len(self.transitions),
        }

    def render(self) -> str:
        """Render the counters as an aligned two-column text table."""
        from repro.harness.report import format_table

        return format_table(
            ["counter", "value"], list(self.as_dict().items())
        )
