"""Plain-text rendering of experiment results.

Each ``render_*`` function takes the row list produced by the matching driver
in :mod:`repro.harness.experiments` and returns the table as a string — the
same rows/series the paper's figures plot, in text form.  The benches print
these so a full reproduction log reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.experiments import (
    BatchSizeRow,
    ErrorRow,
    FlashErrorRow,
    HeadlineFactors,
    LatencyRow,
    Table1Row,
    ThroughputRow,
    UpdateTimeRow,
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers`` (numbers right-aligned)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def _us(seconds: float) -> float:
    return seconds * 1e6


def render_table1(rows: list[Table1Row]) -> str:
    """Table 1 rows: paper statistics vs stand-in statistics."""
    return format_table(
        [
            "dataset", "paper n", "paper m", "paper max k",
            "standin n", "standin m", "standin max k",
        ],
        [
            (
                r.name, r.paper_vertices, r.paper_edges, r.paper_max_k,
                r.standin_vertices, r.standin_edges, r.standin_max_k,
            )
            for r in rows
        ],
    )


def render_fig3(rows: list[LatencyRow]) -> str:
    """Fig 3 series: read latency aggregates per impl/dataset/phase."""
    return format_table(
        ["dataset", "impl", "phase", "reads", "mean (us)", "p99 (us)", "p99.99 (us)"],
        [
            (
                r.dataset, r.impl, r.phase, r.stats.count,
                _us(r.stats.mean), _us(r.stats.p99), _us(r.stats.p9999),
            )
            for r in rows
        ],
    )


def render_fig4(rows: list[BatchSizeRow]) -> str:
    """Fig 4 series: read latency across insertion batch sizes."""
    return format_table(
        ["dataset", "impl", "batch size", "mean (us)", "p99 (us)", "p99.99 (us)"],
        [
            (
                r.dataset, r.impl, r.batch_size,
                _us(r.stats.mean), _us(r.stats.p99), _us(r.stats.p9999),
            )
            for r in rows
        ],
    )


def render_fig5(rows: list[UpdateTimeRow]) -> str:
    """Fig 5 series: average/maximum batch update times."""
    return format_table(
        ["dataset", "impl", "phase", "mean batch (ms)", "max batch (ms)"],
        [
            (r.dataset, r.impl, r.phase, r.mean * 1e3, r.max * 1e3)
            for r in rows
        ],
    )


def render_fig6(rows: list[ErrorRow]) -> str:
    """Fig 6 series: read approximation error vs the 2.8 bound."""
    return format_table(
        ["dataset", "impl", "phase", "mean error", "max error", "2.8 bound"],
        [
            (
                r.dataset, r.impl, r.phase,
                r.mean_error, r.max_error, r.theoretical_bound,
            )
            for r in rows
        ],
    )


def render_fig6_flash(rows: list[FlashErrorRow]) -> str:
    """§6.3 supplement: flash-crowd error growth by clique size."""
    return format_table(
        ["clique size", "impl", "mean error", "max error", "2.8 bound"],
        [
            (r.clique_size, r.impl, r.mean_error, r.max_error, r.theoretical_bound)
            for r in rows
        ],
    )


def render_fig7(rows: list[ThroughputRow]) -> str:
    """Fig 7 series: read/write throughput per sweep point."""
    return format_table(
        [
            "dataset", "impl", "sweep", "threads",
            "read tput (ops/tick)", "write tput (edges/tick)",
        ],
        [
            (
                r.dataset, r.impl, r.direction, r.count,
                r.read_throughput, r.write_throughput,
            )
            for r in rows
        ],
    )


def render_headline(factors: HeadlineFactors) -> str:
    """The abstract's headline comparison factors, annotated with the paper's values."""
    return "\n".join(
        [
            "Headline comparison factors (paper's abstract / §7 quantities):",
            f"  read-latency speedup vs SyncReads   : "
            f"{factors.latency_speedup_vs_syncreads:.3g}x   "
            f"(paper: up to 4.05e5x)",
            f"  read-latency overhead vs NonSync    : "
            f"{factors.latency_overhead_vs_nonsync:.3g}x   (paper: <= 3.21x)",
            f"  update-time overhead vs NonSync     : "
            f"{factors.update_overhead_vs_nonsync:.3g}x   (paper: <= 1.48x)",
            f"  max-error improvement vs NonSync    : "
            f"{factors.accuracy_gain_vs_nonsync:.3g}x   (paper: up to 52.7x)",
        ]
    )
