"""Machine-readable benchmark summary for the level-store backends.

Runs the Fig 3 (read latency), Fig 5 (batch update time) and Fig 7
(virtual-time throughput) drivers once per backend and writes one JSON
document with per-figure CPLDS medians plus the two headline ratios the
backend refactor is judged on:

* ``fig5_update_speedup`` — object median batch time / columnar median
  batch time (> 1 means the columnar backend updates faster);
* ``fig3_latency_ratio`` — columnar median read latency / object median
  (≈ 1 means no read-side regression).

Usage::

    PYTHONPATH=src python -m repro.harness.bench_json -o BENCH_pr4.json
"""

from __future__ import annotations

import json
import statistics
from typing import Sequence

from repro.harness import experiments as E
from repro.lds.store import BACKENDS


def _median(values: Sequence[float]) -> float:
    return statistics.median(values) if values else float("nan")


def _fig3_summary(config: E.ExperimentConfig) -> dict:
    rows = E.fig3(config)
    cplds = [r.stats.mean for r in rows if r.impl == "cplds"]
    return {
        "cplds_median_read_latency_s": _median(cplds),
        "rows": [
            {
                "dataset": r.dataset,
                "impl": r.impl,
                "phase": r.phase,
                "mean_s": r.stats.mean,
                "p99_s": r.stats.p99,
            }
            for r in rows
        ],
    }


def _fig5_summary(config: E.ExperimentConfig) -> dict:
    rows = E.fig5(config)
    cplds = [r.mean for r in rows if r.impl == "cplds"]
    return {
        "cplds_median_batch_time_s": _median(cplds),
        "rows": [
            {
                "dataset": r.dataset,
                "impl": r.impl,
                "phase": r.phase,
                "mean_s": r.mean,
                "max_s": r.max,
            }
            for r in rows
        ],
    }


def _fig7_summary(config: E.ExperimentConfig) -> dict:
    cfg = config.with_(datasets=config.datasets[:1])
    rows = E.fig7(cfg)
    cplds_read = [
        r.read_throughput
        for r in rows
        if r.impl == "cplds" and r.direction == "readers"
    ]
    cplds_write = [
        r.write_throughput
        for r in rows
        if r.impl == "cplds" and r.direction == "writers"
    ]
    return {
        "cplds_median_read_throughput": _median(cplds_read),
        "cplds_median_write_throughput": _median(cplds_write),
    }


def collect(config: E.ExperimentConfig) -> dict:
    """Run Figs 3/5/7 for every backend and assemble the summary document."""
    per_backend: dict[str, dict] = {}
    for backend in BACKENDS:
        cfg = config.with_(backend=backend)
        per_backend[backend] = {
            "fig3": _fig3_summary(cfg),
            "fig5": _fig5_summary(cfg),
            "fig7": _fig7_summary(cfg),
        }
    obj = per_backend["object"]
    col = per_backend["columnar"]
    return {
        "config": {
            "datasets": list(config.datasets),
            "batch_size": config.batch_size,
            "trials": config.trials,
        },
        "backends": per_backend,
        "fig5_update_speedup": (
            obj["fig5"]["cplds_median_batch_time_s"]
            / col["fig5"]["cplds_median_batch_time_s"]
        ),
        "fig3_latency_ratio": (
            col["fig3"]["cplds_median_read_latency_s"]
            / obj["fig3"]["cplds_median_read_latency_s"]
        ),
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run the per-backend figure sweep and write the JSON summary."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_pr4.json")
    parser.add_argument("--full", action="store_true",
                        help="use the FULL config instead of QUICK")
    args = parser.parse_args(argv)
    config = E.FULL if args.full else E.QUICK
    doc = collect(config)
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(
        f"wrote {args.output}: "
        f"fig5_update_speedup={doc['fig5_update_speedup']:.2f}x "
        f"fig3_latency_ratio={doc['fig3_latency_ratio']:.2f}x"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
