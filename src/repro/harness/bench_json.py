"""Machine-readable benchmark summary for the level-store backends.

Runs the Fig 3 (read latency), Fig 5 (batch update time) and Fig 7
(virtual-time throughput) drivers once per backend and writes one JSON
document with per-figure CPLDS medians plus the headline ratios the
backend refactors are judged on:

* ``fig5_update_speedup`` — object median batch time / columnar median
  batch time (> 1 means the columnar backend updates faster);
* ``fig5_frontier_speedup`` — object median batch time /
  columnar-frontier median batch time (the vectorized frontier engine's
  acceptance ratio; target ≥ 3);
* ``fig3_latency_ratio`` — columnar median read latency / object median
  (≈ 1 means no read-side regression);
* ``fig3_frontier_latency_ratio`` — the same ratio for the frontier
  engine's union-find-walking readers.

The document also embeds a ``metrics`` section captured from the
observability registry (:mod:`repro.obs`): per backend, the deterministic
**work counters** (:data:`WORK_COUNTERS` — rebalancing rounds, total moves,
marked vertices, DAG counts) measured over the seeded Fig 3 + Fig 5 runs,
plus a full registry snapshot for inspection.  The work counters are
machine-independent, which is what lets CI compare them exactly
(:mod:`repro.harness.bench_gate`); wall-clock numbers are only ever
warned about.

Each backend additionally carries a ``staleness`` section — the sandwich
protocol's read-staleness accounting (live vs descriptor read counts,
retry rates, staleness-epoch percentiles from
:mod:`repro.obs.staleness`) plus the :data:`~repro.obs.staleness.
DEFAULT_SLOS` report evaluated against that backend's run.  The
bench-gate warns (never fails) on SLO-budget regressions in this section.

Each backend also carries a ``fig_epoch`` section — bulk-read throughput
through the epoch-snapshot read tier (:mod:`repro.reads`) at 1x and 2x
update load; because pinned reads never touch the live structure the
2x/1x ratio should stay near 1.0, and the worst ratio across backends is
surfaced top-level as ``fig3_epoch_read_throughput_ratio``.

Usage::

    PYTHONPATH=src python -m repro.harness.bench_json  # writes BENCH_ARTIFACT
"""

from __future__ import annotations

import json
import math
import statistics
from typing import Sequence

from repro import obs
from repro.harness import experiments as E
from repro.obs import staleness as SL
from repro.lds.store import BACKENDS

#: The checked-in benchmark artifact at the repo root: the default output
#: of this module's CLI and the default ``--baseline`` of the CI gate
#: (:mod:`repro.harness.bench_gate`).  Bump the name when a PR
#: intentionally reshapes the document, and update the Makefile/CI docs
#: references along with it.
BENCH_ARTIFACT = "BENCH_pr9.json"

#: Deterministic work counters compared exactly by the CI bench-gate.
#: Everything here is a pure function of the (seeded) update stream — no
#: wall-clock, thread-timing or allocator influence.
WORK_COUNTERS = (
    "plds_moves_total",
    "plds_rounds_total",
    "cplds_batches_total",
    "cplds_marked_total",
    "cplds_dags_total",
)


def _median(values: Sequence[float]) -> float:
    return statistics.median(values) if values else float("nan")


def _fig3_summary(config: E.ExperimentConfig) -> dict:
    rows = E.fig3(config)
    cplds = [r.stats.mean for r in rows if r.impl == "cplds"]
    return {
        "cplds_median_read_latency_s": _median(cplds),
        "rows": [
            {
                "dataset": r.dataset,
                "impl": r.impl,
                "phase": r.phase,
                "mean_s": r.stats.mean,
                "p99_s": r.stats.p99,
            }
            for r in rows
        ],
    }


def _fig5_summary(config: E.ExperimentConfig) -> dict:
    rows = E.fig5(config)
    cplds = [r.mean for r in rows if r.impl == "cplds"]
    return {
        "cplds_median_batch_time_s": _median(cplds),
        "rows": [
            {
                "dataset": r.dataset,
                "impl": r.impl,
                "phase": r.phase,
                "mean_s": r.mean,
                "max_s": r.max,
            }
            for r in rows
        ],
    }


def _fig7_summary(config: E.ExperimentConfig) -> dict:
    cfg = config.with_(datasets=config.datasets[:1])
    rows = E.fig7(cfg)
    cplds_read = [
        r.read_throughput
        for r in rows
        if r.impl == "cplds" and r.direction == "readers"
    ]
    cplds_write = [
        r.write_throughput
        for r in rows
        if r.impl == "cplds" and r.direction == "writers"
    ]
    return {
        "cplds_median_read_throughput": _median(cplds_read),
        "cplds_median_write_throughput": _median(cplds_write),
    }


def _epoch_read_summary(config: E.ExperimentConfig) -> dict:
    """Epoch-tier bulk-read throughput at 1x vs 2x update load.

    Must run *after* :func:`_work_counters` is captured: the extra stream
    applications legitimately add moves/rounds that are not part of the
    gated seeded run.
    """
    rows = E.fig_epoch_reads(config)
    by_factor = {r.update_factor: r for r in rows}
    base = by_factor.get(1)
    double = by_factor.get(2)
    ratio = (
        double.read_throughput / base.read_throughput
        if base and double and base.read_throughput
        else float("nan")
    )
    return {
        "read_throughput_1x": base.read_throughput if base else None,
        "read_throughput_2x": double.read_throughput if double else None,
        "throughput_ratio_2x_over_1x": _finite(ratio),
        "rows": [
            {
                "dataset": r.dataset,
                "update_factor": r.update_factor,
                "epochs_published": r.epochs_published,
                "vertices_read": r.vertices_read,
                "elapsed_s": r.elapsed_s,
                "read_throughput": r.read_throughput,
            }
            for r in rows
        ],
    }


def _work_counters() -> dict[str, int | float]:
    """The deterministic work counters, in catalog order (absent → 0)."""
    return {
        name: obs.REGISTRY.counter_value(name) for name in WORK_COUNTERS
    }


def _finite(value: float | None) -> float | None:
    """JSON-safe float: ``inf``/``nan`` (empty or overflowed histogram
    readouts) become ``None``."""
    if value is None or not math.isfinite(value):
        return None
    return value


def _staleness_summary(read_latency_p99_s: float | None = None) -> dict:
    """The sandwich-read staleness accounting for the current registry.

    ``read_latency_p99_s`` feeds the read-latency SLO target — the
    registry does not time individual reads, so the Fig 3 driver supplies
    its measured p99.
    """
    reg = obs.REGISTRY
    live = reg.counter_value("cplds_reads_live_total")
    descriptor = reg.counter_value("cplds_reads_descriptor_total")
    retries = reg.counter_value("cplds_read_retries_total")
    total = live + descriptor
    observations = SL.observations_from_registry(reg)
    if read_latency_p99_s is not None and math.isfinite(read_latency_p99_s):
        observations["read_latency_p99_s"] = read_latency_p99_s
    report = SL.evaluate(SL.DEFAULT_SLOS, observations)
    return {
        "reads_live": live,
        "reads_descriptor": descriptor,
        "descriptor_read_fraction": descriptor / total if total else 0.0,
        "retries_total": retries,
        "retries_per_read": retries / total if total else 0.0,
        "staleness_epochs_p50": _finite(observations.get("staleness_epochs_p50")),
        "staleness_epochs_p99": _finite(observations.get("staleness_epochs_p99")),
        "staleness_epochs_max": _finite(observations.get("staleness_epochs_max")),
        "slo": report.as_dict(),
    }


def collect(config: E.ExperimentConfig) -> dict:
    """Run Figs 3/5/7 for every backend and assemble the summary document.

    Observability is force-enabled for the duration (and restored after),
    with a registry reset per backend so each ``metrics`` entry covers
    exactly that backend's runs.
    """
    per_backend: dict[str, dict] = {}
    metrics: dict[str, dict] = {}
    was_enabled = obs.enabled()
    obs.enable()
    try:
        for backend in BACKENDS:
            cfg = config.with_(backend=backend)
            obs.reset()
            fig3 = _fig3_summary(cfg)
            fig5 = _fig5_summary(cfg)
            # Captured before Fig 7: its throughput loops are time-driven,
            # so their work is not a pure function of the stream.
            work = _work_counters()
            stale = _staleness_summary(
                read_latency_p99_s=_median(
                    [r["p99_s"] for r in fig3["rows"] if r["impl"] == "cplds"]
                )
            )
            fig7 = _fig7_summary(cfg)
            fig_epoch = _epoch_read_summary(cfg)
            per_backend[backend] = {
                "fig3": fig3,
                "fig5": fig5,
                "fig7": fig7,
                "fig_epoch": fig_epoch,
                "staleness": stale,
            }
            metrics[backend] = {
                "work": work,
                "snapshot": obs.snapshot(),
            }
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()
    obj = per_backend["object"]
    col = per_backend["columnar"]
    frontier = per_backend["columnar-frontier"]
    epoch_ratios = [
        per_backend[b]["fig_epoch"]["throughput_ratio_2x_over_1x"]
        for b in BACKENDS
    ]
    epoch_ratios = [r for r in epoch_ratios if r is not None]
    return {
        "config": {
            "datasets": list(config.datasets),
            "batch_size": config.batch_size,
            "trials": config.trials,
        },
        "backends": per_backend,
        "metrics": metrics,
        "fig5_update_speedup": (
            obj["fig5"]["cplds_median_batch_time_s"]
            / col["fig5"]["cplds_median_batch_time_s"]
        ),
        "fig5_frontier_speedup": (
            obj["fig5"]["cplds_median_batch_time_s"]
            / frontier["fig5"]["cplds_median_batch_time_s"]
        ),
        "fig3_latency_ratio": (
            col["fig3"]["cplds_median_read_latency_s"]
            / obj["fig3"]["cplds_median_read_latency_s"]
        ),
        "fig3_frontier_latency_ratio": (
            frontier["fig3"]["cplds_median_read_latency_s"]
            / obj["fig3"]["cplds_median_read_latency_s"]
        ),
        # Epoch-tier bulk reads: vertices/s at 1x update load per backend,
        # and the worst 2x-load/1x-load ratio across backends (pinned
        # reads never touch the write path, so this should stay near 1.0).
        "fig3_epoch_read_throughput": {
            b: per_backend[b]["fig_epoch"]["read_throughput_1x"]
            for b in BACKENDS
        },
        "fig3_epoch_read_throughput_ratio": (
            min(epoch_ratios) if epoch_ratios else None
        ),
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: run the per-backend figure sweep and write the JSON summary."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=BENCH_ARTIFACT,
                        help=f"output path (default: {BENCH_ARTIFACT})")
    parser.add_argument("--full", action="store_true",
                        help="use the FULL config instead of QUICK")
    args = parser.parse_args(argv)
    # Warmup trimming only drops latency *samples*; the work counters are
    # a function of the streams applied, so the exact gate is unaffected.
    config = (E.FULL if args.full else E.QUICK).with_(warmup_fraction=0.1)
    doc = collect(config)
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    epoch_ratio = doc["fig3_epoch_read_throughput_ratio"]
    print(
        f"wrote {args.output}: "
        f"fig5_update_speedup={doc['fig5_update_speedup']:.2f}x "
        f"fig5_frontier_speedup={doc['fig5_frontier_speedup']:.2f}x "
        f"fig3_latency_ratio={doc['fig3_latency_ratio']:.2f}x "
        f"fig3_frontier_latency_ratio={doc['fig3_frontier_latency_ratio']:.2f}x "
        f"fig3_epoch_read_throughput_ratio="
        f"{epoch_ratio if epoch_ratio is None else f'{epoch_ratio:.2f}x'}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
