"""Experiment harness: statistics, experiment drivers, and report rendering.

One driver per paper artifact (Table 1, Figures 3–7) lives in
:mod:`repro.harness.experiments`; each returns plain dataclasses that
:mod:`repro.harness.report` renders as the same rows/series the paper plots.
The benchmarks under ``benchmarks/`` are thin pytest-benchmark wrappers over
these drivers.
"""

from repro.harness.stats import LatencyStats, percentile, summarize_latencies
from repro.harness.telemetry import (
    BatchTelemetry,
    ServiceTelemetry,
    TelemetryCollector,
)

__all__ = [
    "LatencyStats",
    "percentile",
    "summarize_latencies",
    "BatchTelemetry",
    "ServiceTelemetry",
    "TelemetryCollector",
]
