"""Experiment drivers: one per paper artifact (Table 1, Figures 3–7).

Every driver takes an :class:`ExperimentConfig` controlling scale (datasets,
batch size, trial count, reader threads) and returns plain result rows that
:mod:`repro.harness.report` renders and the benches under ``benchmarks/``
assert shape properties over.  The default configuration matches the paper's
parameters wherever the reproduction scale allows: δ=0.2, λ=9, the ``-opt
20`` shallow group height, insertion batches followed by deletion batches of
the same edges, uniform-random reads concurrent with every batch.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import engines
from repro.exact import degeneracy
from repro.graph import datasets as ds
from repro.harness.stats import LatencyStats
from repro.lds.params import LDSParams
from repro.runtime.inject import InjectionProbe, attach_probe
from repro.runtime.sim import (
    CostModel,
    sweep_reader_scalability,
    sweep_writer_scalability,
)
from repro.runtime.threads import run_concurrent_session
from repro.verify.approximation import BoundaryOracle, ErrorStats, read_error
from repro.workloads.batches import BatchStream

IMPLS = ("cplds", "nonsync", "syncreads")


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by all drivers."""

    datasets: tuple[str, ...] = ("dblp", "yt", "ctr")
    batch_size: int = 1000
    num_readers: int = 2
    trials: int = 1
    levels_per_group: int | None = 20  # the paper's -opt 20
    delete_fraction: float = 0.5
    seed: int = 0
    #: Vertices read per injected point in the Fig 6 error experiment.
    error_sample_size: int = 150
    #: Thread counts for the Fig 7 sweeps.
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 15)
    #: Level-store backend every impl is built on
#: (``"object"`` | ``"columnar"`` | ``"columnar-frontier"``).
    backend: str = "object"
    #: Fraction of each phase's leading batches whose in-flight reads are
    #: trimmed as warmup before latency aggregation (Fig 3).  0 disables.
    warmup_fraction: float = 0.0

    def with_(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


#: Runs in well under a minute per figure; good for CI smoke.
QUICK = ExperimentConfig(datasets=("dblp", "ctr"), trials=1)

#: The full reproduction sweep over every Table 1 stand-in.
FULL = ExperimentConfig(
    datasets=tuple(ds.names()),
    trials=3,
    num_readers=4,
)


def make_impl(kind: str, num_vertices: int, config: ExperimentConfig):
    """Fresh implementation instance for one trial (via the engine registry)."""
    params = LDSParams(num_vertices, levels_per_group=config.levels_per_group)
    return engines.create(
        kind, num_vertices, params=params, backend=config.backend
    )


def make_stream(name: str, config: ExperimentConfig, trial: int) -> BatchStream:
    """The standard insert-then-delete stream for one dataset and trial."""
    n, edges = ds.DATASETS[name].build_edges()
    return BatchStream.insert_then_delete(
        name,
        n,
        edges,
        config.batch_size,
        delete_fraction=config.delete_fraction,
        shuffle_seed=config.seed + trial,
    )


# ----------------------------------------------------------------------
# Table 1 — dataset inventory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    name: str
    paper_vertices: int
    paper_edges: int
    paper_max_k: int
    standin_vertices: int
    standin_edges: int
    standin_max_k: int
    regime: str


def table1(names: Iterable[str] | None = None) -> list[Table1Row]:
    """Recompute Table 1 for every stand-in: sizes and largest k."""
    rows = []
    for name in names if names is not None else ds.names():
        spec = ds.DATASETS[name]
        graph = spec.build()
        rows.append(
            Table1Row(
                name=name,
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_max_k=spec.paper_max_k,
                standin_vertices=graph.num_vertices,
                standin_edges=graph.num_edges,
                standin_max_k=degeneracy(graph),
                regime=spec.regime,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig 3 — read latency per implementation, insertions and deletions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyRow:
    dataset: str
    impl: str
    phase: str  # "insert" | "delete"
    stats: LatencyStats


def _warmup_skip_batches(
    batch_kinds: Sequence[str], fraction: float
) -> frozenset[int]:
    """1-based batch numbers trimmed as warmup.

    Per phase (not globally): the first ``fraction`` of each phase's
    batches.  A global prefix trim would only touch insertions — the
    deletion phase has its own cold start when the stream flips over.
    """
    if fraction <= 0.0:
        return frozenset()
    by_phase: dict[str, list[int]] = {}
    for i, kind in enumerate(batch_kinds):
        by_phase.setdefault(kind, []).append(i + 1)
    skip: set[int] = set()
    for numbers in by_phase.values():
        skip.update(numbers[: int(len(numbers) * fraction)])
    return frozenset(skip)


def _split_latencies_by_phase(
    session_reads,
    batch_kinds: Sequence[str],
    skip_batches: frozenset[int] = frozenset(),
) -> dict[str, list[float]]:
    """Bucket in-flight read latencies by the kind of their claimed batch."""
    out: dict[str, list[float]] = {"insert": [], "delete": []}
    for sample in session_reads:
        if not sample.in_flight:
            continue
        if sample.batch in skip_batches:
            continue
        idx = sample.batch - 1  # batch numbers are 1-based
        if 0 <= idx < len(batch_kinds):
            out[batch_kinds[idx]].append(sample.latency)
    return out


def fig3(config: ExperimentConfig = QUICK) -> list[LatencyRow]:
    """Average/p99/p99.99 read latency for each impl × dataset × phase."""
    rows: list[LatencyRow] = []
    for name in config.datasets:
        per_impl: dict[str, dict[str, list[float]]] = {
            impl: {"insert": [], "delete": []} for impl in IMPLS
        }
        for trial in range(config.trials):
            stream = make_stream(name, config, trial)
            kinds = stream.kinds()
            skip = _warmup_skip_batches(kinds, config.warmup_fraction)
            for impl_kind in IMPLS:
                impl = make_impl(impl_kind, stream.num_vertices, config)
                session = run_concurrent_session(
                    impl,
                    stream,
                    num_readers=config.num_readers,
                    reader_seed=config.seed + trial,
                    name=f"{name}:{impl_kind}",
                )
                buckets = _split_latencies_by_phase(
                    session.reads, kinds, skip_batches=skip
                )
                for phase in ("insert", "delete"):
                    per_impl[impl_kind][phase].extend(buckets[phase])
        for impl_kind in IMPLS:
            for phase in ("insert", "delete"):
                samples = per_impl[impl_kind][phase]
                if samples:
                    rows.append(
                        LatencyRow(
                            dataset=name,
                            impl=impl_kind,
                            phase=phase,
                            stats=LatencyStats.from_samples(samples),
                        )
                    )
    return rows


# ----------------------------------------------------------------------
# Fig 4 — read latency vs batch size
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchSizeRow:
    dataset: str
    impl: str
    batch_size: int
    stats: LatencyStats


def fig4(
    config: ExperimentConfig = QUICK,
    batch_sizes: Sequence[int] = (250, 500, 1000, 2000, 4000),
) -> list[BatchSizeRow]:
    """Read latency across insertion batch sizes (paper: dblp and yt)."""
    rows: list[BatchSizeRow] = []
    for name in config.datasets:
        n, edges = ds.DATASETS[name].build_edges()
        for batch_size in batch_sizes:
            for impl_kind in IMPLS:
                samples: list[float] = []
                for trial in range(config.trials):
                    stream = BatchStream.insert_only(
                        name, n, edges, batch_size,
                        shuffle_seed=config.seed + trial,
                    )
                    impl = make_impl(impl_kind, n, config)
                    session = run_concurrent_session(
                        impl,
                        stream,
                        num_readers=config.num_readers,
                        reader_seed=config.seed + trial,
                    )
                    samples.extend(session.read_latencies())
                if samples:
                    rows.append(
                        BatchSizeRow(
                            dataset=name,
                            impl=impl_kind,
                            batch_size=batch_size,
                            stats=LatencyStats.from_samples(samples),
                        )
                    )
    return rows


# ----------------------------------------------------------------------
# Fig 5 — batch update time
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateTimeRow:
    dataset: str
    impl: str
    phase: str
    mean: float  # seconds
    max: float


def fig5(config: ExperimentConfig = QUICK) -> list[UpdateTimeRow]:
    """Average and maximum batch update time per impl × dataset × phase.

    Measured with reader threads running, as in the paper (SyncReads' update
    time includes the synchronous reads it must serve at batch boundaries).
    """
    rows: list[UpdateTimeRow] = []
    for name in config.datasets:
        durations: dict[tuple[str, str], list[float]] = {}
        for trial in range(config.trials):
            stream = make_stream(name, config, trial)
            for impl_kind in IMPLS:
                impl = make_impl(impl_kind, stream.num_vertices, config)
                session = run_concurrent_session(
                    impl,
                    stream,
                    num_readers=config.num_readers,
                    reader_seed=config.seed + trial,
                )
                for phase in ("insert", "delete"):
                    durations.setdefault((impl_kind, phase), []).extend(
                        session.durations_for(phase)
                    )
        for (impl_kind, phase), vals in durations.items():
            if vals:
                rows.append(
                    UpdateTimeRow(
                        dataset=name,
                        impl=impl_kind,
                        phase=phase,
                        mean=sum(vals) / len(vals),
                        max=max(vals),
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Fig 6 — read error vs exact coreness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorRow:
    dataset: str
    impl: str
    phase: str
    mean_error: float
    max_error: float
    theoretical_bound: float


def fig6(
    config: ExperimentConfig = QUICK,
    *,
    batch_size: int | None = None,
) -> list[ErrorRow]:
    """Average and maximum approximation error of concurrent reads.

    Deterministic variant of the paper's measurement: reads are injected at
    every parallel round boundary inside each batch (the states a concurrent
    reader can observe), and each read's error is the minimum of its error
    against the exact coreness at the batch's begin and end boundaries —
    exactly the paper's scoring.  SyncReads executes its reads at batch end,
    so it is scored on post-batch reads.

    ``batch_size`` defaults to a third of the dataset — the paper's batches
    are a large fraction of each graph (10⁶ edges), which is the regime where
    NonSync's intermediate levels sit many groups away from both boundaries
    and its error explodes.
    """
    rows: list[ErrorRow] = []
    for name in config.datasets:
        n, all_edges = ds.DATASETS[name].build_edges()
        eff_batch = batch_size or max(config.batch_size, len(all_edges) // 3)
        stream = BatchStream.insert_then_delete(
            name,
            n,
            all_edges,
            eff_batch,
            delete_fraction=config.delete_fraction,
            shuffle_seed=config.seed,
        )
        kinds = stream.kinds()
        bound = LDSParams(
            n, levels_per_group=config.levels_per_group
        ).theoretical_approximation_factor()

        oracle = BoundaryOracle(n)
        for batch in stream:
            oracle.push_batch(batch.kind, batch.edges)

        rng = np.random.default_rng(config.seed)
        sample_vertices = rng.integers(
            0, n, size=config.error_sample_size
        ).tolist()

        for impl_kind in IMPLS:
            impl = make_impl(impl_kind, n, config)
            stats = {"insert": ErrorStats(), "delete": ErrorStats()}
            reads: list[tuple[int, int, float]] = []  # (vertex, batch, est)

            if impl_kind == "syncreads":
                for i, batch in enumerate(stream):
                    if batch.kind == "insert":
                        impl.insert_batch(batch.edges)
                    else:
                        impl.delete_batch(batch.edges)
                    for v in sample_vertices:
                        reads.append((v, i + 1, impl.read(v)))
            else:
                def on_point(_tag):
                    b = impl.batch_number
                    for v in sample_vertices:
                        reads.append((v, b, impl.read_verbose(v).estimate))

                attach_probe(impl, InjectionProbe(on_point))
                for batch in stream:
                    if batch.kind == "insert":
                        impl.insert_batch(batch.edges)
                    else:
                        impl.delete_batch(batch.edges)

            for v, b, est in reads:
                idx = b - 1
                phase = kinds[idx] if 0 <= idx < len(kinds) else "insert"
                stats[phase].add(read_error(oracle, b, v, est))

            for phase in ("insert", "delete"):
                if stats[phase].count:
                    rows.append(
                        ErrorRow(
                            dataset=name,
                            impl=impl_kind,
                            phase=phase,
                            mean_error=stats[phase].mean,
                            max_error=stats[phase].worst,
                            theoretical_bound=bound,
                        )
                    )
    return rows


@dataclass(frozen=True)
class FlashErrorRow:
    clique_size: int
    impl: str
    max_error: float
    mean_error: float
    theoretical_bound: float


def fig6_flash(
    clique_sizes: Sequence[int] = (40, 80, 120),
    *,
    levels_per_group: int | None = 20,
    sample_stride: int = 4,
    backend: str = "object",
) -> list[FlashErrorRow]:
    """§6.3's unbounded-error argument, measured directly.

    A "flash crowd": one batch inserts an entire ``c``-clique, moving its
    members from coreness ~1 to ``c−1`` — the vertex-jumps-``i``-groups
    scenario of §6.3.  NonSync's mid-batch reads land up to ``(1+δ)^{i/2}``
    away from both boundaries, so its max error *grows with the clique size*
    (unbounded in n); the CPLDS, reading only boundary levels, stays within
    the 2.8 bound at every size.
    """
    rows: list[FlashErrorRow] = []
    for csize in clique_sizes:
        n = csize + 200
        params = LDSParams(n, levels_per_group=levels_per_group)
        background = [(i, i + 1) for i in range(n - 1)]
        clique = [(u, v) for u in range(csize) for v in range(u + 1, csize)]
        oracle = BoundaryOracle(n)
        oracle.push_batch("insert", background)
        oracle.push_batch("insert", clique)
        for impl_kind in ("cplds", "nonsync"):
            impl = engines.create(impl_kind, n, params=params, backend=backend)
            stats = ErrorStats()

            def on_point(_tag, impl=impl, stats=stats):
                b = impl.batch_number
                for v in range(0, csize, sample_stride):
                    est = impl.read_verbose(v).estimate
                    stats.add(read_error(oracle, b, v, est))

            attach_probe(impl, InjectionProbe(on_point))
            impl.insert_batch(background)
            impl.insert_batch(clique)
            rows.append(
                FlashErrorRow(
                    clique_size=csize,
                    impl=impl_kind,
                    max_error=stats.worst,
                    mean_error=stats.mean,
                    theoretical_bound=params.theoretical_approximation_factor(),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Fig 7 — throughput scalability (virtual-time machine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThroughputRow:
    dataset: str
    impl: str
    direction: str  # "readers" | "writers"
    count: int
    read_throughput: float
    write_throughput: float


def fig7(
    config: ExperimentConfig = QUICK,
    cost: CostModel | None = None,
) -> list[ThroughputRow]:
    """Read/write throughput as reader / writer counts scale (Fig 7).

    Runs on the virtual-time machine (see DESIGN.md): reader sweeps fix 15
    update cores; writer sweeps fix 15 readers, as in the paper.
    """
    rows: list[ThroughputRow] = []
    for name in config.datasets:
        n, _ = ds.DATASETS[name].build_edges()

        def stream_factory() -> BatchStream:
            return make_stream(name, config, trial=0)

        for impl_kind in IMPLS:
            def impl_factory():
                return make_impl(impl_kind, n, config)

            by_readers = sweep_reader_scalability(
                impl_factory, impl_kind, stream_factory,
                config.thread_counts, num_update_cores=15, cost=cost,
            )
            for r, res in by_readers.items():
                rows.append(
                    ThroughputRow(
                        dataset=name, impl=impl_kind, direction="readers",
                        count=r,
                        read_throughput=res.read_throughput(),
                        write_throughput=res.write_throughput(),
                    )
                )
            by_writers = sweep_writer_scalability(
                impl_factory, impl_kind, stream_factory,
                config.thread_counts, num_readers=15, cost=cost,
            )
            for w, res in by_writers.items():
                rows.append(
                    ThroughputRow(
                        dataset=name, impl=impl_kind, direction="writers",
                        count=w,
                        read_throughput=res.read_throughput(),
                        write_throughput=res.write_throughput(),
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Epoch-snapshot bulk-read throughput (the read tier's headline)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochReadRow:
    """One epoch-read throughput measurement at a given update load."""

    dataset: str
    #: How many times the seeded stream was applied during the run.
    update_factor: int
    epochs_published: int
    vertices_read: int
    elapsed_s: float

    @property
    def read_throughput(self) -> float:
        """Vertices bulk-read per second across all reader threads."""
        return self.vertices_read / self.elapsed_s if self.elapsed_s else 0.0


def fig_epoch_reads(
    config: ExperimentConfig = QUICK,
    update_factors: Sequence[int] = (1, 2),
    base_repeats: int = 4,
) -> list[EpochReadRow]:
    """Bulk-read throughput through the epoch-snapshot read tier under
    live update churn (real threads, wall-clock).

    For each ``update_factor`` the seeded stream is applied
    ``base_repeats * update_factor`` times on the update thread while
    ``config.num_readers`` reader threads continuously pin the newest
    epoch and bulk-read every vertex's coreness
    (:meth:`~repro.reads.EpochPin.coreness_many`).  Because pinned reads
    never touch the live structure, doubling the update load should
    leave read throughput essentially unchanged — the ratio between
    factors is the headline the bench JSON reports.

    Measurement hygiene: the stream's batches are materialized *before*
    the clock starts (stream construction is itself GIL-friendly numpy
    work that would inflate reader throughput), and each factor's run
    applies one untimed warmup pass so allocator and cache effects land
    outside the window.  Runs on the first configured dataset only.
    Wall-clock only: the stream applications do perturb the
    deterministic work counters, so callers capturing those must do so
    *before* this driver (as :func:`repro.harness.bench_json.collect`
    does).
    """
    from repro.reads import EpochSnapshotStore

    rows: list[EpochReadRow] = []
    name = config.datasets[0]
    n, _ = ds.DATASETS[name].build_edges()
    params = LDSParams(n, levels_per_group=config.levels_per_group)
    num_readers = max(1, config.num_readers)
    batches = [
        (batch.kind, batch.edges)
        for batch in make_stream(name, config, trial=0)
    ]

    def apply_stream(impl) -> None:
        for kind, edges in batches:
            if kind == "insert":
                impl.insert_batch(edges)
            else:
                impl.delete_batch(edges)

    for factor in update_factors:
        store = EpochSnapshotStore(window=8)
        impl = engines.create(
            "cplds", n, params=params, backend=config.backend,
            epoch_store=store,
        )
        apply_stream(impl)  # untimed warmup pass (ends on an empty graph)
        stop = threading.Event()
        counts = [0] * num_readers

        def reader(idx: int) -> None:
            while not stop.is_set():
                with store.pin() as pin:
                    pin.coreness_many()
                counts[idx] += n

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(num_readers)
        ]
        for t in threads:
            t.start()
        start = time.perf_counter()
        for _ in range(base_repeats * factor):
            apply_stream(impl)
        stop.set()
        elapsed = time.perf_counter() - start
        for t in threads:
            t.join(timeout=30)
        rows.append(
            EpochReadRow(
                dataset=name,
                update_factor=factor,
                epochs_published=store.published_total,
                vertices_read=sum(counts),
                elapsed_s=elapsed,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Headline factors (the abstract's numbers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeadlineFactors:
    """The abstract's comparison factors, recomputed from Fig 3/5/6 rows."""

    #: max over datasets/phases of SyncReads mean latency / CPLDS mean latency.
    latency_speedup_vs_syncreads: float
    #: max of CPLDS mean latency / NonSync mean latency (paper: <= 3.21).
    latency_overhead_vs_nonsync: float
    #: max of CPLDS mean update time / NonSync mean update time (paper: <= 1.48).
    update_overhead_vs_nonsync: float
    #: max of NonSync max error / CPLDS max error (paper: up to 52.7).
    accuracy_gain_vs_nonsync: float


def headline_factors(
    fig3_rows: list[LatencyRow],
    fig5_rows: list[UpdateTimeRow],
    fig6_rows: list[ErrorRow],
) -> HeadlineFactors:
    """Recompute the abstract's comparison factors from figure rows."""
    def mean_lat(impl, dataset, phase):
        for r in fig3_rows:
            if (r.impl, r.dataset, r.phase) == (impl, dataset, phase):
                return r.stats.mean
        return None

    lat_speedup, lat_overhead = 0.0, 0.0
    for r in fig3_rows:
        if r.impl != "cplds":
            continue
        sync = mean_lat("syncreads", r.dataset, r.phase)
        nosync = mean_lat("nonsync", r.dataset, r.phase)
        if sync and r.stats.mean > 0:
            lat_speedup = max(lat_speedup, sync / r.stats.mean)
        if nosync and nosync > 0:
            lat_overhead = max(lat_overhead, r.stats.mean / nosync)

    upd_overhead = 0.0
    by_key = {(r.impl, r.dataset, r.phase): r for r in fig5_rows}
    for (impl, dataset, phase), r in by_key.items():
        if impl != "cplds":
            continue
        base = by_key.get(("nonsync", dataset, phase))
        if base and base.mean > 0:
            upd_overhead = max(upd_overhead, r.mean / base.mean)

    acc_gain = 0.0
    err_by_key = {(r.impl, r.dataset, r.phase): r for r in fig6_rows}
    for (impl, dataset, phase), r in err_by_key.items():
        if impl != "nonsync":
            continue
        cp = err_by_key.get(("cplds", dataset, phase))
        if cp and cp.max_error > 0:
            acc_gain = max(acc_gain, r.max_error / cp.max_error)

    return HeadlineFactors(
        latency_speedup_vs_syncreads=lat_speedup,
        latency_overhead_vs_nonsync=lat_overhead,
        update_overhead_vs_nonsync=upd_overhead,
        accuracy_gain_vs_nonsync=acc_gain,
    )
