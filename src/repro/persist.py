"""Durability: checkpoints and the write-ahead batch journal.

Long-running monitoring deployments (the paper's motivating social-network
workloads) need restartability; this module provides the two halves of the
service layer's durability story:

* **Checkpoints** (:func:`save_cplds` / :func:`load_cplds`) serialise a
  *quiescent* CPLDS — graph edges, live levels, parameters, batch counter —
  to a compressed numpy archive guarded by a format version and a CRC-32
  checksum, and rebuild an equivalent structure, recomputing the degree
  counters from the restored levels (they are a pure function of graph +
  levels, see :meth:`LevelState.recompute_counters`).  Corrupted or
  truncated archives raise a typed
  :class:`~repro.errors.CheckpointCorruptError` instead of raw numpy/zip
  errors, so recovery code can fall back to an older checkpoint.

* **The batch journal** (:class:`BatchJournal`) is an append-only,
  checksummed record of every batch the service layer applies, written
  *before* the batch touches the structure (write-ahead) and committed with
  a marker afterwards.  Recovery is therefore *restore the newest valid
  checkpoint, then replay the committed journal suffix* — batch by batch,
  which reproduces the exact level history (the PLDS is deterministic under
  the sequential executor).  A torn final record — the signature of a crash
  mid-append — is tolerated and dropped; corruption anywhere earlier raises
  :class:`~repro.errors.JournalCorruptError`.

Only *quiescent* state is checkpointed: descriptors live strictly within a
batch, so a structure with no batch in flight has nothing transient to save.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import IO, Iterable

import numpy as np

from repro.core.cplds import CPLDS
from repro.errors import (
    BatchInProgressError,
    CheckpointCorruptError,
    JournalCorruptError,
    PersistError,
    ReproError,
)
from repro.lds.params import LDSParams
from repro.types import Edge

#: Format version embedded in every checkpoint.  Version 2 added the CRC-32
#: ``checksum`` field (version-1 archives are no longer loadable); version 3
#: added the level-store ``backend`` field.  Version-2 archives still load
#: (they predate the backend seam and restore onto the object backend).
FORMAT_VERSION = 3

#: Oldest checkpoint format :func:`load_cplds` still understands.
MIN_FORMAT_VERSION = 2

#: Format version embedded in every journal's genesis record.
JOURNAL_VERSION = 1


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def _checkpoint_checksum(
    num_vertices: int,
    edges: np.ndarray,
    levels: np.ndarray,
    batch_number: int,
    delta: float,
    lam: float,
    group_height: int,
    backend: str | None = None,
) -> int:
    """CRC-32 over every field that determines the restored structure.

    ``backend=None`` reproduces the version-2 checksum (no backend field);
    version-3 archives fold the backend name into the scalar tuple.
    """
    crc = zlib.crc32(edges.tobytes())
    crc = zlib.crc32(levels.tobytes(), crc)
    if backend is None:
        scalars = repr((num_vertices, batch_number, delta, lam, group_height))
    else:
        scalars = repr(
            (num_vertices, batch_number, delta, lam, group_height, backend)
        )
    return zlib.crc32(scalars.encode("utf-8"), crc)


def save_cplds(
    cplds: CPLDS, path: str | os.PathLike[str], *, verify: bool = True
) -> None:
    """Serialise a quiescent CPLDS to ``path`` (.npz archive).

    Raises :class:`~repro.errors.BatchInProgressError` if any descriptor is
    still marked (a batch is executing).  With ``verify`` (the default) the
    LDS invariants are checked first, so a structure wounded by a mid-batch
    failure (see :meth:`CPLDS.rebuild`) cannot be checkpointed silently.
    """
    if cplds.descriptors.marked_vertices or any(
        s is not None for s in cplds.descriptors.slots
    ):
        raise BatchInProgressError(
            "cannot checkpoint: descriptors are marked (batch in flight)"
        )
    if verify:
        cplds.check_invariants()
    graph = cplds.graph
    edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    levels = np.asarray(cplds.plds.state.levels_snapshot(), dtype=np.int64)
    params = cplds.params
    backend = cplds.backend
    checksum = _checkpoint_checksum(
        graph.num_vertices,
        edges,
        levels,
        cplds.batch_number,
        params.delta,
        params.lam,
        params.group_height,
        backend,
    )
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        num_vertices=np.int64(graph.num_vertices),
        edges=edges,
        levels=levels,
        batch_number=np.int64(cplds.batch_number),
        delta=np.float64(params.delta),
        lam=np.float64(params.lam),
        group_height=np.int64(params.group_height),
        backend=np.str_(backend),
        checksum=np.uint32(checksum),
    )


def load_cplds(path: str | os.PathLike[str]) -> CPLDS:
    """Rebuild a CPLDS from a checkpoint written by :func:`save_cplds`.

    The restored structure answers reads identically to the saved one and
    accepts new batches immediately.  An unreadable, truncated, or
    checksum-mismatched archive raises
    :class:`~repro.errors.CheckpointCorruptError`; an archive written by an
    incompatible library version raises the same (the version field is
    validated before anything else is trusted).
    """
    try:
        # Own the handle: np.load's error paths (e.g. a truncated archive
        # that fails zip parsing) would otherwise leave it to the GC.
        with open(path, "rb") as fh, np.load(fh) as data:
            version = int(data["format_version"])
            if not MIN_FORMAT_VERSION <= version <= FORMAT_VERSION:
                raise CheckpointCorruptError(
                    f"unsupported checkpoint format {version} "
                    f"(supported: {MIN_FORMAT_VERSION}..{FORMAT_VERSION})"
                )
            n = int(data["num_vertices"])
            edges_arr = np.asarray(data["edges"], dtype=np.int64).reshape(-1, 2)
            levels_arr = np.asarray(data["levels"], dtype=np.int64)
            batch_number = int(data["batch_number"])
            delta = float(data["delta"])
            lam = float(data["lam"])
            group_height = int(data["group_height"])
            # Version 2 predates the backend seam: checksum with no backend
            # component, restore onto the object backend.
            backend = str(data["backend"]) if version >= 3 else None
            stored = int(data["checksum"])
    except ReproError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, KeyError, ...
        raise CheckpointCorruptError(
            f"checkpoint {os.fspath(path)!r} is unreadable: {exc}"
        ) from exc
    expected = _checkpoint_checksum(
        n, edges_arr, levels_arr, batch_number, delta, lam, group_height, backend
    )
    if stored != expected:
        raise CheckpointCorruptError(
            f"checkpoint {os.fspath(path)!r} failed its checksum "
            f"(stored {stored:#010x}, computed {expected:#010x})"
        )
    if len(levels_arr) != n:
        raise CheckpointCorruptError(
            f"checkpoint {os.fspath(path)!r} has {len(levels_arr)} levels "
            f"for {n} vertices"
        )
    edges = [tuple(int(x) for x in row) for row in edges_arr]
    levels = levels_arr.astype(int).tolist()
    params = LDSParams(n, delta=delta, lam=lam, levels_per_group=group_height)

    # The restored levels must be a valid LDS state; fail fast otherwise.
    try:
        return _restore_state(
            n, params, edges, levels, batch_number,
            backend=backend if backend is not None else "object",
        )
    except Exception as exc:
        raise CheckpointCorruptError(
            f"checkpoint {os.fspath(path)!r} decodes to an inconsistent "
            f"structure: {exc}"
        ) from exc


def _restore_state(
    n: int,
    params: LDSParams,
    edges: list[Edge],
    levels: list[int],
    batch_number: int,
    backend: str = "object",
) -> CPLDS:
    """Materialise a CPLDS from raw saved state (shared by checkpoint and
    journal-snapshot restore); raises on an inconsistent level assignment."""
    from repro import engines

    cplds = engines.create("cplds", n, params=params, backend=backend)
    cplds.graph.insert_batch(edges)
    cplds.plds.state.load_levels(levels)
    cplds.batch_number = batch_number
    cplds.check_invariants()
    return cplds


def cplds_from_snapshot(genesis: dict, snapshot: dict) -> CPLDS:
    """Materialise the CPLDS embedded in a journal ``snapshot`` record.

    ``genesis`` supplies the dimensions and parameters; the snapshot record
    carries levels, edges, and the batch counter.  An inconsistent snapshot
    raises :class:`~repro.errors.JournalCorruptError` (the record's CRC
    already passed, so inconsistency means a logic bug or hand-edited file).
    """
    n = int(genesis["num_vertices"])
    params = LDSParams(
        n,
        delta=float(genesis["delta"]),
        lam=float(genesis["lam"]),
        levels_per_group=int(genesis["group_height"]),
    )
    try:
        return _restore_state(
            n,
            params,
            [(int(u), int(v)) for u, v in snapshot["edges"]],
            [int(x) for x in snapshot["levels"]],
            int(snapshot["batch_number"]),
            backend=str(genesis.get("backend", "object")),
        )
    except ReproError:
        raise
    except Exception as exc:
        raise JournalCorruptError(
            f"journal snapshot at seq {snapshot.get('seq')} decodes to an "
            f"inconsistent structure: {exc}"
        ) from exc


def seed_epoch_store(cplds: CPLDS, store) -> None:
    """Re-seed an epoch-snapshot store from a (recovered) structure.

    Recovery restores levels by checkpoint + replay, so the read tier's
    history must be re-anchored: epochs the crash rolled back are dropped
    and the recovered state becomes the newest retained epoch (see
    :meth:`repro.reads.EpochSnapshotStore.reseed`), keeping pinned-epoch
    semantics — pre-crash pins at or below the recovery point stay
    bit-identical, rolled-back pins force-advance — across the crash.
    The store is (re-)attached so subsequent batches publish again.
    """
    from repro.reads import attach_epoch_store

    attach_epoch_store(cplds, store)


# ----------------------------------------------------------------------
# The write-ahead batch journal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchRecord:
    """One journaled batch: its sequence number and its two sub-batches."""

    seq: int
    insertions: tuple[Edge, ...]
    deletions: tuple[Edge, ...]


@dataclass
class JournalContents:
    """Everything a scan of a journal file recovered.

    ``records`` preserves file order; ``torn_tail`` reports whether the scan
    dropped an incomplete final record (the normal signature of a crash
    mid-append — not an error).
    """

    genesis: dict
    records: list[dict] = field(default_factory=list)
    torn_tail: bool = False

    def committed_batches(self) -> list[BatchRecord]:
        """The replayable history: batch records with a commit marker, in
        sequence order."""
        committed = {
            r["seq"] for r in self.records if r.get("type") == "commit"
        }
        out = []
        for r in self.records:
            if r.get("type") == "batch" and r["seq"] in committed:
                out.append(
                    BatchRecord(
                        seq=r["seq"],
                        insertions=tuple((u, v) for u, v in r["ins"]),
                        deletions=tuple((u, v) for u, v in r["del"]),
                    )
                )
        out.sort(key=lambda r: r.seq)
        return out

    def checkpoint_notes(self) -> list[tuple[int, str]]:
        """(seq, filename) of every checkpoint note, in file order."""
        return [
            (r["seq"], r["file"])
            for r in self.records
            if r.get("type") == "checkpoint"
        ]

    def last_seq(self) -> int:
        """Highest sequence number mentioned by any surviving record."""
        seqs = [r["seq"] for r in self.records if "seq" in r]
        return max(seqs, default=0)

    def latest_snapshot(self) -> dict | None:
        """The newest embedded state snapshot record, if any.

        Snapshots are written by :meth:`BatchJournal.compact` when a
        recovered service re-bases its journal; they make the journal
        self-sufficient again after records below a checkpoint were lost.
        """
        snap = None
        for r in self.records:
            if r.get("type") == "snapshot":
                snap = r
        return snap

    def floor(self) -> int:
        """Lowest sequence number this journal can still restore to.

        History at or below the newest snapshot's sequence number was
        compacted away: recovery must start from a base (checkpoint or the
        snapshot itself) at least this new, never from genesis replay.
        """
        snap = self.latest_snapshot()
        return int(snap["seq"]) if snap is not None else 0


def _genesis_payload(
    num_vertices: int, params: LDSParams, backend: str = "object"
) -> dict:
    """The journal's first record: dimensions, LDS parameters, backend.

    ``backend`` is an additive field (journals written before the
    level-store seam simply lack it and restore onto the object backend),
    so the journal version is unchanged.
    """
    return {
        "type": "genesis",
        "journal_version": JOURNAL_VERSION,
        "num_vertices": num_vertices,
        "delta": params.delta,
        "lam": params.lam,
        "group_height": params.group_height,
        "backend": backend,
    }


def _encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8"))
    return f"{crc:08x} {body}\n".encode("utf-8")


def _decode_line(line: bytes) -> dict | None:
    """Parse one journal line; None means invalid (torn or corrupt)."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line.decode("utf-8")
        crc_hex, body = text[:-1].split(" ", 1)
        if zlib.crc32(body.encode("utf-8")) != int(crc_hex, 16):
            return None
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class BatchJournal:
    """Append-only, checksummed write-ahead log of applied batches.

    Line format: ``<crc32-hex> <compact-json>\\n``.  The first record is a
    *genesis* record fixing the vertex universe and LDS parameters, so a
    journal alone suffices to rebuild the structure from scratch.  Batches
    are appended **before** they are applied and followed by a tiny commit
    marker on success; only committed records are replayed, so a batch that
    died mid-apply (and was re-tried or bisected under new sequence numbers)
    never reaches a recovered structure twice.

    ``sync=True`` fsyncs after every append (true crash durability at a
    throughput cost); the default flushes to the OS, which survives process
    death — the failure mode the supervisor handles in-process.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        _file: IO[bytes],
        _genesis: dict,
        _next_seq: int,
        sync: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self._file = _file
        self.genesis = _genesis
        self._next_seq = _next_seq
        self.sync = sync

    # -- constructors ----------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | os.PathLike[str],
        *,
        num_vertices: int,
        params: LDSParams,
        backend: str = "object",
        sync: bool = False,
    ) -> "BatchJournal":
        """Start a fresh journal at ``path`` (which must not exist)."""
        if os.path.exists(path):
            raise PersistError(f"journal {os.fspath(path)!r} already exists")
        genesis = _genesis_payload(num_vertices, params, backend)
        fh = open(path, "ab")
        journal = cls(
            path, _file=fh, _genesis=genesis, _next_seq=1, sync=sync
        )
        journal._write(genesis)
        return journal

    @classmethod
    def compact(
        cls,
        path: str | os.PathLike[str],
        *,
        cplds: CPLDS,
        seq: int,
        sync: bool = False,
    ) -> "BatchJournal":
        """Atomically rewrite the journal as genesis + one state snapshot.

        Used when a recovered service re-opens its journal: the old file
        may be missing batch records that the recovery checkpoint covered
        (tail truncation below a checkpoint), so appending to it would
        leave a journal that can never again reproduce the live state by
        replay.  Compaction re-bases the journal on the recovered state
        itself — an embedded, CRC-guarded snapshot at sequence ``seq`` —
        after which the journal alone restores to ``seq`` regardless of
        what happens to the checkpoint files.  The rewrite goes through a
        temporary file and ``os.replace``, so a crash mid-compaction
        leaves either the old journal or the new one, never a hybrid.
        """
        path = os.fspath(path)
        genesis = _genesis_payload(
            cplds.graph.num_vertices, cplds.params, cplds.backend
        )
        snapshot = {
            "type": "snapshot",
            "seq": int(seq),
            "batch_number": int(cplds.batch_number),
            "levels": [int(x) for x in cplds.plds.state.levels_snapshot()],
            "edges": [[int(u), int(v)] for u, v in cplds.graph.edges()],
        }
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_encode_record(genesis))
            fh.write(_encode_record(snapshot))
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        return cls(
            path,
            _file=open(path, "ab"),
            _genesis=genesis,
            _next_seq=int(seq) + 1,
            sync=sync,
        )

    @classmethod
    def open(
        cls, path: str | os.PathLike[str], *, sync: bool = False
    ) -> "BatchJournal":
        """Re-open an existing journal for appending (after a scan).

        A torn final record (partial write from a crash) is truncated away
        before the append handle is opened — otherwise new records would
        land *after* the damage, turning tolerated tail damage into
        mid-stream corruption on the next scan.
        """
        contents = cls.scan(path)
        if contents.torn_tail:
            with open(path, "rb") as reader:
                lines = reader.readlines()
            with open(path, "r+b") as writer:
                writer.truncate(sum(len(line) for line in lines[:-1]))
        fh = open(path, "ab")
        return cls(
            path,
            _file=fh,
            _genesis=contents.genesis,
            _next_seq=contents.last_seq() + 1,
            sync=sync,
        )

    # -- reading ---------------------------------------------------------
    @staticmethod
    def scan(path: str | os.PathLike[str]) -> JournalContents:
        """Read and validate a journal file.

        Tolerates (and reports) a torn final record; raises
        :class:`~repro.errors.JournalCorruptError` for an invalid genesis or
        for corruption before the tail.
        """
        try:
            with open(path, "rb") as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise JournalCorruptError(
                f"journal {os.fspath(path)!r} is unreadable: {exc}"
            ) from exc
        if not lines:
            raise JournalCorruptError(
                f"journal {os.fspath(path)!r} is empty (no genesis record)"
            )
        genesis = _decode_line(lines[0])
        if (
            genesis is None
            or genesis.get("type") != "genesis"
            or genesis.get("journal_version") != JOURNAL_VERSION
        ):
            raise JournalCorruptError(
                f"journal {os.fspath(path)!r} has an invalid genesis record"
            )
        contents = JournalContents(genesis=genesis)
        for i, line in enumerate(lines[1:], start=1):
            payload = _decode_line(line)
            if payload is None:
                if i == len(lines) - 1:
                    contents.torn_tail = True
                    break
                raise JournalCorruptError(
                    f"journal {os.fspath(path)!r} record {i} is corrupt "
                    "(not at the tail)"
                )
            contents.records.append(payload)
        return contents

    # -- writing ---------------------------------------------------------
    def _write(self, payload: dict) -> None:
        self._file.write(_encode_record(payload))
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def append_batch(
        self, insertions: Iterable[Edge], deletions: Iterable[Edge]
    ) -> int:
        """Write-ahead record for one batch; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._write(
            {
                "type": "batch",
                "seq": seq,
                "ins": [[int(u), int(v)] for u, v in insertions],
                "del": [[int(u), int(v)] for u, v in deletions],
            }
        )
        return seq

    def commit(self, seq: int) -> None:
        """Mark batch ``seq`` as durably applied."""
        self._write({"type": "commit", "seq": seq})

    def note_checkpoint(self, seq: int, filename: str) -> None:
        """Record that a checkpoint covering batches ``<= seq`` was written."""
        self._write({"type": "checkpoint", "seq": seq, "file": filename})

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
