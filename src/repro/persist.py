"""Checkpointing: save and restore a quiescent CPLDS.

Long-running monitoring deployments (the paper's motivating social-network
workloads) need restartability; this module serialises a quiescent CPLDS —
graph edges, live levels, parameters, batch counter — to a compressed numpy
archive and rebuilds an equivalent structure, recomputing the degree
counters from the restored levels (they are a pure function of graph +
levels, see :meth:`LevelState.recompute_counters`).

Only *quiescent* state is checkpointed: descriptors live strictly within a
batch, so a structure with no batch in flight has nothing transient to save.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.cplds import CPLDS
from repro.errors import BatchInProgressError, ReproError
from repro.lds.params import LDSParams

#: Format version embedded in every checkpoint.
FORMAT_VERSION = 1


def save_cplds(
    cplds: CPLDS, path: str | os.PathLike[str], *, verify: bool = True
) -> None:
    """Serialise a quiescent CPLDS to ``path`` (.npz archive).

    Raises :class:`~repro.errors.BatchInProgressError` if any descriptor is
    still marked (a batch is executing).  With ``verify`` (the default) the
    LDS invariants are checked first, so a structure wounded by a mid-batch
    failure (see :meth:`CPLDS.rebuild`) cannot be checkpointed silently.
    """
    if cplds.descriptors.marked_vertices or any(
        s is not None for s in cplds.descriptors.slots
    ):
        raise BatchInProgressError(
            "cannot checkpoint: descriptors are marked (batch in flight)"
        )
    if verify:
        cplds.check_invariants()
    graph = cplds.graph
    edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    params = cplds.params
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        num_vertices=np.int64(graph.num_vertices),
        edges=edges,
        levels=np.asarray(cplds.plds.state.level, dtype=np.int64),
        batch_number=np.int64(cplds.batch_number),
        delta=np.float64(params.delta),
        lam=np.float64(params.lam),
        group_height=np.int64(params.group_height),
    )


def load_cplds(path: str | os.PathLike[str]) -> CPLDS:
    """Rebuild a CPLDS from a checkpoint written by :func:`save_cplds`.

    The restored structure answers reads identically to the saved one and
    accepts new batches immediately.
    """
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ReproError(
                f"unsupported checkpoint format {version} "
                f"(expected {FORMAT_VERSION})"
            )
        n = int(data["num_vertices"])
        edges = [tuple(int(x) for x in row) for row in data["edges"]]
        levels = data["levels"].astype(int).tolist()
        batch_number = int(data["batch_number"])
        params = LDSParams(
            n,
            delta=float(data["delta"]),
            lam=float(data["lam"]),
            levels_per_group=int(data["group_height"]),
        )

    cplds = CPLDS(n, params=params)
    graph = cplds.graph
    graph.insert_batch(edges)
    state = cplds.plds.state
    state.level[:] = levels
    up, down = state.recompute_counters()
    state.up_deg[:] = up
    for v in range(n):
        state.down[v] = down[v]
    cplds.batch_number = batch_number
    # The restored levels must be a valid LDS state; fail fast otherwise.
    cplds.check_invariants()
    return cplds
