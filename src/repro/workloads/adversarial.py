"""Adversarial workload constructions.

The worst cases for a dynamic k-core structure are *structured*, not random:
deep cascades, flash crowds, long dependency chains.  The tests and benches
use these constructions in several places; this module packages them as
named, documented generators so their intent is explicit and reusable.
"""

from __future__ import annotations

from repro.types import Edge
from repro.workloads.batches import Batch, BatchStream


def clique_edges(size: int, offset: int = 0) -> list[Edge]:
    """All edges of a ``size``-clique on vertices ``offset..offset+size-1``."""
    return [
        (u + offset, v + offset)
        for u in range(size)
        for v in range(u + 1, size)
    ]


def flash_crowd(
    clique_size: int, background: int = 200
) -> tuple[int, BatchStream]:
    """§6.3's unbounded-error scenario: a whole clique lands in one batch.

    Returns ``(num_vertices, stream)`` where the stream is a sparse path
    background batch followed by the single clique batch — the batch that
    moves its members ``O(log_{1+δ} clique_size)`` groups at once.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    n = clique_size + background
    path = [(i, i + 1) for i in range(n - 1)]
    batches = [
        Batch(kind="insert", edges=tuple(path)),
        Batch(kind="insert", edges=tuple(clique_edges(clique_size))),
    ]
    return n, BatchStream(name=f"flash-{clique_size}", num_vertices=n, batches=batches)


def cascade_chain(length: int) -> tuple[int, BatchStream]:
    """A one-edge batch whose cascade ripples through a prepared structure.

    Builds a near-complete clique edge-by-edge (each its own batch), leaving
    one strategically chosen edge for the final single-edge batch — the
    longest dependency DAG a single update can create at this size.
    """
    if length < 4:
        raise ValueError("length must be >= 4")
    edges = clique_edges(length)
    *prefix, last = edges
    batches = [Batch(kind="insert", edges=(e,)) for e in prefix]
    batches.append(Batch(kind="insert", edges=(last,)))
    return length, BatchStream(
        name=f"cascade-{length}", num_vertices=length, batches=batches
    )


def teardown_wave(clique_size: int, waves: int = 3) -> tuple[int, BatchStream]:
    """Deletion stress: a deep core dismantled in successive waves.

    Each wave removes an interleaved slice of the clique's edges, forcing
    repeated desire-level recomputation across the surviving structure —
    the deletion phase's worst case.
    """
    if clique_size < 3:
        raise ValueError("clique_size must be >= 3")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    edges = clique_edges(clique_size)
    batches = [Batch(kind="insert", edges=tuple(edges))]
    for w in range(waves):
        batches.append(Batch(kind="delete", edges=tuple(edges[w::waves])))
    return clique_size, BatchStream(
        name=f"teardown-{clique_size}x{waves}",
        num_vertices=clique_size,
        batches=batches,
    )


def sandwich_adversary(n: int = 16) -> tuple[int, BatchStream]:
    """Alternating grow/shrink batches that maximise level oscillation.

    Vertices repeatedly climb and fall across group boundaries, which is the
    pattern that stresses the read sandwich (live levels changing while
    reads are in flight) and descriptor reuse across batches.
    """
    if n < 4:
        raise ValueError("n must be >= 4")
    edges = clique_edges(n)
    batches = []
    for _ in range(3):
        batches.append(Batch(kind="insert", edges=tuple(edges)))
        batches.append(Batch(kind="delete", edges=tuple(edges[::2])))
        batches.append(Batch(kind="delete", edges=tuple(edges[1::2])))
    return n, BatchStream(name=f"sandwich-{n}", num_vertices=n, batches=batches)
