"""Replay a batch stream through any registered engine.

This is the glue the examples and quick experiments kept re-implementing:
build an engine via :mod:`repro.engines`, feed it a
:class:`~repro.workloads.batches.BatchStream` (or any iterable of
:class:`~repro.workloads.batches.Batch`) batch by batch, and collect the
per-batch application counts.  Because construction goes through the
registry, the same replay runs unchanged against every engine and
level-store backend combination — which is exactly what the differential
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro import engines
from repro.errors import WorkloadError
from repro.lds.params import LDSParams
from repro.workloads.batches import Batch, BatchStream
from repro.workloads.mixes import ReadHeavyMixGenerator


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a stream: the engine plus per-batch counts."""

    engine: object
    applied: tuple[int, ...]

    @property
    def total_applied(self) -> int:
        return sum(self.applied)


def replay_stream(
    stream: BatchStream | Iterable[Batch],
    *,
    num_vertices: int | None = None,
    engine: str = "cplds",
    backend: str = "object",
    params: LDSParams | None = None,
    executor=None,
    check_invariants: bool = False,
) -> ReplayResult:
    """Build an engine from the registry and replay a stream into it.

    ``num_vertices`` is taken from the stream when it is a
    :class:`BatchStream`; for a bare batch iterable it must be given.
    With ``check_invariants=True`` the engine's ``check_invariants`` is run
    after every batch (slow; meant for tests and examples).
    """
    if isinstance(stream, BatchStream):
        n = stream.num_vertices
        batches: Iterable[Batch] = stream.batches
    else:
        if num_vertices is None:
            raise WorkloadError(
                "num_vertices is required when replaying a bare batch iterable"
            )
        n = num_vertices
        batches = stream

    impl = engines.create(
        engine, n, backend=backend, params=params, executor=executor
    )
    applied: list[int] = []
    for batch in batches:
        if batch.kind == "insert":
            applied.append(impl.insert_batch(batch.edges))
        elif batch.kind == "delete":
            applied.append(impl.delete_batch(batch.edges))
        else:  # pragma: no cover - Batch is Literal-typed
            raise WorkloadError(f"unknown batch kind {batch.kind!r}")
        if check_invariants:
            impl.check_invariants()
    return ReplayResult(engine=impl, applied=tuple(applied))


@dataclass(frozen=True)
class ReadHeavyResult:
    """Outcome of a read-heavy replay through the epoch read tier."""

    engine: object
    store: object
    insertions: int
    deletions: int
    bulk_reads: int
    vertices_read: int
    #: Newest epoch of every bulk read's pin, in schedule order.
    epochs_read: tuple[int, ...]


def run_read_heavy(
    mix: ReadHeavyMixGenerator,
    *,
    engine: str = "cplds",
    backend: str = "object",
    params: LDSParams | None = None,
    epoch_window: int = 8,
) -> ReadHeavyResult:
    """Replay a :class:`~repro.workloads.mixes.ReadHeavyMixGenerator`.

    Updates go through ``apply_batch`` on an engine built with an attached
    :class:`~repro.reads.EpochSnapshotStore`; every ``("read", op)`` item
    pins the newest epoch and bulk-reads the op's vertex block, so the
    read schedule exercises the multi-version tier rather than the live
    structure.  Only engines exposing the epoch seam (the CPLDS family)
    are accepted — others raise ``TypeError`` at construction.
    """
    from repro.reads import EpochSnapshotStore

    store = EpochSnapshotStore(window=epoch_window)
    impl = engines.create(
        engine, mix.num_vertices, backend=backend, params=params,
        epoch_store=store,
    )
    total_ins = total_del = bulk_reads = vertices_read = 0
    epochs: list[int] = []
    for kind, item in mix:
        if kind == "update":
            ins, dels = impl.apply_batch(
                insertions=item.insertions, deletions=item.deletions
            )
            total_ins += ins
            total_del += dels
        else:
            with store.pin() as pin:
                pin.coreness_many(item.vertices)
                epochs.append(pin.epoch)
            bulk_reads += 1
            vertices_read += len(item)
    return ReadHeavyResult(
        engine=impl,
        store=store,
        insertions=total_ins,
        deletions=total_del,
        bulk_reads=bulk_reads,
        vertices_read=vertices_read,
        epochs_read=tuple(epochs),
    )
