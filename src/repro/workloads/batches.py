"""Update-batch streams for the experiment harness.

The paper's experiments run "batches of insertions and deletions ... Unless
specified otherwise, all experiments are conducted on batches of 10⁶ edges."
At reproduction scale the batch size is a parameter; the construction is the
same: shuffle a dataset's edge list, split it into fixed-size batches, and
feed them as insertions (then optionally as deletions of the same edges, to
drive the deletion-phase experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.types import Edge

BatchKind = Literal["insert", "delete"]


@dataclass(frozen=True)
class Batch:
    """One update batch: a kind plus its edges."""

    kind: BatchKind
    edges: tuple[Edge, ...]

    def __len__(self) -> int:
        return len(self.edges)


def split_into_batches(
    edges: Sequence[Edge],
    batch_size: int,
    kind: BatchKind = "insert",
    *,
    shuffle_seed: int | None = None,
) -> list[Batch]:
    """Split an edge list into fixed-size batches, optionally shuffling first.

    The final batch may be smaller.  Raises on non-positive sizes.
    """
    if batch_size <= 0:
        raise WorkloadError(f"batch_size must be positive, got {batch_size}")
    edges = list(edges)
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        perm = rng.permutation(len(edges))
        edges = [edges[i] for i in perm]
    return [
        Batch(kind=kind, edges=tuple(edges[i : i + batch_size]))
        for i in range(0, len(edges), batch_size)
    ]


@dataclass
class BatchStream:
    """A named, replayable sequence of batches.

    ``insert_then_delete`` is the paper's standard shape: stream the dataset
    in as insertion batches, then stream (a fraction of) it back out as
    deletion batches, so both phases get exercised on realistic states.
    """

    name: str
    num_vertices: int
    batches: list[Batch]

    @classmethod
    def insert_only(
        cls,
        name: str,
        num_vertices: int,
        edges: Sequence[Edge],
        batch_size: int,
        *,
        shuffle_seed: int | None = 0,
    ) -> "BatchStream":
        return cls(
            name=name,
            num_vertices=num_vertices,
            batches=split_into_batches(
                edges, batch_size, "insert", shuffle_seed=shuffle_seed
            ),
        )

    @classmethod
    def insert_then_delete(
        cls,
        name: str,
        num_vertices: int,
        edges: Sequence[Edge],
        batch_size: int,
        *,
        delete_fraction: float = 0.5,
        shuffle_seed: int | None = 0,
    ) -> "BatchStream":
        if not 0.0 <= delete_fraction <= 1.0:
            raise WorkloadError(
                f"delete_fraction must be in [0, 1], got {delete_fraction}"
            )
        inserts = split_into_batches(
            edges, batch_size, "insert", shuffle_seed=shuffle_seed
        )
        num_delete = int(len(edges) * delete_fraction)
        flat = [e for b in inserts for e in b.edges]
        deletes = split_into_batches(flat[:num_delete], batch_size, "delete")
        return cls(name=name, num_vertices=num_vertices, batches=inserts + deletes)

    def __iter__(self) -> Iterator[Batch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_edges(self) -> int:
        return sum(len(b) for b in self.batches)

    def kinds(self) -> list[BatchKind]:
        return [b.kind for b in self.batches]

    def only(self, kind: BatchKind) -> "BatchStream":
        """A sub-stream with batches of one kind (keeps relative order)."""
        return BatchStream(
            name=f"{self.name}:{kind}",
            num_vertices=self.num_vertices,
            batches=[b for b in self.batches if b.kind == kind],
        )
