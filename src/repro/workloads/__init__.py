"""Workload construction: update-batch streams and read generators.

The experiment drivers in :mod:`repro.harness.experiments` combine a
:class:`~repro.workloads.batches.BatchStream` (what the update processes
apply) with a read policy from :mod:`repro.workloads.reads` (what the read
processes ask), mirroring the paper's setup: batches of a fixed size drawn
from each dataset, with uniform-random vertex reads generated continuously
for the duration of each batch.
"""

from repro.workloads import adversarial
from repro.workloads.batches import Batch, BatchStream, split_into_batches
from repro.workloads.mixes import (
    BulkReadOp,
    MixedBatch,
    MixedStreamGenerator,
    ReadHeavyMixGenerator,
    preprocess_mixed_batch,
)
from repro.workloads.reads import UniformReadGenerator, ZipfReadGenerator
from repro.workloads.runner import (
    ReadHeavyResult,
    ReplayResult,
    replay_stream,
    run_read_heavy,
)

__all__ = [
    "ReadHeavyResult",
    "ReplayResult",
    "replay_stream",
    "run_read_heavy",
    "BulkReadOp",
    "ReadHeavyMixGenerator",
    "adversarial",
    "Batch",
    "BatchStream",
    "split_into_batches",
    "MixedBatch",
    "MixedStreamGenerator",
    "preprocess_mixed_batch",
    "UniformReadGenerator",
    "ZipfReadGenerator",
]
