"""Read-workload generators.

The paper's read threads "continuously generate reads of vertices chosen
uniformly at random for the duration of the batch"; that is
:class:`UniformReadGenerator`.  :class:`ZipfReadGenerator` adds the skewed
access pattern typical of the social-network read paths the paper motivates
with (TAO-style workloads), used by the extension benches.

Generators are deterministic given their seed and safe to share across
threads only by giving each thread its own instance (the paper's model:
every read is generated and executed by a single read process).
"""

from __future__ import annotations

import numpy as np

from repro.types import Vertex


class UniformReadGenerator:
    """Uniform-random vertex picks, buffered for cheap per-call cost."""

    def __init__(self, num_vertices: int, seed: int = 0, buffer_size: int = 4096) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = num_vertices
        self._rng = np.random.default_rng(seed)
        self._buffer_size = buffer_size
        self._buf: list[int] = []
        self._pos = 0

    def _refill(self) -> None:
        self._buf = self._rng.integers(
            0, self.num_vertices, size=self._buffer_size
        ).tolist()
        self._pos = 0

    def next(self) -> Vertex:
        """The next vertex to read."""
        if self._pos >= len(self._buf):
            self._refill()
        v = self._buf[self._pos]
        self._pos += 1
        return v

    def take(self, k: int) -> list[Vertex]:
        """The next ``k`` vertices."""
        return [self.next() for _ in range(k)]


class ZipfReadGenerator:
    """Zipf-skewed vertex picks (rank-frequency exponent ``s``).

    Vertex ids are used directly as ranks, matching how the synthetic
    datasets assign low ids to high-degree vertices — so hot readers hit hot
    vertices, the adversarial case for descriptor-DAG traffic.
    """

    def __init__(
        self,
        num_vertices: int,
        s: float = 1.1,
        seed: int = 0,
        buffer_size: int = 4096,
    ) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if s <= 0:
            raise ValueError("zipf exponent must be positive")
        self.num_vertices = num_vertices
        ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
        weights = ranks**-s
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(seed)
        self._buffer_size = buffer_size
        self._buf: list[int] = []
        self._pos = 0

    def _refill(self) -> None:
        self._buf = self._rng.choice(
            self.num_vertices, size=self._buffer_size, p=self._probs
        ).tolist()
        self._pos = 0

    def next(self) -> Vertex:
        if self._pos >= len(self._buf):
            self._refill()
        v = self._buf[self._pos]
        self._pos += 1
        return v

    def take(self, k: int) -> list[Vertex]:
        return [self.next() for _ in range(k)]
