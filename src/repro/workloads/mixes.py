"""Mixed update streams and the paper's batch pre-processing.

Real workloads interleave insertions and deletions; the paper's framework
"separates [them] into insertion and deletion sub-batches during
pre-processing" (§2).  :func:`preprocess_mixed_batch` implements that
separation with the standard cancellation rules, and
:class:`MixedStreamGenerator` fabricates sliding-window style churn streams
(edges arrive, live for a while, and depart) for the extension benches and
examples.  :class:`ReadHeavyMixGenerator` layers a read-dominated query
schedule on top of such a churn stream — seeded bursts of bulk reads
between update batches — for driving the epoch-snapshot read tier
(:mod:`repro.reads`) via :func:`repro.workloads.runner.run_read_heavy`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Literal, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.types import Edge, canonical_edge

Op = tuple[Literal["+", "-"], Edge]


@dataclass(frozen=True)
class MixedBatch:
    """A pre-processed mixed batch: disjoint insert and delete sub-batches."""

    insertions: tuple[Edge, ...]
    deletions: tuple[Edge, ...]

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)


def preprocess_mixed_batch(ops: Iterable[Op]) -> MixedBatch:
    """Split a mixed op sequence into insertion/deletion sub-batches.

    Within one batch, later operations on the same edge supersede earlier
    ones; an insert-then-delete (or delete-then-insert) pair collapses to
    just the final operation, matching the paper's collective batch
    semantics (the intermediate state is never observable anyway).
    """
    final: dict[Edge, str] = {}
    order: list[Edge] = []
    for op, (u, v) in ops:
        if op not in "+-":
            raise WorkloadError(f"unknown op {op!r}")
        e = canonical_edge(u, v)
        if e not in final:
            order.append(e)
        final[e] = op
    inserts = tuple(e for e in order if final[e] == "+")
    deletes = tuple(e for e in order if final[e] == "-")
    return MixedBatch(insertions=inserts, deletions=deletes)


class MixedStreamGenerator:
    """Sliding-window churn: edges arrive, persist for ``window`` batches,
    then depart.

    Models the paper's motivating workload shape (a social graph under
    follow/unfollow churn) while keeping the live graph size roughly
    stationary — useful for steady-state throughput measurements.
    """

    def __init__(
        self,
        edges: Sequence[Edge],
        batch_size: int,
        window: int = 4,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        if window <= 0:
            raise WorkloadError("window must be positive")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(edges))
        self._edges = [edges[i] for i in perm]
        self.batch_size = batch_size
        self.window = window

    def __iter__(self) -> Iterator[MixedBatch]:
        pending: deque[tuple[Edge, ...]] = deque()
        for i in range(0, len(self._edges), self.batch_size):
            arriving = tuple(self._edges[i : i + self.batch_size])
            departing: tuple[Edge, ...] = ()
            pending.append(arriving)
            if len(pending) > self.window:
                departing = pending.popleft()
            yield MixedBatch(insertions=arriving, deletions=departing)
        # Drain the window.
        while pending:
            yield MixedBatch(insertions=(), deletions=pending.popleft())

    def apply_all(self, impl) -> tuple[int, int]:
        """Apply the whole stream through ``impl.apply_batch``; return the
        total (insertions, deletions) applied."""
        total_ins = total_del = 0
        for batch in self:
            ins, dels = impl.apply_batch(
                insertions=batch.insertions, deletions=batch.deletions
            )
            total_ins += ins
            total_del += dels
        return total_ins, total_del


@dataclass(frozen=True)
class BulkReadOp:
    """One bulk read in a read-heavy mix: query these vertices' coreness."""

    vertices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.vertices)


class ReadHeavyMixGenerator:
    """Read-dominated workload: churn updates with bulk-read bursts between.

    Wraps a :class:`MixedStreamGenerator` and, after every update batch,
    yields a seeded burst of :class:`BulkReadOp` items — contiguous vertex
    blocks, which is the access shape the epoch read tier's
    ``coreness_many`` is built for.  Iteration yields ``("update", batch)``
    and ``("read", op)`` pairs; everything is a pure function of ``seed``.
    """

    def __init__(
        self,
        edges: Sequence[Edge],
        num_vertices: int,
        batch_size: int,
        *,
        reads_per_batch: int = 8,
        read_block: int = 64,
        window: int = 4,
        seed: int = 0,
    ) -> None:
        if num_vertices <= 0:
            raise WorkloadError("num_vertices must be positive")
        if reads_per_batch < 0:
            raise WorkloadError("reads_per_batch must be >= 0")
        if read_block <= 0:
            raise WorkloadError("read_block must be positive")
        self.updates = MixedStreamGenerator(
            edges, batch_size, window=window, seed=seed
        )
        self.num_vertices = num_vertices
        self.reads_per_batch = reads_per_batch
        self.read_block = min(read_block, num_vertices)
        self.seed = seed

    def __iter__(self) -> Iterator[tuple[str, MixedBatch | BulkReadOp]]:
        rng = np.random.default_rng(self.seed + 1)
        hi = self.num_vertices - self.read_block
        for batch in self.updates:
            yield "update", batch
            for _ in range(self.reads_per_batch):
                lo = int(rng.integers(0, hi + 1)) if hi > 0 else 0
                yield "read", BulkReadOp(
                    vertices=tuple(range(lo, lo + self.read_block))
                )
