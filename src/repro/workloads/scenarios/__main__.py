"""CLI for the scenario catalog: run, score, compare, gate.

The standard sweep substrate (see ``docs/scenarios.md``)::

    # Every bundled spec on one backend, JSONL report to a file:
    python -m repro.workloads.scenarios --catalog --backend columnar \\
        --out reports.jsonl

    # CI smoke: three fast specs, all backends, hard-fail on any SLO
    # FAIL or cross-backend work-counter divergence:
    python -m repro.workloads.scenarios --catalog \\
        --only fig5-batch-updates,staleness-slo,bipartite-churn \\
        --backend all --smoke --strict

    # One ad-hoc spec file:
    python -m repro.workloads.scenarios --spec my-scenario.yaml

Exit status: 0 on success; 1 on a hard failure (fault-path oracle
mismatch or FAILED health), and — with ``--strict`` — also on any SLO
FAIL verdict or cross-backend work-counter divergence.  Reports are
byte-deterministic unless ``--timing`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from repro import engines
from repro.workloads.scenarios import report as R
from repro.workloads.scenarios.runner import ScenarioRunResult, run_scenario
from repro.workloads.scenarios.spec import SpecError, load_catalog, load_spec


def _parse_backends(value: str) -> List[str]:
    if value == "all":
        return list(engines.backends())
    names = [b.strip() for b in value.split(",") if b.strip()]
    for name in names:
        if name not in engines.backends():
            raise argparse.ArgumentTypeError(
                f"unknown backend {name!r} "
                f"(available: {', '.join(engines.backends())}, or 'all')"
            )
    return names


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.scenarios",
        description=__doc__.splitlines()[0],
    )
    source = parser.add_mutually_exclusive_group(required=False)
    source.add_argument("--catalog", action="store_true",
                        help="run the bundled scenario catalog")
    source.add_argument("--spec", action="append", default=None,
                        metavar="PATH",
                        help="run a spec file (repeatable)")
    source.add_argument("--list", action="store_true",
                        help="list the bundled catalog and exit")
    parser.add_argument("--only", default=None, metavar="NAMES",
                        help="comma-separated scenario names to keep")
    parser.add_argument("--backend", type=_parse_backends, default=["object"],
                        metavar="B",
                        help="backend name(s), comma-separated, or 'all'")
    parser.add_argument("--smoke", action="store_true",
                        help="truncate every run to its spec's smoke_batches")
    parser.add_argument("--timing", action="store_true",
                        help="record wall-clock read latencies "
                             "(makes reports non-deterministic)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSONL report here")
    parser.add_argument("--table", default=None, metavar="PATH",
                        help="write the comparison table here ('-' = stdout)")
    parser.add_argument("--strict", action="store_true",
                        help="also exit non-zero on SLO FAIL verdicts or "
                             "cross-backend work-counter divergence")
    args = parser.parse_args(argv)

    try:
        if args.spec:
            specs = [load_spec(p) for p in args.spec]
        else:
            specs = load_catalog()
    except (SpecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.only:
        wanted = {n.strip() for n in args.only.split(",") if n.strip()}
        unknown = wanted - {s.name for s in specs}
        if unknown:
            print(
                f"error: --only names not in the catalog: {sorted(unknown)}",
                file=sys.stderr,
            )
            return 2
        specs = [s for s in specs if s.name in wanted]

    if args.list:
        for spec in specs:
            faulty = f", {len(spec.faults.events)} faults" if spec.faults else ""
            print(
                f"{spec.name:<24} {spec.graph.shape:<12} "
                f"{spec.traffic.pattern:<14} "
                f"{spec.traffic.batches} batches{faulty} — {spec.description}"
            )
        return 0

    results: List[ScenarioRunResult] = []
    for spec in specs:
        for backend in args.backend:
            result = run_scenario(
                spec, backend=backend, smoke=args.smoke, timing=args.timing
            )
            results.append(result)
            status = result.slo.get("status", "-")
            print(
                f"ran {spec.name:<24} [{backend:>17}] "
                f"updates={result.update_steps:<4} "
                f"reads={result.live_reads + result.epoch_blocks:<5} "
                f"slo={status:<6} ok={'yes' if result.ok else 'NO'}"
            )

    if args.out:
        R.write_jsonl(results, args.out, include_timing=args.timing)
        print(f"wrote {args.out} ({len(results)} rows)")
    table = R.render_table(results)
    if args.table == "-":
        print(table)
    elif args.table:
        with open(args.table, "w") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.table}")
    print(R.summary_line(results))

    hard_failures = [r for r in results if not r.ok]
    diverged = R.work_divergences(results)
    slo_fail = R.slo_failures(results)
    if hard_failures:
        for r in hard_failures:
            print(
                f"FAIL: {r.spec.name}[{r.backend}] "
                f"(slo={r.slo.get('status')}, faults={r.faults})",
                file=sys.stderr,
            )
        return 1
    if args.strict and (diverged or slo_fail):
        if diverged:
            print(f"strict: work-counter divergence: {diverged}",
                  file=sys.stderr)
        if slo_fail:
            print(f"strict: SLO failures: {slo_fail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
