"""Deterministic JSONL reports and cross-backend comparison tables.

One report row per (scenario, backend) run, serialized with sorted keys
and compact separators so that two runs of the same spec and seed produce
**byte-identical** lines — the property CI leans on.  The comparison
table groups rows by scenario across backends and flags two things:

* **work-counter divergence** — the deterministic work counters
  (rounds, moves, marked, DAGs) are a pure function of the update stream
  and must be bit-identical across level-store backends (the
  differential-test contract); any difference is a correctness signal,
  not noise;
* **SLO failures** — any scenario/backend whose declarative staleness or
  recovery targets came back FAIL.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.workloads.scenarios.runner import ScenarioRunResult

__all__ = [
    "load_rows",
    "render_table",
    "report_lines",
    "slo_failures",
    "summary_line",
    "work_divergences",
    "write_jsonl",
]


def report_lines(
    results: Sequence[ScenarioRunResult], *, include_timing: bool = False
) -> List[str]:
    """One canonical JSON line per run (sorted keys, compact separators)."""
    return [
        json.dumps(
            r.as_row(include_timing=include_timing),
            sort_keys=True,
            separators=(",", ":"),
        )
        for r in results
    ]


def write_jsonl(
    results: Sequence[ScenarioRunResult], path: str,
    *, include_timing: bool = False,
) -> None:
    """Write the report rows to ``path``, one line each."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for line in report_lines(results, include_timing=include_timing):
            fh.write(line + "\n")


def _by_scenario(
    results: Sequence[ScenarioRunResult],
) -> Dict[str, List[ScenarioRunResult]]:
    grouped: Dict[str, List[ScenarioRunResult]] = {}
    for r in results:
        grouped.setdefault(r.spec.name, []).append(r)
    return grouped


def work_divergences(
    results: Sequence[ScenarioRunResult],
) -> Dict[str, List[str]]:
    """Scenarios whose work counters differ across backends.

    Returns ``{scenario: [counter, ...]}`` for every scenario where at
    least two backends disagree on a deterministic work counter; empty
    means the differential contract held everywhere.
    """
    out: Dict[str, List[str]] = {}
    for name, rows in _by_scenario(results).items():
        if len(rows) < 2:
            continue
        baseline = rows[0].work
        diverged = sorted({
            counter
            for row in rows[1:]
            for counter in baseline
            if row.work.get(counter) != baseline[counter]
        })
        if diverged:
            out[name] = diverged
    return out


def slo_failures(
    results: Sequence[ScenarioRunResult],
) -> List[str]:
    """``"scenario[backend]"`` labels of every run with a FAIL verdict."""
    return [
        f"{r.spec.name}[{r.backend}]"
        for r in results
        if r.slo.get("status") == "FAIL"
    ]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_table(results: Sequence[ScenarioRunResult]) -> str:
    """Human-readable cross-backend / cross-scenario comparison table."""
    divergences = work_divergences(results)
    header = (
        "scenario", "backend", "mode", "updates", "ins", "dels",
        "reads", "moves", "rounds", "slo", "approx-max", "faults", "ok",
    )
    rows: List[Sequence[str]] = [header]
    for name, group in sorted(_by_scenario(results).items()):
        for r in group:
            approx = r.approx["max_factor"] if r.approx else None
            fault = (
                f"{r.faults['recoveries']}rec/"
                f"{r.faults['quarantined']}quar"
                if r.faults else None
            )
            rows.append((
                name,
                r.backend,
                "smoke" if r.smoke else "full",
                _fmt(r.update_steps),
                _fmt(r.insertions_applied),
                _fmt(r.deletions_applied),
                _fmt(r.live_reads + r.epoch_blocks),
                _fmt(r.work.get("plds_moves_total")),
                _fmt(r.work.get("plds_rounds_total")),
                r.slo.get("status", "-"),
                _fmt(approx),
                _fmt(fault),
                _fmt(r.ok),
            ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    for name, counters in sorted(divergences.items()):
        lines.append(
            f"!! work-counter divergence in {name}: {', '.join(counters)}"
        )
    return "\n".join(lines)


def load_rows(path: str) -> List[Mapping[str, Any]]:
    """Read a report file back into plain dict rows (for tooling/tests)."""
    out: List[Mapping[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def summary_line(results: Iterable[ScenarioRunResult]) -> str:
    """One-line sweep summary for CLI output and CI logs."""
    rows = list(results)
    failures = [r for r in rows if not r.ok]
    slo_fail = slo_failures(rows)
    diverged = work_divergences(rows)
    return (
        f"scenarios: {len(rows)} runs, "
        f"{len({r.spec.name for r in rows})} scenarios, "
        f"{len({r.backend for r in rows})} backends, "
        f"{len(slo_fail)} SLO failures, "
        f"{len(diverged)} work divergences, "
        f"{len(failures)} hard failures"
    )
