"""Execute a scenario spec end-to-end against any registered backend.

One call — :func:`run_scenario` — takes a validated
:class:`~repro.workloads.scenarios.spec.ScenarioSpec`, renders its step
schedule (:mod:`repro.workloads.scenarios.traffic`), builds the engine
through :mod:`repro.engines` (wrapped in a journaled
:class:`~repro.runtime.supervisor.SupervisedCPLDS` when the spec declares
a fault schedule), drives every step, and scores the run:

* the deterministic **work counters** the CI bench-gate compares
  (:data:`repro.harness.bench_json.WORK_COUNTERS`);
* **staleness accounting and SLO verdicts** from
  :mod:`repro.obs.staleness` (live vs descriptor sandwich reads,
  epoch-pin staleness, the spec's declarative targets);
* **approximation quality** against the exact peeling decomposition
  (:mod:`repro.exact`) when the spec asks for it;
* **fault outcomes** — recoveries, quarantined updates, restarts, final
  health, and an oracle-equivalence verdict in the style of
  :mod:`repro.runtime.chaos`.

The result's :meth:`ScenarioRunResult.as_row` is a plain JSON-ready dict
containing only deterministic quantities — two runs of the same spec,
seed and backend produce byte-identical rows, which is what lets CI diff
reports across backends and across time.  Wall-clock latency percentiles
are opt-in (``timing=True``) and land in a separate ``timing`` section
that deterministic comparisons must exclude.
"""

from __future__ import annotations

import math
import os
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import engines, obs
from repro.obs import staleness as SL
from repro.reads import EpochSnapshotStore
from repro.types import Edge
from repro.workloads.mixes import MixedBatch
from repro.workloads.scenarios.spec import ScenarioSpec
from repro.workloads.scenarios.traffic import (
    ReadBurst,
    Step,
    build_schedule,
    truncate_for_smoke,
)

__all__ = ["ScenarioRunResult", "run_scenario"]


def _round(value: float, digits: int = 9) -> float:
    return round(float(value), digits)


def _finite(value: Optional[float]) -> Optional[float]:
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass
class ScenarioRunResult:
    """Everything one scenario execution produced, scored and JSON-ready."""

    spec: ScenarioSpec
    backend: str
    smoke: bool
    update_steps: int = 0
    insertions_applied: int = 0
    deletions_applied: int = 0
    live_reads: int = 0
    epoch_blocks: int = 0
    vertices_read: int = 0
    pins_force_advanced: int = 0
    epochs_published: int = 0
    work: Dict[str, float] = field(default_factory=dict)
    staleness: Dict[str, Any] = field(default_factory=dict)
    slo: Dict[str, Any] = field(default_factory=dict)
    approx: Optional[Dict[str, Any]] = None
    faults: Optional[Dict[str, Any]] = None
    timing: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True unless the run produced a hard failure.

        SLO FAILs and fault-path divergence (oracle mismatch, FAILED
        health) are hard; WARN/NODATA are not.
        """
        if self.slo.get("status") == "FAIL":
            return False
        if self.faults is not None and not self.faults["oracle_match"]:
            return False
        if self.faults is not None and self.faults["final_health"] == "FAILED":
            return False
        return True

    def as_row(self, *, include_timing: bool = False) -> Dict[str, Any]:
        """The deterministic JSONL report row for this run."""
        row: Dict[str, Any] = {
            "schema": 1,
            "scenario": self.spec.name,
            "backend": self.backend,
            "engine": self.spec.engine,
            "mode": "smoke" if self.smoke else "full",
            "seed": self.spec.seed,
            "graph": {
                "shape": self.spec.graph.shape,
                "num_vertices": self.spec.graph.num_vertices,
            },
            "traffic": {
                "pattern": self.spec.traffic.pattern,
                "update_steps": self.update_steps,
                "insertions_applied": self.insertions_applied,
                "deletions_applied": self.deletions_applied,
            },
            "reads": {
                "live_reads": self.live_reads,
                "epoch_blocks": self.epoch_blocks,
                "vertices_read": self.vertices_read,
                "pins_force_advanced": self.pins_force_advanced,
                "epochs_published": self.epochs_published,
            },
            "work": dict(self.work),
            "staleness": dict(self.staleness),
            "slo": self.slo,
            "approx": self.approx,
            "faults": self.faults,
            "ok": self.ok,
        }
        if include_timing and self.timing is not None:
            row["timing"] = self.timing
        return row


def _apply_update(impl: Any, batch: MixedBatch) -> Tuple[int, int]:
    """Apply one mixed batch through whichever surface the engine has."""
    if hasattr(impl, "apply_batch"):
        result = impl.apply_batch(
            insertions=batch.insertions, deletions=batch.deletions
        )
        if hasattr(result, "applied"):  # a supervisor BatchOutcome
            ins = sum(len(rec.insertions) for rec in result.applied)
            dels = sum(len(rec.deletions) for rec in result.applied)
            return ins, dels
        return int(result[0]), int(result[1])
    ins = impl.insert_batch(batch.insertions) if batch.insertions else 0
    dels = impl.delete_batch(batch.deletions) if batch.deletions else 0
    return ins, dels


def _score_approximation(impl: Any, num_vertices: int) -> Dict[str, Any]:
    """Estimate-vs-exact error statistics on the final graph."""
    from repro.exact import core_decomposition
    from repro.lds.coreness import approximation_factor, lemma_3_2_bounds

    exact = core_decomposition(impl.graph)
    factors: List[float] = []
    within = 0
    scored = 0
    params = impl.params
    for v in range(num_vertices):
        k = int(exact[v])
        if k <= 0:
            continue
        estimate = float(impl.read(v))
        factors.append(approximation_factor(estimate, k))
        lo, hi = lemma_3_2_bounds(params, k)
        scored += 1
        if lo <= estimate <= hi:
            within += 1
    return {
        "vertices_scored": scored,
        "max_factor": _round(max(factors)) if factors else None,
        "mean_factor": _round(statistics.fmean(factors)) if factors else None,
        "within_lemma_bound_fraction": (
            _round(within / scored) if scored else None
        ),
    }


def _staleness_section(observations: Dict[str, float]) -> Dict[str, Any]:
    reg = obs.REGISTRY
    return {
        "reads_live": reg.counter_value("cplds_reads_live_total"),
        "reads_descriptor": reg.counter_value("cplds_reads_descriptor_total"),
        "staleness_epochs_p99": _finite(
            observations.get("staleness_epochs_p99")
        ),
        "staleness_epochs_max": _finite(
            observations.get("staleness_epochs_max")
        ),
        "epoch_read_staleness_max": _finite(
            observations.get("epoch_read_staleness_max")
        ),
    }


def _run_plain(
    spec: ScenarioSpec, backend: str, schedule: List[Step],
    result: ScenarioRunResult, timings: Optional[List[float]],
) -> Any:
    """Drive the schedule against a bare registry-built engine."""
    n = spec.graph.num_vertices
    store: Optional[EpochSnapshotStore] = None
    kwargs: Dict[str, Any] = {}
    if spec.uses_epoch_reads:
        store = EpochSnapshotStore(
            window=spec.reads.epoch_window,
            max_staleness=spec.reads.max_staleness or None,
        )
        kwargs["epoch_store"] = store
    impl = engines.create(spec.engine, n, backend=backend, **kwargs)
    for kind, item in schedule:
        if kind == "update":
            assert isinstance(item, MixedBatch)
            ins, dels = _apply_update(impl, item)
            result.update_steps += 1
            result.insertions_applied += ins
            result.deletions_applied += dels
        else:
            assert isinstance(item, ReadBurst)
            _run_burst(impl, store, item, result, timings)
    if store is not None:
        newest = store.newest()
        result.epochs_published = newest.epoch if newest is not None else 0
    return impl


def _run_burst(
    impl: Any, store: Optional[EpochSnapshotStore], burst: ReadBurst,
    result: ScenarioRunResult, timings: Optional[List[float]],
) -> None:
    """One read burst: pinned bulk blocks, then live sandwich reads."""
    for block in burst.epoch_blocks:
        if store is None:
            continue
        t0 = time.perf_counter() if timings is not None else 0.0
        with store.pin() as pin:
            pin.coreness_many(block)
            result.pins_force_advanced += pin.advanced
        if timings is not None:
            timings.append(time.perf_counter() - t0)
        result.epoch_blocks += 1
        result.vertices_read += len(block)
    for v in burst.live_vertices:
        t0 = time.perf_counter() if timings is not None else 0.0
        impl.read(v)
        if timings is not None:
            timings.append(time.perf_counter() - t0)
        result.live_reads += 1
        result.vertices_read += 1


def _run_supervised(
    spec: ScenarioSpec, backend: str, schedule: List[Step],
    result: ScenarioRunResult, timings: Optional[List[float]],
) -> Any:
    """Drive the schedule under supervision with the declared faults.

    Reuses the chaos harness's fault injector and its oracle discipline:
    every sub-batch the service reports committed is recorded (trimmed to
    the recovered prefix after each simulated restart), and the final
    structure must match a fresh replay of that history exactly.
    """
    from repro.core.cplds import CPLDS
    from repro.runtime.chaos import ChaosHooks
    from repro.runtime.inject import HookChain
    from repro.runtime.supervisor import SupervisedCPLDS

    assert spec.faults is not None
    faults = spec.faults
    n = spec.graph.num_vertices
    by_batch: Dict[int, List[Any]] = {}
    for event in faults.events:
        by_batch.setdefault(event.at_batch, []).append(event)

    hooks = ChaosHooks()

    def attach(impl: CPLDS) -> None:
        impl.plds.hooks = HookChain(impl.plds.hooks, hooks)

    with tempfile.TemporaryDirectory(prefix=f"scenario-{spec.name}-") as tmp:
        journal_dir = os.path.join(tmp, "journal")
        service = SupervisedCPLDS(
            engines.create(spec.engine, n, backend=backend),
            journal_dir=journal_dir,
            checkpoint_every=faults.checkpoint_every,
            keep_checkpoints=2,
            max_retries=faults.max_retries,
            backoff_base=0.0,
            epoch_window=spec.reads.epoch_window,
            epoch_max_staleness=spec.reads.max_staleness or None,
        )
        attach(service.impl)
        service.post_restore = attach

        history: List[Any] = []
        quarantined = 0
        restarts = 0
        batch_index = 0
        for kind, item in schedule:
            if kind == "read":
                assert isinstance(item, ReadBurst)
                _run_burst(
                    service, service.epoch_store, item, result, timings
                )
                continue
            assert isinstance(item, MixedBatch)
            restart_here = False
            for event in by_batch.get(batch_index, ()):
                if event.kind == "crash":
                    hooks.arm_crash(event.after_moves, event.times)
                elif event.kind == "poison" and item.insertions:
                    hooks.poison = {item.insertions[0]}
                elif event.kind == "restart":
                    restart_here = True
            outcome = service.apply_batch(
                insertions=item.insertions, deletions=item.deletions
            )
            hooks.clear()
            result.update_steps += 1
            quarantined += len(outcome.dropped)
            history.extend(outcome.applied)
            for rec in outcome.applied:
                result.insertions_applied += len(rec.insertions)
                result.deletions_applied += len(rec.deletions)
            if restart_here:
                restarts += 1
                service._journal.close()
                service, report = SupervisedCPLDS.open(
                    journal_dir,
                    checkpoint_every=faults.checkpoint_every,
                    keep_checkpoints=2,
                    max_retries=faults.max_retries,
                    backoff_base=0.0,
                    epoch_window=spec.reads.epoch_window,
                    epoch_max_staleness=spec.reads.max_staleness or None,
                )
                attach(service.impl)
                service.post_restore = attach
                history = [
                    r for r in history if r.seq <= report.recovered_through
                ]
                result.insertions_applied = sum(
                    len(r.insertions) for r in history
                )
                result.deletions_applied = sum(
                    len(r.deletions) for r in history
                )
            batch_index += 1

        # Oracle-equivalence verdict (the chaos harness's discipline).
        oracle = engines.create(
            spec.engine, n, params=service.impl.params, backend=backend
        )
        for rec in history:
            oracle.apply_batch(rec.insertions, rec.deletions)
        mismatches = sum(
            1 for v in range(n) if service.read(v) != oracle.read(v)
        )
        live_edges: set[Edge] = set()
        for rec in history:
            live_edges.update(rec.insertions)
            live_edges.difference_update(rec.deletions)
        edges_ok = (
            set(map(tuple, service.impl.graph.edges())) == live_edges
        )
        newest = service.epoch_store.newest()
        result.epochs_published = newest.epoch if newest is not None else 0
        result.faults = {
            "events": len(faults.events),
            "recoveries": service.telemetry.recoveries,
            "quarantined": quarantined,
            "restarts": restarts,
            "final_health": service.health.name,
            "oracle_mismatches": mismatches,
            "edges_match": edges_ok,
            "oracle_match": mismatches == 0 and edges_ok,
        }
        impl = service.impl
        service.close()
    return impl


def run_scenario(
    spec: ScenarioSpec,
    *,
    backend: str = "object",
    smoke: bool = False,
    timing: bool = False,
) -> ScenarioRunResult:
    """Execute ``spec`` on ``backend`` and score the run.

    ``smoke`` truncates the schedule to the spec's ``smoke_batches``
    update steps (the CI fast path); ``timing`` additionally records
    wall-clock read latencies into the (non-deterministic) ``timing``
    section.  Observability is force-enabled for the run's duration with
    a registry reset on both sides, so the scored counters cover exactly
    this run and the process-wide registry is left clean.
    """
    from repro.harness.bench_json import WORK_COUNTERS

    if backend not in engines.backends():
        raise ValueError(
            f"unknown backend {backend!r} "
            f"(available: {', '.join(engines.backends())})"
        )
    schedule = build_schedule(spec)
    if smoke:
        schedule = truncate_for_smoke(schedule, spec.smoke_batches)
    result = ScenarioRunResult(spec=spec, backend=backend, smoke=smoke)
    timings: Optional[List[float]] = [] if timing else None

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        if spec.faults is not None:
            impl = _run_supervised(spec, backend, schedule, result, timings)
        else:
            impl = _run_plain(spec, backend, schedule, result, timings)

        result.work = {
            name: obs.REGISTRY.counter_value(name) for name in WORK_COUNTERS
        }
        observations = SL.observations_from_registry()
        if timings:
            timings.sort()
            p99 = timings[min(len(timings) - 1, int(0.99 * len(timings)))]
            observations["read_latency_p99_s"] = p99
            result.timing = {
                "read_latency_p50_s": timings[len(timings) // 2],
                "read_latency_p99_s": p99,
                "read_latency_max_s": timings[-1],
                "samples": len(timings),
            }
        result.staleness = _staleness_section(observations)
        result.slo = SL.evaluate(spec.score.slos, observations).as_dict()
        if spec.score.approximation:
            result.approx = _score_approximation(
                impl, spec.graph.num_vertices
            )
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()
    return result
