"""``repro.workloads.scenarios`` — the declarative scenario layer.

A scenario spec (JSON or the YAML subset of
:mod:`~repro.workloads.scenarios.yamlish`) composes a graph shape, a
temporal traffic pattern, a read/write mix, and an optional fault
schedule into one reproducible, scored experiment; the runner executes
any spec on any registered engine backend and emits a deterministic
JSONL report row.  The bundled catalog (``catalog/``) covers the paper's
figures plus the robustness scenarios, and CI runs it as the standard
sweep substrate (``scenario-smoke`` per PR, the full catalog nightly).

Quickstart::

    from repro.workloads import scenarios

    spec = scenarios.load_catalog()[0]
    result = scenarios.run_scenario(spec, backend="columnar", smoke=True)
    print(result.slo["status"], result.work)

CLI: ``python -m repro.workloads.scenarios --catalog --backend all``
(see ``docs/scenarios.md``).
"""

from repro.workloads.scenarios.report import (
    render_table,
    report_lines,
    slo_failures,
    work_divergences,
    write_jsonl,
)
from repro.workloads.scenarios.runner import ScenarioRunResult, run_scenario
from repro.workloads.scenarios.spec import (
    FaultEvent,
    FaultSpec,
    GraphSpec,
    ReadMixSpec,
    ScenarioSpec,
    ScoreSpec,
    SpecError,
    TrafficSpec,
    catalog_dir,
    catalog_paths,
    load_catalog,
    load_spec,
    parse_scenario,
)
from repro.workloads.scenarios.traffic import ReadBurst, build_schedule

__all__ = [
    "FaultEvent",
    "FaultSpec",
    "GraphSpec",
    "ReadBurst",
    "ReadMixSpec",
    "ScenarioRunResult",
    "ScenarioSpec",
    "ScoreSpec",
    "SpecError",
    "TrafficSpec",
    "build_schedule",
    "catalog_dir",
    "catalog_paths",
    "load_catalog",
    "load_spec",
    "parse_scenario",
    "render_table",
    "report_lines",
    "run_scenario",
    "slo_failures",
    "work_divergences",
    "write_jsonl",
]
