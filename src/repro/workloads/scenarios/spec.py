"""Declarative scenario specs: schema, validation, and loaders.

A *scenario* composes the repo's workload building blocks into one
reproducible experiment: a **graph shape** (built by
:mod:`repro.graph.generators`), a **temporal traffic pattern** (how update
batches arrive over time, including the adversarial constructions from
:mod:`repro.workloads.adversarial`), a **read/write mix** (live sandwich
reads and epoch-pinned bulk reads through :mod:`repro.reads`), and an
optional **fault schedule** (the :mod:`repro.runtime.chaos` fault kinds at
declared batch indices).  Specs are plain JSON or the YAML subset of
:mod:`repro.workloads.scenarios.yamlish`; every field is validated with a
loud :class:`SpecError` naming the offending path, so a bad spec fails at
load time, never mid-run.

The checked-in catalog lives next to this module (``catalog/``); see
``docs/scenarios.md`` for the full field reference.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence, Tuple

from repro.errors import WorkloadError
from repro.graph import generators
from repro.obs.staleness import DEFAULT_SLOS, SLOTarget
from repro.types import Edge
from repro.workloads.scenarios import yamlish

__all__ = [
    "FAULT_KINDS",
    "GRAPH_SHAPES",
    "TRAFFIC_PATTERNS",
    "FaultEvent",
    "FaultSpec",
    "GraphSpec",
    "ReadMixSpec",
    "ScenarioSpec",
    "ScoreSpec",
    "SpecError",
    "TrafficSpec",
    "catalog_dir",
    "catalog_paths",
    "load_catalog",
    "load_spec",
    "parse_scenario",
]

GRAPH_SHAPES: Tuple[str, ...] = (
    "power-law", "road", "community", "bipartite", "erdos-renyi",
)
TRAFFIC_PATTERNS: Tuple[str, ...] = (
    "sustained", "diurnal", "flash-crowd", "level-thrash", "insert-delete",
)
FAULT_KINDS: Tuple[str, ...] = ("crash", "poison", "restart")

#: Engines whose ``read`` path feeds the staleness accounting and whose
#: ``epoch_store`` seam exists (see :func:`repro.reads.attach_epoch_store`).
_EPOCH_ENGINES: Tuple[str, ...] = ("cplds",)


class SpecError(WorkloadError):
    """A scenario spec failed validation; the message names the path."""


def _err(path: str, message: str) -> SpecError:
    return SpecError(f"{path}: {message}")


def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise _err(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _check_keys(
    data: Mapping[str, Any], path: str, required: Sequence[str],
    optional: Sequence[str] = (),
) -> None:
    unknown = sorted(set(data) - set(required) - set(optional))
    if unknown:
        raise _err(
            path,
            f"unknown keys {unknown} (allowed: "
            f"{sorted([*required, *optional])})",
        )
    missing = sorted(set(required) - set(data))
    if missing:
        raise _err(path, f"missing required keys {missing}")


def _get_int(
    data: Mapping[str, Any], key: str, path: str, *, default: int | None = None,
    minimum: int | None = None,
) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(f"{path}.{key}", f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    return value


def _get_float(
    data: Mapping[str, Any], key: str, path: str, *,
    default: float | None = None, minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(f"{path}.{key}", f"expected a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise _err(f"{path}.{key}", f"must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _err(f"{path}.{key}", f"must be <= {maximum}, got {value}")
    return value


def _get_str(
    data: Mapping[str, Any], key: str, path: str, *,
    default: str | None = None, choices: Sequence[str] | None = None,
) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise _err(f"{path}.{key}", f"expected a string, got {value!r}")
    if choices is not None and value not in choices:
        raise _err(
            f"{path}.{key}", f"must be one of {sorted(choices)}, got {value!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Graph shape
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphSpec:
    """Which synthetic graph the scenario's edge pool is drawn from.

    ``edges`` is the generator's target edge count; shape-specific knobs
    (power-law exponent, road grid dimensions, community layout, bipartite
    split) have validated defaults.  :meth:`build` is a pure function of
    the spec plus the scenario seed.
    """

    shape: str
    num_vertices: int
    edges: int
    exponent: float = 2.5
    rows: int = 0            # road only (0 = derive a near-square grid)
    diagonal_fraction: float = 0.05
    num_communities: int = 4
    community_size: int = 12
    intra_density: float = 0.9
    left_fraction: float = 0.5  # bipartite only

    @classmethod
    def from_dict(cls, data: Any, path: str = "graph") -> "GraphSpec":
        """Validate and build from parsed spec data."""
        mapping = _require_mapping(data, path)
        shape = _get_str(mapping, "shape", path, choices=GRAPH_SHAPES)
        allowed: Tuple[str, ...] = ()
        if shape == "power-law":
            allowed = ("exponent",)
        elif shape == "road":
            allowed = ("rows", "diagonal_fraction")
        elif shape == "community":
            allowed = ("num_communities", "community_size", "intra_density")
        elif shape == "bipartite":
            allowed = ("left_fraction",)
        _check_keys(
            mapping, path, ("shape", "num_vertices", "edges"), allowed
        )
        spec = cls(
            shape=shape,
            num_vertices=_get_int(mapping, "num_vertices", path, minimum=4),
            edges=_get_int(mapping, "edges", path, minimum=1),
            exponent=_get_float(
                mapping, "exponent", path, default=2.5, minimum=2.01
            ),
            rows=_get_int(mapping, "rows", path, default=0, minimum=0),
            diagonal_fraction=_get_float(
                mapping, "diagonal_fraction", path, default=0.05,
                minimum=0.0, maximum=1.0,
            ),
            num_communities=_get_int(
                mapping, "num_communities", path, default=4, minimum=1
            ),
            community_size=_get_int(
                mapping, "community_size", path, default=12, minimum=3
            ),
            intra_density=_get_float(
                mapping, "intra_density", path, default=0.9,
                minimum=0.0, maximum=1.0,
            ),
            left_fraction=_get_float(
                mapping, "left_fraction", path, default=0.5,
                minimum=0.05, maximum=0.95,
            ),
        )
        if shape == "road":
            rows, cols = spec._grid()
            if rows * cols != spec.num_vertices:
                raise _err(
                    path,
                    f"road needs num_vertices == rows*cols; "
                    f"got {spec.num_vertices} != {rows}*{cols}",
                )
        if shape == "community" and spec.community_size > spec.num_vertices:
            raise _err(path, "community_size exceeds num_vertices")
        return spec

    def _grid(self) -> Tuple[int, int]:
        rows = self.rows if self.rows else max(1, int(math.isqrt(self.num_vertices)))
        return rows, max(1, self.num_vertices // rows)

    def build(self, seed: int) -> list[Edge]:
        """Generate the edge pool (deterministic in ``seed``)."""
        n = self.num_vertices
        if self.shape == "power-law":
            return generators.chung_lu(n, self.edges, self.exponent, seed=seed)
        if self.shape == "road":
            rows, cols = self._grid()
            return generators.grid_road(
                rows, cols, self.diagonal_fraction, seed=seed
            )
        if self.shape == "community":
            return generators.community_overlay(
                n, self.num_communities, self.community_size,
                background_edges=self.edges, intra_density=self.intra_density,
                seed=seed,
            )
        if self.shape == "bipartite":
            return generators.bipartite(
                max(1, int(n * self.left_fraction)),
                n - max(1, int(n * self.left_fraction)),
                self.edges, seed=seed,
            )
        return generators.erdos_renyi(n, self.edges, seed=seed)


# ---------------------------------------------------------------------------
# Traffic pattern
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficSpec:
    """How update batches arrive over (batch-) time.

    ``batches`` bounds the number of update steps; ``batch_size`` is the
    base arrival rate, modulated per pattern (diurnal sine wave, flash
    clique slam, level-thrash insert/delete cycles, or the paper's
    standard insert-then-delete split).
    """

    pattern: str
    batches: int
    batch_size: int
    window: int = 4
    amplitude: float = 0.8       # diurnal
    period: int = 8              # diurnal
    clique_size: int = 8         # flash-crowd / level-thrash
    spike_at: int = -1           # flash-crowd (-1 = midpoint)
    delete_fraction: float = 0.5  # insert-delete

    @classmethod
    def from_dict(cls, data: Any, path: str = "traffic") -> "TrafficSpec":
        """Validate and build from parsed spec data."""
        mapping = _require_mapping(data, path)
        pattern = _get_str(mapping, "pattern", path, choices=TRAFFIC_PATTERNS)
        allowed: Tuple[str, ...] = ("window",)
        if pattern == "diurnal":
            allowed += ("amplitude", "period")
        elif pattern == "flash-crowd":
            allowed += ("clique_size", "spike_at")
        elif pattern == "level-thrash":
            allowed += ("clique_size",)
        elif pattern == "insert-delete":
            allowed = ("delete_fraction",)
        _check_keys(
            mapping, path, ("pattern", "batches", "batch_size"), allowed
        )
        spec = cls(
            pattern=pattern,
            batches=_get_int(mapping, "batches", path, minimum=1),
            batch_size=_get_int(mapping, "batch_size", path, minimum=1),
            window=_get_int(mapping, "window", path, default=4, minimum=1),
            amplitude=_get_float(
                mapping, "amplitude", path, default=0.8,
                minimum=0.0, maximum=1.0,
            ),
            period=_get_int(mapping, "period", path, default=8, minimum=2),
            clique_size=_get_int(
                mapping, "clique_size", path, default=8, minimum=3
            ),
            spike_at=_get_int(mapping, "spike_at", path, default=-1, minimum=-1),
            delete_fraction=_get_float(
                mapping, "delete_fraction", path, default=0.5,
                minimum=0.0, maximum=1.0,
            ),
        )
        if pattern == "flash-crowd" and spec.spike_at >= spec.batches:
            raise _err(f"{path}.spike_at", "must fall inside the batch range")
        return spec


# ---------------------------------------------------------------------------
# Read/write mix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReadMixSpec:
    """The read side of the mix: a burst of reads after every update batch.

    ``weights`` splits each burst between **live** sandwich reads
    (``engine.read``, Algorithm 4) and **epoch** bulk reads (pinned
    ``coreness_many`` blocks through :mod:`repro.reads`).  Weights must be
    non-negative and sum to 1.
    """

    reads_per_batch: int = 0
    block: int = 32
    distribution: str = "uniform"
    zipf_s: float = 1.1
    live_weight: float = 1.0
    epoch_weight: float = 0.0
    epoch_window: int = 8
    max_staleness: int = 0  # 0 = no bounded-staleness budget

    @classmethod
    def from_dict(cls, data: Any, path: str = "reads") -> "ReadMixSpec":
        """Validate and build from parsed spec data."""
        if data is None:
            return cls()
        mapping = _require_mapping(data, path)
        _check_keys(
            mapping, path, ("reads_per_batch",),
            ("block", "distribution", "zipf_s", "weights", "epoch_window",
             "max_staleness"),
        )
        weights = _require_mapping(
            mapping.get("weights", {"live": 1.0}), f"{path}.weights"
        )
        _check_keys(weights, f"{path}.weights", (), ("live", "epoch"))
        live = _get_float(
            weights, "live", f"{path}.weights", default=0.0, minimum=0.0
        )
        epoch = _get_float(
            weights, "epoch", f"{path}.weights", default=0.0, minimum=0.0
        )
        if abs(live + epoch - 1.0) > 1e-9:
            raise _err(
                f"{path}.weights",
                f"mix weights must sum to 1.0, got {live + epoch:g}",
            )
        return cls(
            reads_per_batch=_get_int(
                mapping, "reads_per_batch", path, minimum=0
            ),
            block=_get_int(mapping, "block", path, default=32, minimum=1),
            distribution=_get_str(
                mapping, "distribution", path, default="uniform",
                choices=("uniform", "zipf"),
            ),
            zipf_s=_get_float(
                mapping, "zipf_s", path, default=1.1, minimum=0.1
            ),
            live_weight=live,
            epoch_weight=epoch,
            epoch_window=_get_int(
                mapping, "epoch_window", path, default=8, minimum=1
            ),
            max_staleness=_get_int(
                mapping, "max_staleness", path, default=0, minimum=0
            ),
        )


# ---------------------------------------------------------------------------
# Fault schedule
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One declared fault: ``kind`` fired at update batch ``at_batch``.

    ``crash`` arms a mid-batch exception after ``after_moves`` vertex moves
    for ``times`` attempts (the :class:`repro.runtime.chaos.ChaosHooks`
    fault); ``poison`` makes one of the batch's insertions always-failing;
    ``restart`` simulates a process crash + journal re-open after the batch.
    """

    at_batch: int
    kind: str
    after_moves: int = 3
    times: int = 1

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "FaultEvent":
        """Validate and build from parsed spec data."""
        mapping = _require_mapping(data, path)
        kind = _get_str(mapping, "kind", path, choices=FAULT_KINDS)
        allowed: Tuple[str, ...] = ()
        if kind == "crash":
            allowed = ("after_moves", "times")
        _check_keys(mapping, path, ("at_batch", "kind"), allowed)
        return cls(
            at_batch=_get_int(mapping, "at_batch", path, minimum=0),
            kind=kind,
            after_moves=_get_int(
                mapping, "after_moves", path, default=3, minimum=1
            ),
            times=_get_int(mapping, "times", path, default=1, minimum=1),
        )


@dataclass(frozen=True)
class FaultSpec:
    """The scenario's fault schedule plus the supervisor's knobs."""

    events: Tuple[FaultEvent, ...]
    max_retries: int = 2
    checkpoint_every: int = 4

    @classmethod
    def from_dict(cls, data: Any, path: str = "faults") -> "FaultSpec | None":
        """Validate and build from parsed spec data (``None`` stays ``None``)."""
        if data is None:
            return None
        mapping = _require_mapping(data, path)
        _check_keys(
            mapping, path, ("events",), ("max_retries", "checkpoint_every")
        )
        raw_events = mapping["events"]
        if not isinstance(raw_events, Sequence) or isinstance(raw_events, str):
            raise _err(f"{path}.events", "expected a list of fault events")
        events = tuple(
            FaultEvent.from_dict(e, f"{path}.events[{i}]")
            for i, e in enumerate(raw_events)
        )
        return cls(
            events=events,
            max_retries=_get_int(
                mapping, "max_retries", path, default=2, minimum=1
            ),
            checkpoint_every=_get_int(
                mapping, "checkpoint_every", path, default=4, minimum=1
            ),
        )


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScoreSpec:
    """What the runner scores beyond the always-on work counters.

    ``approximation`` compares the final estimates against the exact
    peeling decomposition (:mod:`repro.exact`); ``slos`` overrides the
    default staleness/recovery targets of
    :data:`repro.obs.staleness.DEFAULT_SLOS`.
    """

    approximation: bool = False
    slos: Tuple[SLOTarget, ...] = field(default=DEFAULT_SLOS)

    @classmethod
    def from_dict(cls, data: Any, path: str = "score") -> "ScoreSpec":
        """Validate and build from parsed spec data."""
        if data is None:
            return cls()
        mapping = _require_mapping(data, path)
        _check_keys(mapping, path, (), ("approximation", "slos"))
        approximation = mapping.get("approximation", False)
        if not isinstance(approximation, bool):
            raise _err(
                f"{path}.approximation",
                f"expected a boolean, got {approximation!r}",
            )
        slos: Tuple[SLOTarget, ...] = DEFAULT_SLOS
        if "slos" in mapping:
            raw = mapping["slos"]
            if not isinstance(raw, Sequence) or isinstance(raw, str):
                raise _err(f"{path}.slos", "expected a list of SLO targets")
            rows = []
            for i, entry in enumerate(raw):
                epath = f"{path}.slos[{i}]"
                emap = _require_mapping(entry, epath)
                _check_keys(
                    emap, epath, ("name", "observation", "threshold"),
                    ("warn_fraction",),
                )
                rows.append(SLOTarget(
                    name=_get_str(emap, "name", epath),
                    observation=_get_str(emap, "observation", epath),
                    threshold=_get_float(emap, "threshold", epath),
                    warn_fraction=_get_float(
                        emap, "warn_fraction", epath, default=0.8,
                        minimum=0.0, maximum=1.0,
                    ),
                ))
            slos = tuple(rows)
        return cls(approximation=approximation, slos=slos)


# ---------------------------------------------------------------------------
# The scenario itself
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One fully validated scenario, ready for the runner."""

    name: str
    description: str
    graph: GraphSpec
    traffic: TrafficSpec
    reads: ReadMixSpec = field(default_factory=ReadMixSpec)
    faults: "FaultSpec | None" = None
    score: ScoreSpec = field(default_factory=ScoreSpec)
    engine: str = "cplds"
    seed: int = 0
    smoke_batches: int = 4

    @property
    def uses_epoch_reads(self) -> bool:
        """Whether any burst routes reads through the epoch tier."""
        return self.reads.reads_per_batch > 0 and self.reads.epoch_weight > 0

    @classmethod
    def from_dict(cls, data: Any, path: str = "scenario") -> "ScenarioSpec":
        """Validate an entire parsed spec document."""
        mapping = _require_mapping(data, path)
        _check_keys(
            mapping, path, ("name", "description", "graph", "traffic"),
            ("reads", "faults", "score", "engine", "seed", "smoke_batches"),
        )
        name = _get_str(mapping, "name", path)
        if not name or not all(c.isalnum() or c in "-_" for c in name):
            raise _err(
                f"{path}.name",
                f"must be non-empty [-_ alphanumeric], got {name!r}",
            )
        spec = cls(
            name=name,
            description=_get_str(mapping, "description", path),
            graph=GraphSpec.from_dict(mapping["graph"], f"{path}.graph"),
            traffic=TrafficSpec.from_dict(
                mapping["traffic"], f"{path}.traffic"
            ),
            reads=ReadMixSpec.from_dict(
                mapping.get("reads"), f"{path}.reads"
            ),
            faults=FaultSpec.from_dict(
                mapping.get("faults"), f"{path}.faults"
            ),
            score=ScoreSpec.from_dict(mapping.get("score"), f"{path}.score"),
            engine=_get_str(mapping, "engine", path, default="cplds"),
            seed=_get_int(mapping, "seed", path, default=0, minimum=0),
            smoke_batches=_get_int(
                mapping, "smoke_batches", path, default=4, minimum=1
            ),
        )
        from repro import engines as engine_registry

        if spec.engine not in engine_registry.available():
            raise _err(
                f"{path}.engine",
                f"unknown engine {spec.engine!r} "
                f"(available: {', '.join(engine_registry.available())})",
            )
        if (spec.uses_epoch_reads or spec.faults is not None) and (
            spec.engine not in _EPOCH_ENGINES
        ):
            raise _err(
                f"{path}.engine",
                f"epoch reads and fault schedules require one of "
                f"{_EPOCH_ENGINES}, got {spec.engine!r}",
            )
        if spec.traffic.pattern in ("flash-crowd", "level-thrash") and (
            spec.traffic.clique_size > spec.graph.num_vertices
        ):
            raise _err(
                f"{path}.traffic.clique_size",
                "clique does not fit in graph.num_vertices",
            )
        if spec.faults is not None:
            for i, event in enumerate(spec.faults.events):
                if event.at_batch >= spec.traffic.batches:
                    raise _err(
                        f"{path}.faults.events[{i}].at_batch",
                        f"beyond the last update batch "
                        f"({spec.traffic.batches - 1})",
                    )
        return spec


# ---------------------------------------------------------------------------
# Loaders and the bundled catalog
# ---------------------------------------------------------------------------

def _parse_text(text: str, source: str) -> Any:
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{source}: invalid JSON ({exc})") from None
    try:
        return yamlish.parse(text)
    except yamlish.ParseError as exc:
        raise SpecError(f"{source}: {exc}") from None


def parse_scenario(text: str, *, source: str = "<string>") -> ScenarioSpec:
    """Parse + validate one spec document (JSON or the YAML subset)."""
    return ScenarioSpec.from_dict(_parse_text(text, source), path=source)


def load_spec(path: str | os.PathLike[str]) -> ScenarioSpec:
    """Load and validate one spec file."""
    p = Path(path)
    return parse_scenario(p.read_text(), source=p.name)


def catalog_dir() -> Path:
    """Directory of the bundled scenario catalog."""
    return Path(__file__).resolve().parent / "catalog"


def catalog_paths() -> list[Path]:
    """The bundled spec files, sorted by name."""
    return sorted(
        p for p in catalog_dir().iterdir()
        if p.suffix in (".json", ".yaml", ".yml")
    )


def load_catalog() -> list[ScenarioSpec]:
    """Load every bundled spec; duplicate names are a hard error."""
    specs = [load_spec(p) for p in catalog_paths()]
    names = [s.name for s in specs]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SpecError(f"catalog has duplicate scenario names: {dupes}")
    return specs
