"""A deliberately tiny YAML-subset parser for scenario specs.

Scenario files may be JSON or this YAML subset — enough for readable,
hand-edited specs without taking a dependency the container does not
have.  Supported syntax:

* block mappings (``key: value`` / ``key:`` + indented block);
* block lists (``- item``, ``- key: value`` mapping items);
* scalars: integers, floats, booleans (``true``/``false``), ``null``/``~``,
  single- or double-quoted strings, and bare strings;
* full-line and trailing ``#`` comments (outside quotes);
* indentation in spaces (tabs are rejected loudly).

Everything else — flow syntax (``{}``/``[]``), anchors, multi-line
scalars, multiple documents — raises :class:`ParseError` naming the line,
which is the point: a spec either parses the same way everywhere or it
does not parse at all.
"""

from __future__ import annotations

import json
from typing import Any, List, Tuple

__all__ = ["ParseError", "parse"]


class ParseError(ValueError):
    """A spec file uses syntax outside the supported subset."""

    def __init__(self, message: str, lineno: int) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_Line = Tuple[int, str, int]  # (indent, content, lineno)


def _strip_comment(text: str, lineno: int) -> str:
    """Drop a trailing ``#`` comment, respecting quoted strings."""
    quote: str | None = None
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or text[i - 1] in " \t"):
            return text[:i].rstrip()
    if quote is not None:
        raise ParseError(f"unterminated {quote} quote", lineno)
    return text.rstrip()


def _lines(text: str) -> List[_Line]:
    out: List[_Line] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw:
            raise ParseError("tabs are not allowed; indent with spaces", lineno)
        content = _strip_comment(raw, lineno)
        if not content.strip():
            continue
        indent = len(content) - len(content.lstrip(" "))
        out.append((indent, content.strip(), lineno))
    return out


def _scalar(token: str, lineno: int) -> Any:
    if token in ("null", "~", ""):
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if token and token[0] in "{[":
        raise ParseError("flow syntax ({...}/[...]) is not supported", lineno)
    if token.startswith('"'):
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            raise ParseError(f"bad double-quoted string {token}", lineno) from None
    if token.startswith("'"):
        if len(token) < 2 or not token.endswith("'"):
            raise ParseError(f"bad single-quoted string {token}", lineno)
        return token[1:-1].replace("''", "'")
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_key(content: str, lineno: int) -> Tuple[str, str] | None:
    """Split ``key: value`` / ``key:``; ``None`` when there is no key."""
    quote: str | None = None
    for i, ch in enumerate(content):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == ":" and (i + 1 == len(content) or content[i + 1] == " "):
            key = _scalar(content[:i].strip(), lineno)
            if not isinstance(key, str):
                raise ParseError(f"mapping keys must be strings, got {key!r}", lineno)
            return key, content[i + 1 :].strip()
    return None


def _parse_block(lines: List[_Line], i: int, indent: int) -> Tuple[Any, int]:
    """Parse one block (mapping or list) whose items sit at ``indent``."""
    if lines[i][1].startswith("- ") or lines[i][1] == "-":
        return _parse_list(lines, i, indent)
    return _parse_mapping(lines, i, indent)


def _parse_list(lines: List[_Line], i: int, indent: int) -> Tuple[list, int]:
    items: list = []
    while i < len(lines) and lines[i][0] == indent:
        _, content, lineno = lines[i]
        if not (content.startswith("- ") or content == "-"):
            break
        rest = content[1:].strip()
        if not rest:
            # Item body on the following deeper-indented lines.
            if i + 1 >= len(lines) or lines[i + 1][0] <= indent:
                items.append(None)
                i += 1
                continue
            value, i = _parse_block(lines, i + 1, lines[i + 1][0])
            items.append(value)
            continue
        if _split_key(rest, lineno) is not None:
            # "- key: value" — re-anchor the remainder as a mapping whose
            # first entry sits two columns past the dash; its continuation
            # lines are the deeper-indented block that follows.
            lines[i] = (indent + 2, rest, lineno)
            value, i = _parse_mapping(lines, i, indent + 2)
            items.append(value)
            continue
        items.append(_scalar(rest, lineno))
        i += 1
    return items, i


def _parse_mapping(lines: List[_Line], i: int, indent: int) -> Tuple[dict, int]:
    out: dict = {}
    while i < len(lines) and lines[i][0] == indent:
        _, content, lineno = lines[i]
        if content.startswith("- ") or content == "-":
            break
        pair = _split_key(content, lineno)
        if pair is None:
            raise ParseError(f"expected 'key: value', got {content!r}", lineno)
        key, rest = pair
        if key in out:
            raise ParseError(f"duplicate key {key!r}", lineno)
        if rest:
            out[key] = _scalar(rest, lineno)
            i += 1
            continue
        # Nested block (or an explicitly empty value).
        if i + 1 < len(lines) and lines[i + 1][0] > indent:
            out[key], i = _parse_block(lines, i + 1, lines[i + 1][0])
        else:
            out[key] = None
            i += 1
    return out, i


def parse(text: str) -> Any:
    """Parse ``text`` into plain Python data (dict / list / scalars).

    An empty document parses to ``None``; indentation inconsistencies and
    unsupported syntax raise :class:`ParseError` with the line number.
    """
    lines = _lines(text)
    if not lines:
        return None
    value, i = _parse_block(lines, 0, lines[0][0])
    if i != len(lines):
        raise ParseError(
            f"unexpected content at indent {lines[i][0]} "
            f"(outside the enclosing block)",
            lines[i][2],
        )
    return value
