"""Turn a scenario spec into a deterministic step schedule.

The schedule is the scenario's entire temporal structure rendered down to
a flat list of steps — ``("update", MixedBatch)`` for arrivals/departures
and ``("read", ReadBurst)`` for the post-batch read bursts — so the
runner (and any future replay tooling) can execute it against any engine
without re-deriving the pattern.  Everything is a pure function of the
spec: same spec, same schedule, byte for byte.

Patterns compose the existing workload building blocks:

* ``sustained`` — constant-rate sliding-window churn, the
  :class:`repro.workloads.mixes.MixedStreamGenerator` shape;
* ``diurnal`` — the same churn with the arrival rate modulated by a sine
  wave (day/night traffic);
* ``flash-crowd`` — sustained churn plus a whole clique landing in one
  declared batch (§6.3's unbounded-error scenario, from
  :mod:`repro.workloads.adversarial`);
* ``level-thrash`` — sustained churn overlaid with the
  ``sandwich_adversary`` insert/delete clique cycle that maximises level
  oscillation;
* ``insert-delete`` — the paper's standard evaluation shape: stream the
  edge pool in as insertion batches, then a fraction back out as
  deletions (no churn window).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from repro.types import Edge
from repro.workloads.adversarial import clique_edges
from repro.workloads.batches import BatchStream
from repro.workloads.mixes import MixedBatch
from repro.workloads.reads import UniformReadGenerator, ZipfReadGenerator
from repro.workloads.scenarios.spec import ScenarioSpec

__all__ = ["ReadBurst", "Step", "build_schedule"]


@dataclass(frozen=True)
class ReadBurst:
    """One post-batch read burst: epoch-pinned blocks plus live vertices."""

    #: Contiguous vertex blocks, each bulk-read under one epoch pin.
    epoch_blocks: Tuple[Tuple[int, ...], ...]
    #: Individual vertices read through the live sandwich path.
    live_vertices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.epoch_blocks) + len(self.live_vertices)


Step = Tuple[str, "MixedBatch | ReadBurst"]


def _batch_sizes(spec: ScenarioSpec) -> List[int]:
    """Per-batch arrival sizes for the churn-based patterns."""
    traffic = spec.traffic
    if traffic.pattern == "diurnal":
        return [
            max(1, round(traffic.batch_size * (
                1.0 + traffic.amplitude
                * math.sin(2.0 * math.pi * i / traffic.period)
            )))
            for i in range(traffic.batches)
        ]
    return [traffic.batch_size] * traffic.batches


def _churn_batches(spec: ScenarioSpec, pool: List[Edge]) -> List[MixedBatch]:
    """Sliding-window churn over the edge pool with per-batch sizes.

    Departed edges return to the back of the pool, so long scenarios keep
    churning the same universe instead of draining it — the live graph
    size stays roughly stationary, like the paper's follow/unfollow
    motivation.
    """
    available: Deque[Edge] = deque(pool)
    window: Deque[Tuple[Edge, ...]] = deque()
    out: List[MixedBatch] = []
    for size in _batch_sizes(spec):
        arriving = tuple(
            available.popleft() for _ in range(min(size, len(available)))
        )
        departing: Tuple[Edge, ...] = ()
        window.append(arriving)
        if len(window) > spec.traffic.window:
            departing = window.popleft()
            available.extend(departing)
        out.append(MixedBatch(insertions=arriving, deletions=departing))
    return out


def _overlay_flash_crowd(spec: ScenarioSpec, batches: List[MixedBatch]) -> None:
    """Land a whole clique in the declared spike batch."""
    traffic = spec.traffic
    spike = traffic.spike_at if traffic.spike_at >= 0 else len(batches) // 2
    spike = min(spike, len(batches) - 1)
    crowd = tuple(clique_edges(traffic.clique_size))
    batches[spike] = MixedBatch(
        insertions=batches[spike].insertions + crowd,
        deletions=batches[spike].deletions,
    )


def _overlay_level_thrash(spec: ScenarioSpec, batches: List[MixedBatch]) -> None:
    """Cycle a clique through insert / delete-evens / delete-odds phases.

    The ``sandwich_adversary`` oscillation: clique members repeatedly climb
    and fall across group boundaries, stressing descriptor reuse and the
    read sandwich.
    """
    clique = clique_edges(spec.traffic.clique_size)
    evens = tuple(clique[::2])
    odds = tuple(clique[1::2])
    for i, batch in enumerate(batches):
        phase = i % 3
        if phase == 0:
            batches[i] = MixedBatch(
                insertions=batch.insertions + tuple(clique),
                deletions=batch.deletions,
            )
        elif phase == 1:
            batches[i] = MixedBatch(
                insertions=batch.insertions,
                deletions=batch.deletions + evens,
            )
        else:
            batches[i] = MixedBatch(
                insertions=batch.insertions,
                deletions=batch.deletions + odds,
            )


def _insert_delete_batches(
    spec: ScenarioSpec, pool: List[Edge]
) -> List[MixedBatch]:
    """The paper's standard shape via :class:`BatchStream.insert_then_delete`."""
    stream = BatchStream.insert_then_delete(
        spec.name,
        spec.graph.num_vertices,
        pool,
        spec.traffic.batch_size,
        delete_fraction=spec.traffic.delete_fraction,
        shuffle_seed=spec.seed,
    )
    out: List[MixedBatch] = []
    for batch in stream.batches[: spec.traffic.batches]:
        if batch.kind == "insert":
            out.append(MixedBatch(insertions=batch.edges, deletions=()))
        else:
            out.append(MixedBatch(insertions=(), deletions=batch.edges))
    return out


def _read_burst(spec: ScenarioSpec, gen) -> ReadBurst:
    """One deterministic burst drawn from the shared read generator."""
    reads = spec.reads
    n = spec.graph.num_vertices
    epoch_count = round(reads.epoch_weight * reads.reads_per_batch)
    live_count = reads.reads_per_batch - epoch_count
    block = min(reads.block, n)
    blocks = []
    for _ in range(epoch_count):
        lo = min(gen.next(), n - block)
        blocks.append(tuple(range(lo, lo + block)))
    live = tuple(gen.next() for _ in range(live_count))
    return ReadBurst(epoch_blocks=tuple(blocks), live_vertices=live)


def build_schedule(spec: ScenarioSpec) -> List[Step]:
    """Render ``spec`` into its full update/read step schedule.

    The edge pool comes from ``spec.graph`` and the shuffle/read draws
    from ``spec.seed``; the result is deterministic and engine-agnostic.
    """
    pool = spec.graph.build(spec.seed)
    if spec.traffic.pattern == "insert-delete":
        batches = _insert_delete_batches(spec, pool)
    else:
        batches = _churn_batches(spec, pool)
        if spec.traffic.pattern == "flash-crowd":
            _overlay_flash_crowd(spec, batches)
        elif spec.traffic.pattern == "level-thrash":
            _overlay_level_thrash(spec, batches)

    gen: UniformReadGenerator | ZipfReadGenerator | None = None
    if spec.reads.reads_per_batch > 0:
        n = spec.graph.num_vertices
        if spec.reads.distribution == "zipf":
            gen = ZipfReadGenerator(n, s=spec.reads.zipf_s, seed=spec.seed + 1)
        else:
            gen = UniformReadGenerator(n, seed=spec.seed + 1)

    schedule: List[Step] = []
    for batch in batches:
        schedule.append(("update", batch))
        if gen is not None:
            schedule.append(("read", _read_burst(spec, gen)))
    return schedule


def truncate_for_smoke(schedule: List[Step], smoke_batches: int) -> List[Step]:
    """The schedule prefix covering the first ``smoke_batches`` updates."""
    out: List[Step] = []
    updates = 0
    for kind, item in schedule:
        if kind == "update":
            if updates >= smoke_batches:
                break
            updates += 1
        out.append((kind, item))
    return out
