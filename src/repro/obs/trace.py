"""Span-based phase tracing: nested wall-time scopes with attributes.

A span measures one scope — a batch, a phase, a rebalancing round, a
recovery — with :func:`time.perf_counter` and carries free-form attributes
(moves, marked vertices, DAG counts ...).  Spans nest per thread: opening a
span inside another makes it a child, so one insertion batch traces as::

    cplds.insert_batch  edges=1000 marked=412 dags=17     12.3ms
      plds.insert_phase moves=520 rounds=9                 11.8ms

Finished **root** spans are appended to ``registry.spans`` (a bounded
deque) and every finished span feeds the registry histogram
``span_<name>_seconds``, which is how phase latency distributions end up in
``BENCH_*.json`` without any extra plumbing.

When the registry is disabled, ``registry.span(...)`` hands back the shared
:data:`NULL_SPAN`, whose every method is a no-op — cold call sites can
trace unconditionally and still cost almost nothing when observability is
off.  Hot paths (per-move, per-read) should still branch on
``registry.enabled`` instead of opening spans.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "NullSpan", "NULL_SPAN"]


class Span:
    """One traced scope; use as a context manager."""

    __slots__ = (
        "name", "attrs", "children", "start", "duration", "_registry",
    )

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self._registry = registry

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.perf_counter() - self.start
        registry = self._registry
        stack = registry._span_stack()
        # Tolerate a foreign top-of-stack (mismatched exits) rather than
        # corrupting sibling spans: pop only our own frame.
        if stack and stack[-1] is self:
            stack.pop()
        if not stack:
            registry.spans.append(self)
        registry.observe(f"span_{self.name}_seconds", self.duration)

    # -- reporting --------------------------------------------------------
    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` over this span and its descendants."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def as_dict(self) -> dict:
        """JSON-ready view (used by the JSONL exporter)."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"attrs={self.attrs}, children={len(self.children)})"
        )


class NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    duration = 0.0

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def walk(self, depth: int = 0):
        return iter(())

    def as_dict(self) -> dict:
        return {"name": "", "duration_s": 0.0, "attrs": {}, "children": []}


#: The singleton no-op span.
NULL_SPAN = NullSpan()
