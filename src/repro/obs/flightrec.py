"""Flight recorder: a bounded ring buffer of typed pipeline events.

Where the metrics registry (:mod:`repro.obs.registry`) answers *how much*
(counters, distributions), the flight recorder answers *what happened, in
what order*: it keeps the last N structured events of the batch/read
pipeline — batch begin/end, per-round frontier sizes, DAG merges, sandwich
read retries/successes with the batch numbers they observed, supervisor
health transitions, chaos fault injections — so a crash dump reconstructs
the seconds *before* a failure instead of an aggregate after it.

Design contracts (mirroring the registry's, tested in
``tests/test_flightrec.py``):

* **Disabled means one branch.**  Hot sites guard with
  ``if RECORDER.enabled:``; :meth:`FlightRecorder.record` additionally
  self-guards so an unguarded call on a disabled recorder stores nothing.
  ``benchmarks/bench_obs.py`` pins the guard cost at ≤2x the registry's.
* **Exact under concurrency.**  One lock serialises writes: sequence
  numbers are dense (0, 1, 2, ...), no event is ever lost before being
  overwritten, and the ring always holds exactly the ``capacity`` newest
  events in sequence order.
* **Deterministic dumps.**  The JSONL and binary formats serialise events
  byte-identically given the same event stream (sorted JSON keys, fixed
  struct layout).  Timestamps are wall-clock and therefore vary run to
  run; :func:`reconstruct_batches` and the chaos determinism tests compare
  on :meth:`Event.key`, which excludes them.
* **Zero dependencies, no cycles.**  Pure stdlib; importable from
  anywhere in the tree (this module imports nothing from ``repro``).

Event field semantics (the ``a``/``b``/``c``/``d`` integer payload) are
documented per type in :data:`EVENT_FIELDS` and rendered by
:func:`format_event`; ``python -m repro.obs dump <file>`` pretty-prints a
dump, ``python -m repro.obs summary <file>`` reconstructs the batch
timeline.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import time
from typing import Iterable, List, NamedTuple, Optional, Tuple

__all__ = [
    "EVENT_FIELDS",
    "Event",
    "EventType",
    "FAULT_KINDS",
    "FlightRecorder",
    "RECORDER",
    "format_event",
    "load",
    "reconstruct_batches",
]


class EventType(enum.IntEnum):
    """Typed flight-recorder events (stable wire values)."""

    BATCH_BEGIN = 1
    BATCH_END = 2
    ROUND = 3
    DAG_MERGE = 4
    READ_RETRY = 5
    READ_OK = 6
    HEALTH = 7
    CHAOS_FAULT = 8
    RECOVERY = 9
    CHECKPOINT = 10
    STALE_READ = 11
    NOTE = 12


#: Meaning of the integer payload fields, per event type (for rendering).
EVENT_FIELDS: dict = {
    EventType.BATCH_BEGIN: ("batch", "kind", "edges"),  # kind: 0=insert 1=delete
    EventType.BATCH_END: ("batch", "marked", "dags", "moves"),
    EventType.ROUND: ("frontier", "batch_moves", "batch_rounds"),
    EventType.DAG_MERGE: ("root", "merged"),
    EventType.READ_RETRY: ("vertex", "b1", "b2", "retries"),
    EventType.READ_OK: ("vertex", "batch", "from_descriptor", "retries"),
    EventType.HEALTH: ("from_state", "to_state"),  # HealthState ordinals
    EventType.CHAOS_FAULT: ("fault", "arg1", "arg2"),  # fault: FAULT_KINDS
    EventType.RECOVERY: ("ok", "replayed", "checkpoint_seq"),
    EventType.CHECKPOINT: ("seq",),
    EventType.STALE_READ: ("vertex", "age_epochs", "snapshot_batch"),
    EventType.NOTE: ("a", "b", "c", "d"),
}

#: CHAOS_FAULT ``fault`` payload values (see :mod:`repro.runtime.chaos`).
FAULT_KINDS = {
    1: "crash_armed",
    2: "poison",
    3: "restart",
    4: "truncate_tail",
    5: "corrupt_checkpoint",
}


class Event(NamedTuple):
    """One recorded event.  ``t`` is ``time.perf_counter()`` at record time
    (monotonic within a process; not comparable across processes)."""

    seq: int
    etype: int
    a: int
    b: int
    c: int
    d: int
    t: float

    def key(self) -> Tuple[int, int, int, int, int, int]:
        """The deterministic identity of the event (timestamp excluded)."""
        return (self.seq, self.etype, self.a, self.b, self.c, self.d)

    @property
    def type_name(self) -> str:
        try:
            return EventType(self.etype).name
        except ValueError:
            return f"UNKNOWN({self.etype})"


_MAGIC = b"FLTREC01"
_RECORD = struct.Struct("<QHqqqqd")
_JSONL_HEADER = {"format": "flightrec", "version": 1}


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`Event` records.

    A fixed-capacity preallocated ring; :meth:`record` is one lock
    acquisition plus a tuple store, so it is safe (and cheap) on the
    update thread's per-round path.  Per-read events are only emitted by
    the telemetry-rich read paths (``read_verbose`` / retry branches) —
    see ``docs/observability.md``.
    """

    __slots__ = ("enabled", "capacity", "_buf", "_idx", "_seq", "_lock")

    def __init__(self, capacity: int = 4096, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._buf: List[Optional[Event]] = [None] * capacity
        self._idx = 0
        self._seq = 0
        self._lock = threading.Lock()

    # -- switches --------------------------------------------------------
    def enable(self) -> None:
        """Turn event recording on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn event recording off (one-branch cost remains at call sites)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every event and reset sequence numbers to zero.

        Resetting ``seq`` keeps replays deterministic: two identical runs
        that each start from :meth:`clear` produce identical event keys.
        """
        with self._lock:
            for i in range(self.capacity):
                self._buf[i] = None
            self._idx = 0
            self._seq = 0

    # -- recording -------------------------------------------------------
    def record(self, etype: int, a: int = 0, b: int = 0, c: int = 0, d: int = 0) -> None:
        """Append one event (no-op while disabled)."""
        if not self.enabled:
            return
        t = time.perf_counter()
        with self._lock:
            seq = self._seq
            self._seq = seq + 1
            self._buf[self._idx] = Event(seq, int(etype), a, b, c, d, t)
            self._idx = (self._idx + 1) % self.capacity

    # -- introspection ---------------------------------------------------
    @property
    def total(self) -> int:
        """Events recorded over the recorder's lifetime (cleared by
        :meth:`clear`), including those already overwritten."""
        return self._seq

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    def events(self) -> List[Event]:
        """Snapshot of the retained events, oldest first."""
        with self._lock:
            if self._seq >= self.capacity:
                ring = self._buf[self._idx:] + self._buf[: self._idx]
            else:
                ring = self._buf[: self._idx]
        return [e for e in ring if e is not None]

    # -- dumps -----------------------------------------------------------
    def dumps_jsonl(self) -> str:
        """Serialise the retained events as JSON lines (header line first)."""
        events = self.events()
        header = dict(_JSONL_HEADER)
        header["count"] = len(events)
        lines = [json.dumps(header, sort_keys=True)]
        for e in events:
            lines.append(
                json.dumps(
                    {
                        "seq": e.seq,
                        "type": e.type_name,
                        "a": e.a,
                        "b": e.b,
                        "c": e.c,
                        "d": e.d,
                        "t": e.t,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    def dumps_binary(self) -> bytes:
        """Serialise the retained events in the fixed binary layout
        (magic, ``<Q`` count, then ``<QHqqqqd`` records)."""
        events = self.events()
        parts = [_MAGIC, struct.pack("<Q", len(events))]
        for e in events:
            parts.append(_RECORD.pack(e.seq, e.etype, e.a, e.b, e.c, e.d, e.t))
        return b"".join(parts)

    def dump(self, path: str, fmt: Optional[str] = None) -> str:
        """Write the retained events to ``path``; returns ``path``.

        ``fmt`` is ``"jsonl"`` or ``"binary"``; by default it is inferred
        from the extension (``.bin`` → binary, anything else → JSONL).
        The write is atomic-ish (temp file + rename) so a crash dump never
        leaves a half-written file behind.
        """
        if fmt is None:
            fmt = "binary" if path.endswith(".bin") else "jsonl"
        if fmt not in ("jsonl", "binary"):
            raise ValueError(f"unknown dump format {fmt!r}")
        tmp = f"{path}.tmp{os.getpid()}"
        if fmt == "binary":
            with open(tmp, "wb") as fh:
                fh.write(self.dumps_binary())
        else:
            with open(tmp, "w") as fh:
                fh.write(self.dumps_jsonl())
        os.replace(tmp, path)
        return path


def _load_jsonl(text: str) -> List[Event]:
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty flight-recorder dump")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != "flightrec":
        raise ValueError("not a flight-recorder JSONL dump (bad header)")
    names = {e.name: int(e) for e in EventType}
    out: List[Event] = []
    for ln in lines[1:]:
        rec = json.loads(ln)
        etype = rec["type"]
        out.append(
            Event(
                int(rec["seq"]),
                names.get(etype, int(etype) if str(etype).isdigit() else 0),
                int(rec["a"]),
                int(rec["b"]),
                int(rec["c"]),
                int(rec["d"]),
                float(rec["t"]),
            )
        )
    declared = header.get("count")
    if declared is not None and int(declared) != len(out):
        raise ValueError(
            f"truncated dump: header declares {declared} events, found {len(out)}"
        )
    return out


def _load_binary(blob: bytes) -> List[Event]:
    if blob[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a flight-recorder binary dump (bad magic)")
    (count,) = struct.unpack_from("<Q", blob, len(_MAGIC))
    offset = len(_MAGIC) + 8
    expected = offset + count * _RECORD.size
    if len(blob) < expected:
        raise ValueError(
            f"truncated dump: declares {count} events, file holds "
            f"{(len(blob) - offset) // _RECORD.size}"
        )
    out: List[Event] = []
    for i in range(count):
        seq, etype, a, b, c, d, t = _RECORD.unpack_from(blob, offset + i * _RECORD.size)
        out.append(Event(seq, etype, a, b, c, d, t))
    return out


def load(path: str) -> List[Event]:
    """Load a dump written by :meth:`FlightRecorder.dump` (auto-detects
    the format from the leading bytes).  Raises ``ValueError`` on a file
    that is not a parseable flight-recorder dump."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if blob[: len(_MAGIC)] == _MAGIC:
        return _load_binary(blob)
    return _load_jsonl(blob.decode("utf-8"))


def format_event(e: Event) -> str:
    """One human-readable line per event (used by the CLI and repro-top)."""
    try:
        fields = EVENT_FIELDS[EventType(e.etype)]
    except (ValueError, KeyError):
        fields = EVENT_FIELDS[EventType.NOTE]
    payload = (e.a, e.b, e.c, e.d)
    parts = []
    for name, value in zip(fields, payload):
        if e.etype == EventType.CHAOS_FAULT and name == "fault":
            parts.append(f"fault={FAULT_KINDS.get(value, value)}")
        elif e.etype == EventType.BATCH_BEGIN and name == "kind":
            parts.append(f"kind={'insert' if value == 0 else 'delete'}")
        else:
            parts.append(f"{name}={value}")
    return f"{e.seq:>8}  {e.type_name:<12} {' '.join(parts)}"


def reconstruct_batches(events: Iterable[Event]) -> List[dict]:
    """Rebuild the batch timeline from an event stream.

    Returns one dict per BATCH_BEGIN seen, in order: ``batch`` number,
    ``kind`` (``insert``/``delete``), ``edges``, per-round ``frontiers``
    list, total ``rounds``/``moves``, end-of-batch ``marked``/``dags``,
    and ``complete`` (False for a batch whose BATCH_END never arrived —
    the batch that was in flight when the dump was taken).  Timestamps
    are ignored, so the reconstruction of a deterministic replay is
    itself deterministic.
    """
    timeline: List[dict] = []
    current: Optional[dict] = None
    for e in events:
        if e.etype == EventType.BATCH_BEGIN:
            current = {
                "batch": e.a,
                "kind": "insert" if e.b == 0 else "delete",
                "edges": e.c,
                "frontiers": [],
                "rounds": 0,
                "moves": 0,
                "marked": None,
                "dags": None,
                "complete": False,
            }
            timeline.append(current)
        elif e.etype == EventType.ROUND and current is not None:
            current["frontiers"].append(e.a)
            current["rounds"] = e.c
            current["moves"] = e.b
        elif e.etype == EventType.BATCH_END and current is not None:
            current["marked"] = e.b
            current["dags"] = e.c
            current["moves"] = e.d
            current["complete"] = True
            current = None
    return timeline


#: The process-wide recorder every built-in event site reports to.  Like
#: ``repro.obs.REGISTRY`` it is a singleton mutated in place (never
#: rebound) so hot modules cache the reference at import time; it starts
#: disabled unless ``REPRO_FLIGHTREC=1`` (capacity override:
#: ``REPRO_FLIGHTREC_CAPACITY``).
RECORDER = FlightRecorder(
    capacity=int(os.environ.get("REPRO_FLIGHTREC_CAPACITY") or 4096),
    enabled=os.environ.get("REPRO_FLIGHTREC", "") not in ("", "0", "false", "no"),
)
