"""Unified observability layer: metrics registry, phase tracing, exporters.

This package is the one place the rest of the tree reports operational
numbers to — the quantities the paper's evaluation turns on (rebalancing
rounds, moved vertices, DAG counts, sandwiched-read retries) plus the
service-layer counters (recoveries, queue depth).  See
``docs/observability.md`` for the metric catalog and span hierarchy.

Usage::

    from repro import obs

    obs.enable()                      # hot-path instrumentation on
    ...                               # run batches / reads / services
    print(obs.render())               # human summary
    doc = obs.snapshot()              # JSON-ready dict
    text = obs.to_prometheus()        # scrape endpoint body
    obs.reset()                       # zero everything, keep handles

The process-wide :data:`REGISTRY` starts **disabled** (enable with
:func:`enable` or the ``REPRO_OBS=1`` environment variable); disabled
instrumentation costs a single branch on the hot paths (measured by
``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs import export as _export
from repro.obs.flightrec import RECORDER, Event, EventType, FlightRecorder
from repro.obs.registry import (
    COUNT_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.trace import NULL_SPAN, NullSpan, Span

__all__ = [
    "COUNT_BUCKETS",
    "TIME_BUCKETS",
    "Counter",
    "Event",
    "EventType",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "RECORDER",
    "REGISTRY",
    "Span",
    "staleness",
    "counter",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "inc",
    "log_buckets",
    "observe",
    "render",
    "reset",
    "set_gauge",
    "snapshot",
    "span",
    "to_jsonl",
    "to_prometheus",
]

#: The process-wide registry every built-in instrumentation site reports to.
#: A singleton mutated in place (never rebound), so hot modules may cache
#: the reference at import time.
REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS", "") not in ("", "0", "false", "no")
)


def enable() -> None:
    """Turn on hot-path instrumentation process-wide."""
    REGISTRY.enable()


def disable() -> None:
    """Turn off hot-path instrumentation process-wide."""
    REGISTRY.disable()


def enabled() -> bool:
    """Whether hot-path instrumentation is currently on."""
    return REGISTRY.enabled


def reset() -> None:
    """Zero every metric in the process-wide registry (handles survive)."""
    REGISTRY.reset()


def counter(name: str, labels=None) -> Counter:
    """Get-or-create a counter in the process-wide registry."""
    return REGISTRY.counter(name, labels)


def gauge(name: str, labels=None) -> Gauge:
    """Get-or-create a gauge in the process-wide registry."""
    return REGISTRY.gauge(name, labels)


def histogram(name: str, buckets=TIME_BUCKETS, labels=None) -> Histogram:
    """Get-or-create a histogram in the process-wide registry."""
    return REGISTRY.histogram(name, buckets, labels)


def inc(name: str, delta: int | float = 1, labels=None) -> None:
    """Increment a counter in the process-wide registry."""
    REGISTRY.inc(name, delta, labels)


def set_gauge(name: str, value: int | float, labels=None) -> None:
    """Set a gauge in the process-wide registry."""
    REGISTRY.set_gauge(name, value, labels)


def observe(name: str, value: int | float, buckets=TIME_BUCKETS, labels=None) -> None:
    """Record a histogram observation in the process-wide registry."""
    REGISTRY.observe(name, value, buckets, labels)


def span(name: str, **attrs: Any):
    """Open a trace span on the process-wide registry."""
    return REGISTRY.span(name, **attrs)


def current_span():
    """The innermost live span on this thread (null span when none)."""
    return REGISTRY.current_span()


def snapshot() -> dict:
    """JSON-ready dump of the process-wide registry."""
    return REGISTRY.snapshot()


def to_jsonl(registry: MetricsRegistry | None = None, **kwargs) -> str:
    """JSONL export (defaults to the process-wide registry)."""
    return _export.to_jsonl(registry if registry is not None else REGISTRY, **kwargs)


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus text export (defaults to the process-wide registry)."""
    return _export.to_prometheus(registry if registry is not None else REGISTRY)


def render(registry: MetricsRegistry | None = None, **kwargs) -> str:
    """Human-readable export (defaults to the process-wide registry)."""
    return _export.render(registry if registry is not None else REGISTRY, **kwargs)


# Imported last: repro.obs.staleness reads REGISTRY back from this module
# (its handles live in the process-wide registry), so it must only load
# once the singleton above is bound.
from repro.obs import staleness  # noqa: E402
