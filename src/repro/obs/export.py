"""Exporters for the metrics registry: JSON lines, Prometheus text, human.

Three consumers, three formats:

* :func:`to_jsonl` — one JSON object per line (``{"type": "counter", ...}``)
  for log shippers and the bench harness;
* :func:`to_prometheus` — the Prometheus text exposition format (counters
  get a ``_total``-as-written name, histograms expand to cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``);
* :func:`render` — an aligned text table for terminals and test output.

All three are pure functions of the registry, deterministic given the same
metric state (goldens live in ``tests/golden/``).
"""

from __future__ import annotations

import json
import math
import re
from typing import Iterable, Mapping

from repro.obs.registry import MetricKey, MetricsRegistry

__all__ = ["to_jsonl", "to_prometheus", "render"]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _labels_dict(key: MetricKey) -> dict[str, str]:
    return dict(key[1])


def _fnum(x: int | float) -> str:
    """Deterministic number formatting: ints bare, floats via repr."""
    if isinstance(x, bool):  # pragma: no cover - defensive
        return "1" if x else "0"
    if isinstance(x, int):
        return str(x)
    if math.isinf(x):
        return "+Inf" if x > 0 else "-Inf"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return repr(x)


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def to_jsonl(registry: MetricsRegistry, *, spans: bool = True) -> str:
    """Serialize the registry as JSON lines (sorted, deterministic)."""
    lines: list[str] = []

    def emit(obj: dict) -> None:
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))

    for c in registry.counters():
        emit(
            {
                "type": "counter",
                "name": c.key[0],
                "labels": _labels_dict(c.key),
                "value": c.value,
            }
        )
    for g in registry.gauges():
        emit(
            {
                "type": "gauge",
                "name": g.key[0],
                "labels": _labels_dict(g.key),
                "value": g.value,
            }
        )
    for h in registry.histograms():
        emit(
            {
                "type": "histogram",
                "name": h.key[0],
                "labels": _labels_dict(h.key),
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "sum": h.sum,
                "count": h.count,
            }
        )
    if spans:
        for span in registry.spans:
            emit({"type": "span", **span.as_dict()})
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    name = _PROM_NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize the registry in the Prometheus text format."""
    out: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            out.append(f"# TYPE {name} {kind}")

    for c in registry.counters():
        name = _prom_name(c.key[0])
        header(name, "counter")
        out.append(f"{name}{_prom_labels(_labels_dict(c.key))} {_fnum(c.value)}")
    for g in registry.gauges():
        name = _prom_name(g.key[0])
        header(name, "gauge")
        out.append(f"{name}{_prom_labels(_labels_dict(g.key))} {_fnum(g.value)}")
    for h in registry.histograms():
        name = _prom_name(h.key[0])
        labels = _labels_dict(h.key)
        header(name, "histogram")
        for le, cumulative in h.cumulative():
            le_str = "+Inf" if math.isinf(le) else _fnum(le)
            le_label = 'le="' + le_str + '"'
            out.append(
                f"{name}_bucket{_prom_labels(labels, le_label)} {cumulative}"
            )
        out.append(f"{name}_sum{_prom_labels(labels)} {_fnum(h.sum)}")
        out.append(f"{name}_count{_prom_labels(labels)} {h.count}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------
def _table(headers: list[str], rows: Iterable[tuple]) -> str:
    """Minimal aligned table (kept local: obs must not import the harness)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep, *map(line, str_rows)])


def _key_str(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def render(registry: MetricsRegistry, *, spans: int = 8) -> str:
    """Human-readable dump: counters, gauges, histogram summaries, spans."""
    sections: list[str] = []
    counter_rows = [(_key_str(c.key), _fnum(c.value)) for c in registry.counters()]
    if counter_rows:
        sections.append("counters:\n" + _table(["name", "value"], counter_rows))
    gauge_rows = [(_key_str(g.key), _fnum(g.value)) for g in registry.gauges()]
    if gauge_rows:
        sections.append("gauges:\n" + _table(["name", "value"], gauge_rows))
    hist_rows = []
    for h in registry.histograms():
        mean = h.sum / h.count if h.count else 0.0
        hist_rows.append(
            (_key_str(h.key), h.count, _fnum(round(mean, 9)), _fnum(h.sum))
        )
    if hist_rows:
        sections.append(
            "histograms:\n"
            + _table(["name", "count", "mean", "sum"], hist_rows)
        )
    span_list = list(registry.spans)[-spans:]
    if span_list:
        rows = []
        for root in span_list:
            for depth, sp in root.walk():
                attrs = " ".join(f"{k}={v}" for k, v in sorted(sp.attrs.items()))
                rows.append(
                    ("  " * depth + sp.name, f"{sp.duration * 1e3:.3f}", attrs)
                )
        sections.append("spans:\n" + _table(["span", "ms", "attrs"], rows))
    return "\n\n".join(sections) if sections else "(no metrics recorded)"
