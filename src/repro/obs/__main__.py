"""CLI for flight-recorder dumps: ``python -m repro.obs <cmd> <file>``.

Subcommands:

``dump <file>``
    Pretty-print every event in a dump (binary or JSONL, auto-detected).
``tail <file> [-n N] [--follow]``
    The last N events; ``--follow`` polls the file for appended/rewritten
    content (crash dumps are written atomically, so a follow sees whole
    files).
``summary <file>``
    Reconstruct and print the batch timeline
    (:func:`repro.obs.flightrec.reconstruct_batches`) plus event-type
    counts — the post-mortem entry point of ``docs/robustness.md``.

The live counterpart (registry + SLO + recorder tail in one screen) is
``repro-top`` (:mod:`repro.harness.top`).
"""

from __future__ import annotations

import argparse
import collections
import os
import sys
import time
from typing import List, Sequence

from repro.obs import flightrec


def _cmd_dump(args: argparse.Namespace) -> int:
    events = flightrec.load(args.file)
    for e in events:
        print(flightrec.format_event(e))
    print(f"# {len(events)} events")
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    def show(events: List[flightrec.Event]) -> None:
        for e in events[-args.lines :]:
            print(flightrec.format_event(e))

    show(flightrec.load(args.file))
    if not args.follow:
        return 0
    last_seen = os.stat(args.file).st_mtime_ns
    try:
        while True:
            time.sleep(args.interval)
            try:
                stamp = os.stat(args.file).st_mtime_ns
            except FileNotFoundError:
                continue
            if stamp != last_seen:
                last_seen = stamp
                print("---")
                show(flightrec.load(args.file))
    except KeyboardInterrupt:
        return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    events = flightrec.load(args.file)
    counts = collections.Counter(e.type_name for e in events)
    print(f"{args.file}: {len(events)} events")
    for name, count in sorted(counts.items()):
        print(f"  {name:<12} {count}")
    timeline = flightrec.reconstruct_batches(events)
    if not timeline:
        print("no complete batch window in the retained tail")
        return 0
    print(f"batch timeline ({len(timeline)} batches):")
    for b in timeline:
        frontiers = ",".join(str(f) for f in b["frontiers"]) or "-"
        status = "" if b["complete"] else "  <- IN FLIGHT AT DUMP"
        print(
            f"  batch {b['batch']:>5} {b['kind']:<6} edges={b['edges']:<4} "
            f"rounds={b['rounds']:<3} moves={b['moves']:<5} "
            f"marked={b['marked'] if b['marked'] is not None else '?':<5} "
            f"dags={b['dags'] if b['dags'] is not None else '?':<4} "
            f"frontiers=[{frontiers}]{status}"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect flight-recorder dump files.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_dump = sub.add_parser("dump", help="print every event in a dump")
    p_dump.add_argument("file")
    p_dump.set_defaults(fn=_cmd_dump)

    p_tail = sub.add_parser("tail", help="print the last N events")
    p_tail.add_argument("file")
    p_tail.add_argument("-n", "--lines", type=int, default=20)
    p_tail.add_argument("--follow", action="store_true",
                        help="re-print when the file changes")
    p_tail.add_argument("--interval", type=float, default=0.5,
                        help="poll interval for --follow (seconds)")
    p_tail.set_defaults(fn=_cmd_tail)

    p_sum = sub.add_parser(
        "summary", help="event counts + reconstructed batch timeline"
    )
    p_sum.add_argument("file")
    p_sum.set_defaults(fn=_cmd_summary)

    args = parser.parse_args(argv)
    try:
        return int(args.fn(args))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
