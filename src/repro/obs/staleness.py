"""Per-read staleness accounting and declarative SLO evaluation.

The paper's sandwich protocol (Algorithm 4) means every read falls into
one of two staleness classes: a **live** read (the descriptor check found
no in-flight mark, so the returned level is the current one — 0 epochs
behind) or a **descriptor** read (the vertex was marked by the batch in
flight, so the returned level is the pre-batch ``old_level`` — exactly 1
epoch behind the live structure).  Two more classes come from the service
layer: **epoch** reads served from the multi-version read tier
(:mod:`repro.reads`), whose staleness is the pinned epoch's distance from
the newest published epoch and is bounded by the store's staleness budget;
and **degraded** reads, which the supervisor serves from the newest
retained epoch while recovery is in flight, whose age is bounded only by
the publish cadence.  This module turns those classes into registry
metrics and machine-readable SLO verdicts.

Metrics (all in ``repro.obs.REGISTRY``; see ``docs/observability.md``):

* ``cplds_reads_live_total`` / ``cplds_reads_descriptor_total`` —
  counters tagging every successful ``CPLDS.read`` / ``FrontierCPLDS.read``
  with the epoch window it was sandwiched against.
* ``cplds_read_staleness_epochs`` — histogram of epochs-behind-live
  (0 for live reads, 1 for descriptor reads, the snapshot age for
  degraded reads).  Deterministic on single-threaded replays: the marked
  set is a pure function of the update stream, so all backends report
  identical histograms (``tests/test_staleness.py``).
* ``service_snapshot_age_epochs`` — histogram of degraded-read epoch
  ages (``live batch_number - served epoch``).
* ``service_recovery_seconds`` — histogram of supervisor recovery times.
* ``epoch_reads_total`` / ``epoch_pins_total`` /
  ``epoch_pins_force_advanced_total`` — read-tier traffic counters.
* ``epoch_read_staleness_epochs`` — histogram of epochs-behind-newest for
  every bulk read served through an :class:`repro.reads.EpochPin`.

SLOs are declarative :class:`SLOTarget` rows evaluated against an
observation dict (:func:`observations_from_registry` derives one from the
live registry) into PASS / WARN / FAIL / NODATA verdicts; ``repro-top``
and ``bench_json``/``bench_gate`` consume the resulting
:class:`SLOReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import REGISTRY, TIME_BUCKETS
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "DEFAULT_SLOS",
    "EPOCH_BUCKETS",
    "EPOCH_PINS",
    "EPOCH_PINS_ADVANCED",
    "EPOCH_READS",
    "EPOCH_READ_STALENESS",
    "READS_DESCRIPTOR",
    "READS_LIVE",
    "RECOVERY_SECONDS",
    "SLOReport",
    "SLOTarget",
    "SLOVerdict",
    "SNAPSHOT_AGE",
    "STALENESS_EPOCHS",
    "evaluate",
    "histogram_max_bound",
    "histogram_quantile",
    "observations_from_registry",
]

#: Buckets for epochs-behind-live.  ``log_buckets`` needs a positive start,
#: but staleness 0 (live read) vs 1 (descriptor read) is the distinction
#: the whole module exists to draw — so the 0.0 bucket is explicit.
EPOCH_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

# Import-time cached handles on the process-wide registry (the registry
# zeroes in place, so these survive obs.reset()).
READS_LIVE = REGISTRY.counter("cplds_reads_live_total")
READS_DESCRIPTOR = REGISTRY.counter("cplds_reads_descriptor_total")
STALENESS_EPOCHS = REGISTRY.histogram("cplds_read_staleness_epochs", EPOCH_BUCKETS)
SNAPSHOT_AGE = REGISTRY.histogram("service_snapshot_age_epochs", EPOCH_BUCKETS)
RECOVERY_SECONDS = REGISTRY.histogram("service_recovery_seconds", TIME_BUCKETS)
EPOCH_READS = REGISTRY.counter("epoch_reads_total")
EPOCH_READ_STALENESS = REGISTRY.histogram(
    "epoch_read_staleness_epochs", EPOCH_BUCKETS
)
EPOCH_PINS = REGISTRY.counter("epoch_pins_total")
EPOCH_PINS_ADVANCED = REGISTRY.counter("epoch_pins_force_advanced_total")


# ---------------------------------------------------------------------------
# Histogram readouts
# ---------------------------------------------------------------------------

def histogram_quantile(hist: Histogram, q: float) -> float:
    """Upper-bound estimate of the ``q`` quantile of ``hist``.

    Returns the smallest bucket bound whose cumulative count reaches
    ``q * count`` (Prometheus ``histogram_quantile`` flavour: exact for
    integral observations landing on bounds, an upper bound otherwise).
    Returns ``nan`` for an empty histogram and ``inf`` when the quantile
    falls in the overflow bucket.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = hist.count
    if total == 0:
        return float("nan")
    rank = q * total
    for bound, cum in hist.cumulative():
        if cum >= rank:
            return bound
    return float("inf")


def histogram_max_bound(hist: Histogram) -> float:
    """Upper bound on the largest observation in ``hist``.

    The smallest bucket bound at or above every observation; ``inf`` when
    the overflow bucket is populated, ``nan`` when empty.
    """
    return histogram_quantile(hist, 1.0)


# ---------------------------------------------------------------------------
# Declarative SLOs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SLOTarget:
    """One declarative target: ``observation`` must stay ≤ ``threshold``.

    ``warn_fraction`` sets the WARN band: an observed value above
    ``warn_fraction * threshold`` (but still within the threshold) is a
    WARN — the budget is mostly spent.  A missing observation yields
    NODATA, which counts as passing (nothing ran that could violate it).
    """

    name: str
    observation: str
    threshold: float
    warn_fraction: float = 0.8
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.warn_fraction <= 1.0:
            raise ValueError("warn_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SLOVerdict:
    """The evaluation of one target against one observation."""

    target: SLOTarget
    observed: Optional[float]
    status: str  # "PASS" | "WARN" | "FAIL" | "NODATA"

    @property
    def ok(self) -> bool:
        return self.status != "FAIL"


@dataclass(frozen=True)
class SLOReport:
    """All verdicts of one evaluation pass."""

    verdicts: Tuple[SLOVerdict, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def status(self) -> str:
        statuses = {v.status for v in self.verdicts}
        if "FAIL" in statuses:
            return "FAIL"
        if "WARN" in statuses:
            return "WARN"
        return "PASS"

    def as_dict(self) -> dict:
        """JSON-ready form (``inf`` observations become ``None``)."""
        return {
            "status": self.status,
            "verdicts": [
                {
                    "name": v.target.name,
                    "observation": v.target.observation,
                    "threshold": v.target.threshold,
                    "observed": (
                        v.observed
                        if v.observed is not None and math.isfinite(v.observed)
                        else None
                    ),
                    "status": v.status,
                }
                for v in self.verdicts
            ],
        }

    def render(self) -> str:
        """Human-readable table, one line per target."""
        lines = [f"SLO report: {self.status}"]
        for v in self.verdicts:
            observed = "-" if v.observed is None else f"{v.observed:g}"
            lines.append(
                f"  [{v.status:>6}] {v.target.name:<24} "
                f"observed={observed:<10} threshold={v.target.threshold:g}"
            )
        return "\n".join(lines)


def evaluate(
    targets: Sequence[SLOTarget], observations: Mapping[str, float]
) -> SLOReport:
    """Evaluate every target against the observation dict."""
    verdicts: List[SLOVerdict] = []
    for target in targets:
        observed = observations.get(target.observation)
        if observed is None or (isinstance(observed, float) and math.isnan(observed)):
            verdicts.append(SLOVerdict(target, None, "NODATA"))
            continue
        observed = float(observed)
        if observed > target.threshold:
            status = "FAIL"
        elif observed > target.warn_fraction * target.threshold:
            status = "WARN"
        else:
            status = "PASS"
        verdicts.append(SLOVerdict(target, observed, status))
    return SLOReport(tuple(verdicts))


def observations_from_registry(
    registry: MetricsRegistry | None = None,
) -> Dict[str, float]:
    """Derive the standard observation dict from a registry.

    Only quantities with data are emitted, so untouched metrics evaluate
    to NODATA instead of a spurious PASS/FAIL.
    """
    reg = registry if registry is not None else REGISTRY
    out: Dict[str, float] = {}

    def hist(name: str) -> Optional[Histogram]:
        h = reg._histograms.get((name, ()))
        return h if h is not None and h.count > 0 else None

    h = hist("cplds_read_staleness_epochs")
    if h is not None:
        out["staleness_epochs_p50"] = histogram_quantile(h, 0.5)
        out["staleness_epochs_p99"] = histogram_quantile(h, 0.99)
        out["staleness_epochs_max"] = histogram_max_bound(h)
    h = hist("cplds_read_retries_per_read")
    if h is not None:
        out["read_retries_p99"] = histogram_quantile(h, 0.99)
    h = hist("service_snapshot_age_epochs")
    if h is not None:
        out["snapshot_age_epochs_max"] = histogram_max_bound(h)
    h = hist("epoch_read_staleness_epochs")
    if h is not None:
        out["epoch_read_staleness_p99"] = histogram_quantile(h, 0.99)
        out["epoch_read_staleness_max"] = histogram_max_bound(h)
    h = hist("service_recovery_seconds")
    if h is not None:
        out["recovery_seconds_p99"] = histogram_quantile(h, 0.99)
    live = reg.counter_value("cplds_reads_live_total")
    desc = reg.counter_value("cplds_reads_descriptor_total")
    if live + desc > 0:
        out["descriptor_read_fraction"] = desc / (live + desc)
    return out


#: The repo's default targets, anchored in the paper's guarantees: a
#: sandwiched read is at most one epoch behind live (Theorem 5.2's window),
#: retries are contention-bounded, and the supervisor's recovery budget
#: matches docs/robustness.md.  ``read_latency_p99_s`` must be supplied by
#: the caller (e.g. bench_json from the Fig 3 driver) — the registry does
#: not time individual reads.
DEFAULT_SLOS: Tuple[SLOTarget, ...] = (
    SLOTarget(
        "staleness-p99",
        "staleness_epochs_p99",
        threshold=2.0,
        warn_fraction=0.5,
        description="p99 read staleness ≤ 2 epochs (descriptor reads are 1)",
    ),
    SLOTarget(
        "staleness-max",
        "staleness_epochs_max",
        threshold=8.0,
        description="no read observed more than 8 epochs behind live",
    ),
    SLOTarget(
        "read-retries-p99",
        "read_retries_p99",
        threshold=4.0,
        description="p99 sandwich retries per read ≤ 4",
    ),
    SLOTarget(
        "snapshot-age-max",
        "snapshot_age_epochs_max",
        threshold=16.0,
        description="degraded reads never served from a snapshot >16 epochs old",
    ),
    SLOTarget(
        "epoch-staleness-p99",
        "epoch_read_staleness_p99",
        threshold=4.0,
        warn_fraction=0.5,
        description="p99 bulk epoch-read staleness ≤ 4 epochs behind newest",
    ),
    SLOTarget(
        "epoch-staleness-max",
        "epoch_read_staleness_max",
        threshold=16.0,
        description="no pinned epoch read served >16 epochs behind newest",
    ),
    SLOTarget(
        "recovery-p99",
        "recovery_seconds_p99",
        threshold=2.0,
        description="p99 supervisor recovery ≤ 2 s",
    ),
    SLOTarget(
        "read-latency-p99",
        "read_latency_p99_s",
        threshold=0.05,
        description="p99 read latency ≤ 50 ms (supplied by the bench driver)",
    ),
)
