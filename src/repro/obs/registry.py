"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The registry is the single sink every instrumented layer writes into —
PLDS rebalancing rounds, CPLDS marking and sandwiched-read retries, the
columnar store's vectorised kernels, union-find traffic, the coordinator's
queue, the supervisor's recovery machinery.  Design constraints, in order:

* **Disabled means one branch.**  Hot paths guard every instrumentation
  call with ``if REGISTRY.enabled:`` — a global load, an attribute load and
  a jump.  Nothing else (no allocation, no lock, no dict lookup) happens on
  the disabled path; ``benchmarks/bench_obs.py`` measures exactly this.
* **Thread-safe when enabled.**  Counters/gauges/histograms take a small
  per-metric lock, so concurrent readers and the update thread can both
  report without losing increments (see ``tests/test_obs.py``).
* **Zero dependencies.**  Pure stdlib; importable from anywhere in the
  tree without cycles (the harness, the core structures and the runtime
  all sit *above* this module).
* **Stable handles.**  :meth:`MetricsRegistry.reset` zeroes metrics *in
  place* instead of discarding them, so modules may cache metric handles
  at import time and tests may reset between cases without re-wiring.

Histograms use fixed log-scale buckets (:func:`log_buckets`): bucket ``i``
holds observations ``x`` with ``bounds[i-1] < x <= bounds[i]`` — upper
bounds are inclusive, matching Prometheus ``le`` semantics — plus a final
overflow bucket for ``x > bounds[-1]``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricKey",
    "log_buckets",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
]

#: A metric's identity: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric upper bounds: ``start * factor**i``.

    >>> log_buckets(1.0, 2.0, 4)
    (1.0, 2.0, 4.0, 8.0)
    """
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default duration buckets: 1µs .. ~8.4s, doubling (24 bounds + overflow).
TIME_BUCKETS = log_buckets(1e-6, 2.0, 24)

#: Default magnitude buckets for discrete work (retries, rounds, moves).
COUNT_BUCKETS = log_buckets(1.0, 2.0, 16)


def _key(name: str, labels: Mapping[str, str] | None) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Counter:
    """A monotonically increasing count (float deltas allowed)."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self._value: int | float = 0
        self._lock = threading.Lock()

    def inc(self, delta: int | float = 1) -> None:
        """Add ``delta`` (must be >= 0) to the counter."""
        if delta < 0:
            raise ValueError(f"counter {self.key[0]!r} cannot decrease")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int | float:
        return self._value

    def _zero(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (queue depth, health, capacity)."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self._value: int | float = 0.0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: int | float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int | float:
        return self._value

    def _zero(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with inclusive (``le``) upper bounds.

    ``counts`` has ``len(bounds) + 1`` entries; the last is the overflow
    bucket for observations above every bound.
    """

    __slots__ = ("key", "bounds", "counts", "_sum", "_count", "_lock")

    def __init__(
        self, key: MetricKey, bounds: Sequence[float] = TIME_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.key = key
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, x: int | float) -> None:
        """Record one observation (``x == bound`` lands in that bucket)."""
        idx = bisect_left(self.bounds, x)
        with self._lock:
            self.counts[idx] += 1
            self._sum += x
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def _zero(self) -> None:
        with self._lock:
            for i in range(len(self.counts)):
                self.counts[i] = 0
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    One process-wide instance (``repro.obs.REGISTRY``) backs all built-in
    instrumentation; tests may build private instances.  The ``enabled``
    flag is what hot paths branch on — the registry itself always works
    (cold-path layers like the service telemetry report unconditionally).
    """

    def __init__(self, enabled: bool = False, max_spans: int = 256) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        #: Finished *root* spans, oldest first (bounded; see repro.obs.trace).
        self.spans: deque = deque(maxlen=max_spans)
        self._tls = threading.local()

    # -- switches --------------------------------------------------------
    def enable(self) -> None:
        """Turn hot-path instrumentation on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn hot-path instrumentation off (one-branch cost remains)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric **in place** and drop recorded spans.

        Cached metric handles stay valid — this is what lets hot modules
        look their counters up once at import time.
        """
        with self._lock:
            for c in self._counters.values():
                c._zero()
            for g in self._gauges.values():
                g._zero()
            for h in self._histograms.values():
                h._zero()
            self.spans.clear()

    # -- metric accessors (get-or-create) --------------------------------
    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        key = _key(name, labels)
        try:
            return self._counters[key]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(key, Counter(key))

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        key = _key(name, labels)
        try:
            return self._gauges[key]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(key, Gauge(key))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TIME_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        key = _key(name, labels)
        try:
            return self._histograms[key]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(key, Histogram(key, buckets))

    # -- one-shot conveniences -------------------------------------------
    def inc(
        self,
        name: str,
        delta: int | float = 1,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.counter(name, labels).inc(delta)

    def set_gauge(
        self,
        name: str,
        value: int | float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.gauge(name, labels).set(value)

    def observe(
        self,
        name: str,
        value: int | float,
        buckets: Sequence[float] = TIME_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.histogram(name, buckets, labels).observe(value)

    # -- introspection ----------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(sorted(self._counters.values(), key=lambda m: m.key))

    def gauges(self) -> Iterator[Gauge]:
        return iter(sorted(self._gauges.values(), key=lambda m: m.key))

    def histograms(self) -> Iterator[Histogram]:
        return iter(sorted(self._histograms.values(), key=lambda m: m.key))

    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> int | float:
        """Current value of a counter (0 if it was never touched)."""
        metric = self._counters.get(_key(name, labels))
        return metric.value if metric is not None else 0

    def snapshot(self) -> dict:
        """Plain-data view of every metric (JSON-ready).

        Keys are the metric name, or ``name{k=v,...}`` for labelled
        metrics; histogram entries carry bounds, per-bucket counts, sum
        and count.
        """
        def fmt(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {fmt(c.key): c.value for c in self.counters()},
            "gauges": {fmt(g.key): g.value for g in self.gauges()},
            "histograms": {
                fmt(h.key): {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self.histograms()
            },
        }

    # -- span support (used by repro.obs.trace) ---------------------------
    def _span_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_span(self):
        """The innermost live span on this thread, or the null span."""
        from repro.obs.trace import NULL_SPAN

        stack = self._span_stack()
        return stack[-1] if stack else NULL_SPAN

    def span(self, name: str, **attrs):
        """Open a span (``with registry.span("insert_batch") as sp:``).

        Returns the shared no-op span when the registry is disabled, so
        call sites need no guard of their own on cold paths.
        """
        from repro.obs.trace import NULL_SPAN, Span

        if not self.enabled:
            return NULL_SPAN
        return Span(name, registry=self, attrs=attrs)
