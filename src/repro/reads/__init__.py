"""``repro.reads`` — the multi-version epoch-snapshot read tier.

Engines publish an immutable level snapshot per batch epoch; readers pin
an epoch and run bulk queries against it without touching the write
path.  See :mod:`repro.reads.epoch` for the full concurrency contract
and ``docs/architecture.md`` for the data-flow diagram.

Wiring an engine into the tier::

    from repro import engines
    from repro.reads import EpochSnapshotStore

    store = EpochSnapshotStore(window=8)
    eng = engines.create("cplds", n, backend="columnar", epoch_store=store)
    eng.insert_batch(edges)               # publishes epoch 1
    with store.pin() as pin:              # lease the newest epoch
        top = pin.top_k(10)               # linearizable at that epoch
        cores = pin.coreness_many(range(n))
"""

from __future__ import annotations

from repro.errors import EpochUnavailableError
from repro.reads.epoch import EpochPin, EpochSnapshot, EpochSnapshotStore

__all__ = [
    "EpochPin",
    "EpochSnapshot",
    "EpochSnapshotStore",
    "EpochUnavailableError",
    "attach_epoch_store",
]


def attach_epoch_store(engine, store: EpochSnapshotStore) -> EpochSnapshotStore:
    """Attach ``store`` to ``engine`` so every ``batch_end`` publishes.

    Seeds the store with the engine's current epoch and live levels
    (via :meth:`EpochSnapshotStore.reseed`, so the anchor is retained
    regardless of the publish cadence), then installs the store on the
    engine's ``epoch_store`` seam.  Only the CPLDS family exposes that
    seam; other engines raise ``TypeError``.
    """
    if not hasattr(engine, "epoch_store") or not hasattr(engine, "_publish_epoch"):
        raise TypeError(
            f"engine {type(engine).__name__} does not support epoch snapshots"
        )
    store.reseed(
        int(engine.batch_number),
        engine.plds.state.snapshot_levels(),
        params=engine.params,
    )
    engine.epoch_store = store
    return store
