"""Multi-version epoch-snapshot read tier (the paper's async reads, scaled).

The paper's sandwich protocol (Algorithm 4) guarantees every read is at
most one epoch behind the live structure — but every reader still walks
the *live* arrays, so read fan-out shares cache lines (and, in CPython,
the GIL) with the update path.  This module pushes the asynchronous-reads
contribution to its production conclusion: the engine publishes an
**immutable level snapshot per batch epoch** (a cheap copy of the int64
level array at ``batch_end``), and any number of readers run **bulk**
queries — ``coreness_many``, top-k, level histograms, whole-subgraph
coreness — against a pinned epoch without ever touching the write path.

Three classes:

* :class:`EpochSnapshot` — one frozen ``(epoch, levels, params)`` triple
  with vectorized bulk query methods.  The level array is marked
  read-only; everything derived from it is a pure function, so a snapshot
  can be shared across threads (and cached downstream keyed by its epoch
  number) without synchronization.
* :class:`EpochPin` — a reader's lease on one epoch.  All reads through a
  pin are **linearizable at that epoch**: they reflect exactly the state
  after the pinned batch, for as long as the pin holds.  The store's
  bounded-staleness policy may *force-advance* a pin that falls too far
  behind (or whose epoch was rolled back by recovery); the pin records
  how often that happened in :attr:`EpochPin.advanced`.
* :class:`EpochSnapshotStore` — the bounded multi-version window.  The
  write path calls :meth:`EpochSnapshotStore.publish` once per epoch (and
  :meth:`EpochSnapshotStore.reseed` after a recovery rolled history
  back); readers call :meth:`EpochSnapshotStore.pin`.  Unpinned epochs
  older than the retention window are evicted; pinned epochs survive
  until released unless the staleness budget forces the pin forward.

Concurrency contract: one writer thread publishes; any number of reader
threads pin and read.  The store's internal lock guards only O(window)
bookkeeping — never an O(n) copy (the copy happens on the write path,
outside any reader's critical section) and never a bulk query (those run
on the pinned snapshot without the lock).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import EpochUnavailableError
from repro.lds.params import LDSParams
from repro.obs import REGISTRY as _OBS
from repro.obs.staleness import (
    EPOCH_PINS as _EPOCH_PINS,
    EPOCH_PINS_ADVANCED as _EPOCH_PINS_ADVANCED,
    EPOCH_READS as _EPOCH_READS,
    EPOCH_READ_STALENESS as _EPOCH_READ_STALENESS,
)
from repro.types import Vertex

__all__ = ["EpochPin", "EpochSnapshot", "EpochSnapshotStore"]


class EpochSnapshot:
    """One immutable per-epoch view: the level array frozen at a batch end.

    Takes ownership of ``levels`` (callers pass a private copy, e.g. from
    ``LevelStore.snapshot_levels``); the array is coerced to int64 and
    marked read-only.  All query methods are pure and thread-safe.
    """

    __slots__ = ("epoch", "levels", "params", "_estimates")

    def __init__(
        self, epoch: int, levels, params: LDSParams
    ) -> None:
        arr = np.asarray(levels, dtype=np.int64)
        arr.setflags(write=False)
        self.epoch = int(epoch)
        self.levels = arr
        self.params = params
        # Per-level coreness estimates as an array: bulk reads become one
        # fancy-indexing gather instead of n tuple lookups.
        self._estimates = np.asarray(params.estimate_table, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpochSnapshot(epoch={self.epoch}, n={self.num_vertices})"

    @property
    def num_vertices(self) -> int:
        """Size of the vertex universe this snapshot covers."""
        return int(self.levels.shape[0])

    # -- scalar reads ---------------------------------------------------
    def level(self, v: Vertex) -> int:
        """Level of ``v`` as of this epoch."""
        return int(self.levels[v])

    def estimate(self, v: Vertex) -> float:
        """Coreness estimate of ``v`` as of this epoch."""
        return float(self._estimates[self.levels[v]])

    # -- bulk reads -----------------------------------------------------
    def levels_many(self, vertices: Sequence[Vertex]) -> np.ndarray:
        """Levels of ``vertices`` (int64 array, same order)."""
        idx = np.asarray(vertices, dtype=np.int64)
        return self.levels[idx]

    def coreness_many(
        self, vertices: Optional[Sequence[Vertex]] = None
    ) -> np.ndarray:
        """Coreness estimates of ``vertices`` (default: every vertex)."""
        if vertices is None:
            return self._estimates[self.levels]
        idx = np.asarray(vertices, dtype=np.int64)
        return self._estimates[self.levels[idx]]

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` highest-coreness vertices as ``(vertex, estimate)``.

        Deterministic: descending estimate, ties broken by ascending
        vertex id (stable argsort over the negated estimates).
        """
        if k <= 0:
            return []
        est = self._estimates[self.levels]
        order = np.argsort(-est, kind="stable")[:k]
        return [(int(v), float(est[v])) for v in order]

    def level_histogram(self) -> np.ndarray:
        """Vertex count per level (length ``params.num_levels``, int64)."""
        return np.bincount(
            self.levels, minlength=self.params.num_levels
        ).astype(np.int64)

    def subgraph_coreness(self, vertices: Iterable[Vertex]) -> Dict[int, float]:
        """Coreness estimates of a vertex subset as ``{vertex: estimate}``."""
        idx = np.asarray(list(vertices), dtype=np.int64)
        est = self._estimates[self.levels[idx]] if idx.size else idx
        return {int(v): float(c) for v, c in zip(idx, est)}


class EpochPin:
    """A reader's lease on one epoch: linearizable-at-epoch bulk reads.

    Constructed by :meth:`EpochSnapshotStore.pin`; usable as a context
    manager (releases on exit).  Every read method first lets the store
    apply its bounded-staleness policy (:meth:`EpochSnapshotStore.
    maybe_advance`): a pin within budget keeps returning bit-identical
    results; a pin over budget — or whose epoch was rolled back by
    recovery — is silently advanced to the newest retained epoch, with
    :attr:`advanced` incremented so callers can detect the jump.
    """

    __slots__ = ("_store", "_snap", "advanced", "_released")

    def __init__(self, store: "EpochSnapshotStore", snap: EpochSnapshot) -> None:
        self._store = store
        self._snap = snap
        #: How many times the staleness policy force-advanced this pin.
        self.advanced = 0
        self._released = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else f"epoch={self._snap.epoch}"
        return f"EpochPin({state}, advanced={self.advanced})"

    # -- lease management ----------------------------------------------
    @property
    def epoch(self) -> int:
        """The currently pinned epoch (may grow if force-advanced)."""
        return self._snap.epoch

    @property
    def released(self) -> bool:
        """True once :meth:`release` ran; reads then raise."""
        return self._released

    def release(self) -> None:
        """Give the epoch back to the store (idempotent)."""
        if not self._released:
            self._released = True
            self._store._release(self)

    def __enter__(self) -> "EpochPin":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _read_snap(self) -> EpochSnapshot:
        """The snapshot to serve this read from, with obs accounting."""
        if self._released:
            raise EpochUnavailableError("epoch pin already released")
        self._store.maybe_advance(self)
        snap = self._snap
        if _OBS.enabled:
            _EPOCH_READS.inc()
            latest = self._store.latest_epoch
            if latest is not None:
                _EPOCH_READ_STALENESS.observe(max(0, latest - snap.epoch))
        return snap

    # -- reads (all linearizable at the pinned epoch) -------------------
    @property
    def snapshot(self) -> EpochSnapshot:
        """The pinned snapshot itself (after the staleness policy ran)."""
        return self._read_snap()

    def level(self, v: Vertex) -> int:
        """Level of ``v`` at the pinned epoch."""
        return self._read_snap().level(v)

    def estimate(self, v: Vertex) -> float:
        """Coreness estimate of ``v`` at the pinned epoch."""
        return self._read_snap().estimate(v)

    def levels_many(self, vertices: Sequence[Vertex]) -> np.ndarray:
        """Bulk levels at the pinned epoch."""
        return self._read_snap().levels_many(vertices)

    def coreness_many(
        self, vertices: Optional[Sequence[Vertex]] = None
    ) -> np.ndarray:
        """Bulk coreness estimates at the pinned epoch."""
        return self._read_snap().coreness_many(vertices)

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """Top-k coreness at the pinned epoch."""
        return self._read_snap().top_k(k)

    def level_histogram(self) -> np.ndarray:
        """Level histogram at the pinned epoch."""
        return self._read_snap().level_histogram()

    def subgraph_coreness(self, vertices: Iterable[Vertex]) -> Dict[int, float]:
        """Subgraph coreness at the pinned epoch."""
        return self._read_snap().subgraph_coreness(vertices)


class EpochSnapshotStore:
    """Bounded multi-version window of epoch snapshots with pin/release.

    Parameters
    ----------
    window:
        Retain at most this many snapshots (the newest ones).  Older
        *unpinned* snapshots are evicted on publish; pinned ones survive
        until released.
    max_staleness:
        Bounded-staleness budget in epochs.  A pin whose epoch falls more
        than this many epochs behind the newest published epoch is
        force-advanced to the newest snapshot (on publish, or lazily at
        its next read).  ``None`` disables force-advancing — pins then
        only move when their epoch is rolled back by :meth:`reseed`.
    publish_every:
        Publish cadence: :meth:`accepts` admits only epochs divisible by
        this, so a huge graph can trade read-tier freshness for fewer
        O(n) copies.  :meth:`reseed` ignores the cadence (the recovery
        point must always be retained).
    """

    def __init__(
        self,
        *,
        window: int = 8,
        max_staleness: Optional[int] = None,
        publish_every: int = 1,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        if max_staleness is not None and max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        self.window = window
        self.max_staleness = max_staleness
        self.publish_every = publish_every
        self._lock = threading.Lock()
        self._snaps: Dict[int, EpochSnapshot] = {}
        self._pincount: Dict[int, int] = {}
        self._live: Set[EpochPin] = set()
        self._latest: Optional[int] = None
        #: Lifetime counters (monotonic; cheap introspection for tests).
        self.published_total = 0
        self.evicted_total = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpochSnapshotStore(latest={self._latest}, "
            f"retained={len(self._snaps)}, pins={len(self._live)})"
        )

    # -- write path (single publisher) ----------------------------------
    def accepts(self, epoch: int) -> bool:
        """Whether the publish cadence admits ``epoch``."""
        return epoch % self.publish_every == 0

    def publish(
        self, epoch: int, levels, *, params: LDSParams
    ) -> EpochSnapshot:
        """Publish the level array frozen at the end of ``epoch``.

        Takes ownership of ``levels``.  Evicts unpinned snapshots beyond
        the window and force-advances pins over the staleness budget.
        """
        snap = EpochSnapshot(epoch, levels, params)
        with self._lock:
            self._snaps[snap.epoch] = snap
            if self._latest is None or snap.epoch > self._latest:
                self._latest = snap.epoch
            self.published_total += 1
            self._advance_over_budget_locked()
            self._evict_locked()
        return snap

    def reseed(self, epoch: int, levels, *, params: LDSParams) -> EpochSnapshot:
        """Re-anchor the store at ``epoch`` after a recovery.

        Epochs *newer* than ``epoch`` were rolled back (the crash lost
        them) and are dropped — pins holding them advance at their next
        read.  Epochs at or before ``epoch`` stay retained, so a pinned
        pre-crash epoch keeps serving bit-identical reads across the
        recovery.  Bypasses the publish cadence.
        """
        snap = EpochSnapshot(epoch, levels, params)
        with self._lock:
            for e in [e for e in self._snaps if e > snap.epoch]:
                del self._snaps[e]
                self.evicted_total += 1
            self._snaps[snap.epoch] = snap
            self._latest = snap.epoch
            self.published_total += 1
            self._advance_over_budget_locked()
            self._evict_locked()
        return snap

    # -- read path (any thread) -----------------------------------------
    @property
    def latest_epoch(self) -> Optional[int]:
        """The newest published epoch (None before the first publish)."""
        return self._latest

    def newest(self) -> Optional[EpochSnapshot]:
        """The newest retained snapshot (None before the first publish)."""
        with self._lock:
            if self._latest is None:
                return None
            return self._snaps.get(self._latest)

    def pin(self, epoch: Optional[int] = None) -> EpochPin:
        """Lease ``epoch`` (default: the newest) for reading.

        Raises :class:`~repro.errors.EpochUnavailableError` when the
        epoch was evicted or never published.
        """
        with self._lock:
            if self._latest is None:
                raise EpochUnavailableError("no epoch published yet")
            e = self._latest if epoch is None else int(epoch)
            snap = self._snaps.get(e)
            if snap is None:
                raise EpochUnavailableError(
                    f"epoch {e} is not retained "
                    f"(window: {sorted(self._snaps)})"
                )
            pin = EpochPin(self, snap)
            self._pincount[e] = self._pincount.get(e, 0) + 1
            self._live.add(pin)
        if _OBS.enabled:
            _EPOCH_PINS.inc()
        return pin

    def maybe_advance(self, pin: EpochPin) -> bool:
        """Apply the staleness policy to one pin; True if it moved.

        A pin moves only when its epoch is gone from the store (rolled
        back by :meth:`reseed`) or over the ``max_staleness`` budget.
        Pins of a superseded store (e.g. held across a simulated process
        death) are left untouched: their snapshots stay bit-identical.
        """
        with self._lock:
            if pin._released or pin not in self._live:
                return False
            snap = pin._snap
            gone = snap.epoch not in self._snaps
            over = (
                self.max_staleness is not None
                and self._latest is not None
                and self._latest - snap.epoch > self.max_staleness
            )
            if not (gone or over):
                return False
            if self._latest is None or self._latest not in self._snaps:
                return False  # pragma: no cover - store emptied defensively
            self._advance_pin_locked(pin)
            self._evict_locked()
            return True

    def retained_epochs(self) -> Tuple[int, ...]:
        """The epochs currently retained, oldest first."""
        with self._lock:
            return tuple(sorted(self._snaps))

    @property
    def pins(self) -> int:
        """Number of live (unreleased) pins."""
        return len(self._live)

    # -- internals (lock held) ------------------------------------------
    def _release(self, pin: EpochPin) -> None:
        with self._lock:
            if pin not in self._live:
                return
            self._live.discard(pin)
            e = pin._snap.epoch
            cnt = self._pincount.get(e, 0) - 1
            if cnt > 0:
                self._pincount[e] = cnt
            else:
                self._pincount.pop(e, None)
            self._evict_locked()

    def _evict_locked(self) -> None:
        epochs = sorted(self._snaps)
        keep = set(epochs[-self.window:])
        for e in epochs:
            if e not in keep and self._pincount.get(e, 0) == 0:
                del self._snaps[e]
                self.evicted_total += 1

    def _advance_over_budget_locked(self) -> None:
        if self.max_staleness is None or self._latest is None:
            return
        for pin in list(self._live):
            if self._latest - pin._snap.epoch > self.max_staleness:
                self._advance_pin_locked(pin)

    def _advance_pin_locked(self, pin: EpochPin) -> None:
        assert self._latest is not None
        newest = self._snaps[self._latest]
        old = pin._snap.epoch
        if newest.epoch == old:
            return
        cnt = self._pincount.get(old, 0) - 1
        if cnt > 0:
            self._pincount[old] = cnt
        else:
            self._pincount.pop(old, None)
        pin._snap = newest
        pin.advanced += 1
        self._pincount[newest.epoch] = self._pincount.get(newest.epoch, 0) + 1
        if _OBS.enabled:
            _EPOCH_PINS_ADVANCED.inc()
