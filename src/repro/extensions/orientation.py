"""Low out-degree edge orientation from the level data structure.

A classic corollary of the LDS invariants: orienting every edge from its
lower-level endpoint toward its higher-level endpoint (ties broken by vertex
id) gives every vertex out-degree at most its Invariant-1 threshold, i.e.
``O(α)`` where ``α`` is the graph's arboricity / degeneracy.  This is the
"low out-degree orientation" application the paper's conclusion names — the
whole point is that the orientation is *maintained for free* by the dynamic
structure and can be *read* per-vertex with the same linearizable protocol
as coreness estimates.

Reads here reuse the CPLDS read for the level comparison of each endpoint,
so an orientation query concurrent with a batch is consistent with the same
linearization as coreness reads.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.cplds import CPLDS
from repro.types import Edge, Vertex


class LowOutDegreeOrientation:
    """An O(α)-out-degree orientation view over a CPLDS.

    Examples
    --------
    >>> from repro.core import CPLDS
    >>> cp = CPLDS(4)
    >>> cp.insert_batch([(0, 1), (1, 2), (0, 2)])
    3
    >>> orient = LowOutDegreeOrientation(cp)
    >>> isinstance(orient.out_degree(0), int)
    True
    """

    def __init__(self, cplds: CPLDS) -> None:
        self.cplds = cplds

    def direction(self, u: Vertex, v: Vertex) -> tuple[Vertex, Vertex]:
        """The oriented form of edge ``(u, v)``: ``(tail, head)``.

        Oriented from the lower level toward the higher; equal levels break
        ties toward the larger vertex id, so the orientation is a strict
        total rule and acyclic within each level.
        """
        lu = self.cplds.read_level(u)
        lv = self.cplds.read_level(v)
        if (lu, u) < (lv, v):
            return (u, v)
        return (v, u)

    def out_neighbors(self, v: Vertex) -> list[Vertex]:
        """All heads of edges oriented out of ``v`` (quiescent snapshot)."""
        out = []
        lv = self.cplds.read_level(v)
        for w in self.cplds.graph.neighbors(v):
            lw = self.cplds.read_level(w)
            if (lv, v) < (lw, w):
                out.append(w)
        return out

    def out_degree(self, v: Vertex) -> int:
        """Out-degree of ``v`` under the orientation."""
        return len(self.out_neighbors(v))

    def oriented_edges(self) -> Iterator[Edge]:
        """All edges in oriented ``(tail, head)`` form (quiescent use)."""
        for u, v in self.cplds.graph.edges():
            yield self.direction(u, v)

    def max_out_degree(self) -> int:
        """The largest out-degree — the quantity bounded by O(α)."""
        return max(
            (self.out_degree(v) for v in range(self.cplds.graph.num_vertices)),
            default=0,
        )

    def theoretical_out_degree_bound(self, v: Vertex) -> float:
        """Invariant-1 bound on ``v``'s out-degree at its current level.

        Every out-neighbour of ``v`` is at ``v``'s level or above, so the
        out-degree is at most the Invariant-1 up-degree bound — within a
        constant of ``(1+δ)·α``.
        """
        lvl = self.cplds.read_level(v)
        params = self.cplds.params
        if lvl >= params.max_level:
            lvl = params.max_level - 1 if params.max_level > 0 else 0
        return params.upper_threshold(lvl)

    def check(self) -> None:
        """Assert the orientation is consistent and within its bound.

        Quiescent audit: every edge oriented exactly once, out-degrees within
        the per-vertex Invariant-1 bound (plus one level of slack for
        vertices parked on the top level under shallow configurations).
        """
        n = self.cplds.graph.num_vertices
        out_deg = [0] * n
        seen: set[Edge] = set()
        for tail, head in self.oriented_edges():
            key = (min(tail, head), max(tail, head))
            if key in seen:
                raise AssertionError(f"edge {key} oriented twice")
            seen.add(key)
            out_deg[tail] += 1
        for v in range(n):
            bound = self.theoretical_out_degree_bound(v)
            if out_deg[v] > bound:
                raise AssertionError(
                    f"vertex {v}: out-degree {out_deg[v]} exceeds "
                    f"Invariant-1 bound {bound:.2f}"
                )
