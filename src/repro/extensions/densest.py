"""Approximate densest subgraph from the level data structure.

The densest-subgraph problem (maximise ``|E(S)| / |S|``) is tightly coupled
to k-core decomposition: the maximum density ρ* satisfies
``α/2 <= ρ* <= α`` for degeneracy α, and the classic peeling algorithm gives
a 2-approximation.  The LDS levels encode the same structure dynamically:
the suffix ``Z_ℓ`` (all vertices at level >= ℓ) for the right ℓ is a
O((2+ε))-approximate densest subgraph — this is the "densest subgraph"
application named in the paper's conclusion (§9), and the original LDS line
of work [Bhattacharya et al., STOC 2015] maintains exactly such a suffix.

:func:`densest_subgraph_estimate` scans the group-boundary suffixes of a
CPLDS and returns the densest one; :func:`peeling_densest` is the static
2-approximation used as the audit reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cplds import CPLDS
from repro.exact.peeling import degeneracy_ordering
from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph


@dataclass(frozen=True)
class DensestResult:
    """A vertex subset and its exact density."""

    density: float
    vertices: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.vertices)


def subgraph_density(graph: DynamicGraph, subset: set[int] | frozenset[int]) -> float:
    """Exact density ``|E(S)| / |S|`` of an induced subgraph."""
    if not subset:
        return 0.0
    edges = 0
    for v in subset:
        for w in graph.neighbors_unsafe(v):
            if w > v and w in subset:
                edges += 1
    return edges / len(subset)


def peeling_densest(graph: DynamicGraph | CSRGraph) -> DensestResult:
    """Charikar-style 2-approximate densest subgraph by peeling.

    Scans the suffixes of a smallest-last (degeneracy) ordering and returns
    the densest one; guaranteed within a factor 2 of the optimum density.
    """
    if isinstance(graph, CSRGraph):
        dyn = DynamicGraph(graph.num_vertices)
        for v in range(graph.num_vertices):
            for w in graph.neighbors(v):
                if w > v:
                    dyn.insert_edge(v, int(w))
        graph = dyn
    n = graph.num_vertices
    if n == 0:
        return DensestResult(0.0, frozenset())
    order = degeneracy_ordering(graph)
    # Walk the peeling order, removing vertices and tracking density of the
    # remaining suffix.
    remaining = set(range(n))
    edges = graph.num_edges
    best_density = edges / n if n else 0.0
    best_cut = 0
    for i, v in enumerate(order[:-1]):
        v = int(v)
        edges -= sum(1 for w in graph.neighbors_unsafe(v) if w in remaining)
        remaining.discard(v)
        density = edges / len(remaining)
        if density > best_density:
            best_density = density
            best_cut = i + 1
    best_set = frozenset(int(v) for v in order[best_cut:])
    return DensestResult(best_density, best_set)


def densest_subgraph_estimate(cplds: CPLDS) -> DensestResult:
    """Densest level-suffix of a CPLDS (quiescent snapshot).

    Evaluates the exact density of ``Z_ℓ`` for every populated group
    boundary ℓ (plus the full vertex set) and returns the best.  Because the
    levels encode a (2+ε)-approximate core hierarchy, the best suffix is an
    O((2+ε)(1+δ))-approximate densest subgraph; the test suite checks it
    empirically against :func:`peeling_densest`.
    """
    graph = cplds.graph
    n = graph.num_vertices
    if n == 0:
        return DensestResult(0.0, frozenset())
    levels = np.asarray(cplds.levels())
    height = cplds.params.group_height
    boundaries = sorted(
        {0}
        | {int(l) // height * height for l in np.unique(levels)}
        | {int(l) for l in np.unique(levels)}
    )
    best = DensestResult(0.0, frozenset())
    order = np.argsort(levels, kind="stable")
    # Sweep suffixes from the lowest boundary upward, removing vertices
    # below each boundary incrementally (O(m) total).
    remaining = set(range(n))
    edges = graph.num_edges
    oi = 0
    for b in boundaries:
        while oi < n and levels[order[oi]] < b:
            v = int(order[oi])
            edges -= sum(1 for w in graph.neighbors_unsafe(v) if w in remaining)
            remaining.discard(v)
            oi += 1
        if remaining:
            density = edges / len(remaining)
            if density > best.density:
                best = DensestResult(density, frozenset(remaining))
    return best
