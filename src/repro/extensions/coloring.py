"""Degeneracy-ordering greedy coloring (the vertex-coloring application).

The last §9 application: greedy coloring along a smallest-last (degeneracy)
ordering uses at most ``α + 1`` colors, and the level structure's coreness
estimates provide a dynamic surrogate for that ordering — color vertices in
decreasing level order and every vertex sees at most its Invariant-1-bounded
up-degree of already-colored neighbours, giving an ``O(α)`` color bound from
the (2+ε) structure alone.
"""

from __future__ import annotations

from repro.core.cplds import CPLDS
from repro.exact.peeling import degeneracy_ordering
from repro.graph.dynamic_graph import DynamicGraph
from repro.types import Vertex


def _greedy_color(graph: DynamicGraph, order: list[Vertex]) -> list[int]:
    colors = [-1] * graph.num_vertices
    for v in order:
        used = {colors[w] for w in graph.neighbors_unsafe(v) if colors[w] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def greedy_coloring_exact(graph: DynamicGraph) -> list[int]:
    """Greedy coloring along the exact degeneracy ordering.

    Guarantees at most ``degeneracy + 1`` colors (each vertex, colored in
    reverse peeling order, has at most α already-colored neighbours).
    """
    order = [int(v) for v in degeneracy_ordering(graph)]
    order.reverse()  # color the last-peeled (deep-core) vertices first
    return _greedy_color(graph, order)


def greedy_coloring_lds(cplds: CPLDS) -> list[int]:
    """Greedy coloring along the level ordering of a CPLDS (quiescent).

    Colors vertices from the highest level down; ties broken by vertex id.
    Every vertex's already-colored neighbours are its same-or-higher-level
    neighbours — bounded by Invariant 1 — so the color count is ``O(α)``
    with the structure's (2+3/λ)(1+δ) constant.
    """
    graph = cplds.graph
    levels = cplds.levels()
    order = sorted(range(graph.num_vertices), key=lambda v: (-levels[v], v))
    return _greedy_color(graph, order)


def check_proper_coloring(graph: DynamicGraph, colors: list[int]) -> None:
    """Raise ``AssertionError`` unless ``colors`` is a proper coloring."""
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise AssertionError(
                f"edge ({u}, {v}) is monochromatic (color {colors[u]})"
            )


def num_colors(colors: list[int]) -> int:
    """Number of distinct colors used (0 for an empty graph)."""
    return len(set(colors)) if colors else 0
