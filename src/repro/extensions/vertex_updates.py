"""Batch vertex insertions/deletions on top of edge batches.

The paper focuses on edge updates "for simplicity, but most batch-dynamic
solutions can be modified to support vertex updates as well" (footnote 1).
This module is that modification: the vertex universe stays preallocated
(ids in ``[0, capacity)``), vertices toggle between *active* and *inactive*,
and vertex-level batches are compiled down to the edge batches the CPLDS
already handles — so linearizability of reads carries over unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.cplds import ReadResult
from repro.errors import VertexOutOfRange, WorkloadError
from repro.lds.params import LDSParams
from repro.types import Edge, Vertex


class VertexUpdatableKCore:
    """A CPLDS with vertex-granularity batch updates.

    Parameters
    ----------
    capacity:
        Maximum number of vertex ids, fixed for the structure's lifetime
        (matching the paper's fixed vertex universe).
    params:
        Optional :class:`LDSParams` (sized for ``capacity``).
    backend:
        Level-store backend for the underlying engine (``"object"`` or
        ``"columnar"``).

    Examples
    --------
    >>> ku = VertexUpdatableKCore(10)
    >>> ku.insert_vertices([(0, []), (1, [0]), (2, [0, 1])])
    3
    >>> ku.num_active
    3
    >>> ku.delete_vertices([0])
    2
    >>> ku.is_active(0)
    False
    """

    def __init__(
        self,
        capacity: int,
        params: LDSParams | None = None,
        *,
        backend: str = "object",
    ) -> None:
        from repro import engines

        self.cplds = engines.create(
            "cplds", capacity, params=params, backend=backend
        )
        self.capacity = capacity
        self._active: list[bool] = [False] * capacity

    # ------------------------------------------------------------------
    # Vertex-batch updates
    # ------------------------------------------------------------------
    def insert_vertices(
        self, vertices: Iterable[tuple[Vertex, Sequence[Vertex]]]
    ) -> int:
        """Activate a batch of vertices, each with its incident edges.

        Each entry is ``(v, neighbours)``; every neighbour must be already
        active or appear anywhere in the same batch (the batch activates
        collectively, like the paper's collectively-executed edge batches).
        Returns the number of edges inserted.
        """
        batch = list(vertices)
        activating = []
        edges: list[Edge] = []
        pending_active: set[Vertex] = set()
        for v, _nbrs in batch:
            self._check_vertex(v)
            if self._active[v] or v in pending_active:
                raise WorkloadError(f"vertex {v} is already active")
            pending_active.add(v)
        for v, nbrs in batch:
            for w in nbrs:
                self._check_vertex(w)
                if not (self._active[w] or w in pending_active):
                    raise WorkloadError(
                        f"vertex {v} lists inactive neighbour {w}"
                    )
                edges.append((v, w))
            activating.append(v)
        applied = self.cplds.insert_batch(edges) if edges else 0
        for v in activating:
            self._active[v] = True
        return applied

    def delete_vertices(self, vertices: Iterable[Vertex]) -> int:
        """Deactivate a batch of vertices, removing all incident edges.

        Returns the number of edges removed.
        """
        victims = list(vertices)
        edges: list[Edge] = []
        for v in victims:
            self._check_vertex(v)
            if not self._active[v]:
                raise WorkloadError(f"vertex {v} is not active")
            for w in self.cplds.graph.neighbors(v):
                edges.append((v, w))
        applied = self.cplds.delete_batch(edges) if edges else 0
        for v in victims:
            self._active[v] = False
        return applied

    # ------------------------------------------------------------------
    # Edge updates still available
    # ------------------------------------------------------------------
    def insert_edges(self, edges: Iterable[Edge]) -> int:
        """Edge batch between active vertices."""
        batch = list(edges)
        for u, v in batch:
            if not (self.is_active(u) and self.is_active(v)):
                raise WorkloadError(f"edge ({u}, {v}) touches inactive vertex")
        return self.cplds.insert_batch(batch)

    def delete_edges(self, edges: Iterable[Edge]) -> int:
        return self.cplds.delete_batch(list(edges))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, v: Vertex) -> float:
        """Linearizable coreness estimate; inactive vertices read as 0."""
        if not self._active[v]:
            return 0.0
        return self.cplds.read(v)

    def read_verbose(self, v: Vertex) -> ReadResult:
        return self.cplds.read_verbose(v)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_active(self, v: Vertex) -> bool:
        self._check_vertex(v)
        return self._active[v]

    @property
    def num_active(self) -> int:
        return sum(self._active)

    @property
    def graph(self):
        return self.cplds.graph

    def check_invariants(self) -> None:
        self.cplds.check_invariants()
        for v in range(self.capacity):
            if not self._active[v] and self.cplds.graph.degree(v):
                raise AssertionError(
                    f"inactive vertex {v} still has incident edges"
                )

    def _check_vertex(self, v: Vertex) -> None:
        if not 0 <= v < self.capacity:
            raise VertexOutOfRange(v, self.capacity)
