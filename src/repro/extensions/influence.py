"""Influential-spreader identification from coreness (k-shell method).

The paper's introduction motivates k-core decomposition with, among others,
"identification of influential spreaders in complex networks" [Kitsak et
al., Nature Physics 2010]: a vertex's coreness (k-shell index) predicts its
spreading power better than degree.  This module implements that consumer on
top of the dynamic structure — the application-level payoff of keeping the
decomposition fresh under churn:

* :func:`rank_by_coreness` — vertices ranked by (estimate, degree) with the
  linearizable read path, so rankings can be computed live during batches;
* :func:`top_spreaders` — the top-k slice;
* :func:`ranking_agreement` — precision@k of the approximate ranking
  against the exact one, used by the tests to show the (2+ε) estimates
  preserve the head of the influence ranking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exact import core_decomposition
from repro.types import Vertex


def rank_by_coreness(impl, *, tie_break_degree: bool = True) -> list[Vertex]:
    """All vertices, most influential first.

    Primary key: the coreness estimate (via ``impl.read``); tie-break:
    degree (Kitsak et al. rank within shells by degree), then vertex id for
    determinism.  Works with any implementation exposing ``read`` and
    ``graph`` (CPLDS, baselines, the exact dynamic structure).
    """
    n = impl.graph.num_vertices
    keys = []
    for v in range(n):
        estimate = impl.read(v)
        degree = impl.graph.degree(v) if tie_break_degree else 0
        keys.append((-estimate, -degree, v))
    keys.sort()
    return [v for _, _, v in keys]


def top_spreaders(impl, k: int) -> list[Vertex]:
    """The ``k`` most influential vertices under the k-shell criterion."""
    if k < 0:
        raise ValueError("k must be >= 0")
    return rank_by_coreness(impl)[:k]


def exact_rank(graph, *, tie_break_degree: bool = True) -> list[Vertex]:
    """Ground-truth ranking from the exact decomposition."""
    cores = core_decomposition(graph)
    keys = []
    for v in range(graph.num_vertices):
        degree = graph.degree(v) if tie_break_degree else 0
        keys.append((-int(cores[v]), -degree, v))
    keys.sort()
    return [v for _, _, v in keys]


def ranking_agreement(
    approx_ranking: Sequence[Vertex],
    exact_ranking: Sequence[Vertex],
    k: int,
) -> float:
    """Precision@k: fraction of the exact top-k found in the approximate
    top-k (order-insensitive — shell membership is what matters)."""
    if k <= 0:
        raise ValueError("k must be positive")
    a = set(approx_ranking[:k])
    b = set(exact_ranking[:k])
    return len(a & b) / k


def shell_histogram(impl) -> dict[float, int]:
    """Population of each estimated shell (estimate value -> count)."""
    out: dict[float, int] = {}
    for v in range(impl.graph.num_vertices):
        est = impl.read(v)
        out[est] = out.get(est, 0) + 1
    return out


def spreading_power_proxy(graph, seeds: Sequence[Vertex], hops: int = 2) -> int:
    """A cheap spreading proxy: vertices reachable from ``seeds`` within
    ``hops``.  Used by tests to confirm core-ranked seeds out-spread
    degree-ranked or random seeds on community-structured graphs."""
    frontier = set(seeds)
    reached = set(seeds)
    for _ in range(hops):
        nxt = set()
        for v in frontier:
            for w in graph.neighbors_unsafe(v):
                if w not in reached:
                    nxt.add(w)
        reached |= nxt
        frontier = nxt
        if not frontier:
            break
    return len(reached)
