"""Extensions: the related problems the paper's conclusion points at.

"We are also interested in applying our data structure to other graph
problems closely related to k-core decomposition, such as low out-degree
orientation, ... and densest subgraph." (§9)

The level data structure already encodes the answers to these problems; the
modules here expose them through the same batched-update /
asynchronous-read discipline:

* :mod:`repro.extensions.orientation` — an O(α)-out-degree edge orientation
  read straight off the levels (orient every edge toward the higher level).
* :mod:`repro.extensions.densest` — an O(2+ε)-approximate densest-subgraph
  extraction from the top populated levels, audited against Goldberg-exact
  peeling-based approximation.
* :mod:`repro.extensions.vertex_updates` — batch vertex insertion/deletion
  on top of edge batches (footnote 1 of the paper).
* :mod:`repro.extensions.influence` — influential-spreader (k-shell)
  ranking, the application the paper's introduction leads with.
* :mod:`repro.extensions.triangles` — O(m·α) triangle counting via the
  level-induced orientation (the k-clique-counting direction of §9).
* :mod:`repro.extensions.coloring` — degeneracy-ordering greedy coloring
  with ≤ α+1 colors (exact) and an O(α) level-ordered variant.
"""

from repro.extensions.coloring import greedy_coloring_exact, greedy_coloring_lds
from repro.extensions.influence import (
    rank_by_coreness,
    ranking_agreement,
    top_spreaders,
)
from repro.extensions.orientation import LowOutDegreeOrientation
from repro.extensions.densest import densest_subgraph_estimate, peeling_densest
from repro.extensions.triangles import count_triangles_oriented
from repro.extensions.vertex_updates import VertexUpdatableKCore

__all__ = [
    "LowOutDegreeOrientation",
    "densest_subgraph_estimate",
    "peeling_densest",
    "VertexUpdatableKCore",
    "rank_by_coreness",
    "ranking_agreement",
    "top_spreaders",
    "count_triangles_oriented",
    "greedy_coloring_exact",
    "greedy_coloring_lds",
]
