"""Orientation-based triangle counting (the k-clique-counting application).

The paper's conclusion lists "k-clique counting" among the problems its
structure extends to; the enabling fact is the O(α) out-degree orientation
the levels provide (see :mod:`repro.extensions.orientation`).  Counting
triangles over an oriented graph — for each edge ``u→v``, intersect the two
out-neighbourhoods — runs in ``O(m·α)`` instead of the naive ``O(m^{3/2})``,
which is exactly how the state-of-the-art k-clique counters use low
out-degree orientations.

:func:`count_triangles_oriented` consumes a quiescent CPLDS through its
orientation view; :func:`count_triangles_naive` is the independent audit.
"""

from __future__ import annotations

from repro.core.cplds import CPLDS
from repro.extensions.orientation import LowOutDegreeOrientation
from repro.graph.dynamic_graph import DynamicGraph


def count_triangles_naive(graph: DynamicGraph) -> int:
    """Reference count: sum of per-vertex triangle incidences / 3."""
    total = 0
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors_unsafe(v)
        for w in nbrs:
            if w > v:
                for x in graph.neighbors_unsafe(w):
                    if x > w and x in nbrs:
                        total += 1
    return total


def count_triangles_oriented(cplds: CPLDS) -> int:
    """Triangle count via the level-induced O(α) orientation.

    Every triangle has exactly one vertex from which both its edges point
    outward (the orientation is acyclic), so summing
    ``|out(u) ∩ out(v)|`` over oriented edges ``u→v`` counts each triangle
    once.  Work is ``Σ_e min-side intersection ≤ O(m · α)``.
    """
    orientation = LowOutDegreeOrientation(cplds)
    n = cplds.graph.num_vertices
    out: list[set[int]] = [set() for _ in range(n)]
    for tail, head in orientation.oriented_edges():
        out[tail].add(head)
    total = 0
    for u in range(n):
        for v in out[u]:
            # Triangles u→v, u→x, v→x.
            small, large = (
                (out[u], out[v]) if len(out[u]) <= len(out[v]) else (out[v], out[u])
            )
            total += sum(1 for x in small if x in large)
    return total


def local_triangle_counts(cplds: CPLDS) -> list[int]:
    """Per-vertex triangle incidences (each triangle counted at all three
    corners), via the same oriented enumeration."""
    orientation = LowOutDegreeOrientation(cplds)
    n = cplds.graph.num_vertices
    out: list[set[int]] = [set() for _ in range(n)]
    for tail, head in orientation.oriented_edges():
        out[tail].add(head)
    counts = [0] * n
    for u in range(n):
        for v in out[u]:
            for x in out[u] & out[v]:
                counts[u] += 1
                counts[v] += 1
                counts[x] += 1
    return counts
