"""Shared type aliases and light-weight protocols used across the library.

Centralising these keeps signatures consistent between the graph substrate,
the level data structures, and the harness, and gives downstream users a
single import point for the vocabulary types.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, Tuple, runtime_checkable

#: A vertex identifier: an integer in ``[0, num_vertices)``.
Vertex = int

#: An undirected edge as an (unordered) pair of vertex ids.
Edge = Tuple[Vertex, Vertex]

#: A batch of edges, e.g. an insertion or deletion batch.
EdgeBatch = Sequence[Edge]

#: A level index inside a level data structure.
Level = int


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical ``(min, max)`` representation of an edge.

    The library treats edges as unordered pairs; every structure that stores
    edges keys them by this canonical form.
    """
    return (u, v) if u <= v else (v, u)


def canonicalize_batch(edges: Iterable[Edge]) -> list[Edge]:
    """Canonicalise and de-duplicate a batch while preserving first-seen order.

    Duplicate edges inside a single batch are collapsed: applying the same
    insertion (or deletion) twice within one batch is a no-op in every
    algorithm in this library, mirroring the pre-processing performed by the
    paper's batch-dynamic framework.
    """
    seen: set[Edge] = set()
    out: list[Edge] = []
    for u, v in edges:
        e = canonical_edge(u, v)
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


@runtime_checkable
class CorenessReader(Protocol):
    """Anything that can answer per-vertex coreness-estimate queries.

    Implemented by :class:`repro.core.cplds.CPLDS` and both baselines in
    :mod:`repro.core.baselines`; the harness and the examples program against
    this protocol so implementations are interchangeable.
    """

    def read(self, v: Vertex) -> float:
        """Return the current coreness estimate of ``v``."""
        ...


@runtime_checkable
class BatchUpdatable(Protocol):
    """Anything that accepts batches of edge insertions and deletions."""

    def insert_batch(self, edges: EdgeBatch) -> None: ...

    def delete_batch(self, edges: EdgeBatch) -> None: ...
