"""Graph analysis utilities: components, BFS, induced subgraphs, density.

Generic substrate helpers shared by the extensions, the densest-subgraph
audit, and the examples.  Deliberately dependency-free (plain adjacency
walks) so they work on any :class:`DynamicGraph` state, including mid-churn
snapshots taken with :meth:`DynamicGraph.copy`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.dynamic_graph import DynamicGraph
from repro.types import Vertex


def connected_components(graph: DynamicGraph) -> list[list[Vertex]]:
    """All connected components, each sorted, largest first."""
    n = graph.num_vertices
    seen = [False] * n
    components: list[list[Vertex]] = []
    for s in range(n):
        if seen[s]:
            continue
        comp = []
        dq = deque([s])
        seen[s] = True
        while dq:
            v = dq.popleft()
            comp.append(v)
            for w in graph.neighbors_unsafe(v):
                if not seen[w]:
                    seen[w] = True
                    dq.append(w)
        comp.sort()
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def bfs_distances(graph: DynamicGraph, source: Vertex) -> dict[Vertex, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    dq = deque([source])
    while dq:
        v = dq.popleft()
        for w in graph.neighbors_unsafe(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                dq.append(w)
    return dist


def induced_subgraph(
    graph: DynamicGraph, vertices: Iterable[Vertex]
) -> tuple[DynamicGraph, dict[Vertex, int]]:
    """The induced subgraph on ``vertices`` with compacted ids.

    Returns ``(subgraph, mapping)`` where ``mapping[original] = new_id``.
    """
    members = sorted(set(vertices))
    mapping = {v: i for i, v in enumerate(members)}
    sub = DynamicGraph(len(members))
    for v in members:
        for w in graph.neighbors_unsafe(v):
            if w in mapping and v < w:
                sub.insert_edge(mapping[v], mapping[w])
    return sub, mapping


def average_degree(graph: DynamicGraph) -> float:
    """Mean degree (0.0 for empty vertex sets)."""
    n = graph.num_vertices
    return 2.0 * graph.num_edges / n if n else 0.0


def degree_histogram(graph: DynamicGraph) -> dict[int, int]:
    """``{degree: count}`` over all vertices."""
    out: dict[int, int] = {}
    for v in range(graph.num_vertices):
        d = graph.degree(v)
        out[d] = out.get(d, 0) + 1
    return out


def triangles_at(graph: DynamicGraph, v: Vertex) -> int:
    """Number of triangles through ``v`` (edges among its neighbours)."""
    nbrs = graph.neighbors_unsafe(v)
    count = 0
    for w in nbrs:
        for x in graph.neighbors_unsafe(w):
            if x in nbrs and x > w:
                count += 1
    return count


def clustering_coefficient(graph: DynamicGraph, v: Vertex) -> float:
    """Local clustering coefficient of ``v`` (0.0 when degree < 2)."""
    d = graph.degree(v)
    if d < 2:
        return 0.0
    return 2.0 * triangles_at(graph, v) / (d * (d - 1))
