"""Scaled synthetic stand-ins for the paper's Table 1 datasets.

The paper evaluates on ten graphs from SNAP, the Network Repository and the
DIMACS shortest-paths challenge (Table 1).  None are fetchable offline, so —
per the reproduction contract — each is replaced by a deterministic synthetic
graph that preserves the structural property the original contributes to the
evaluation (degree skew, core depth, road-network flatness), at a scale that
runs on one machine in seconds.

Every stand-in is registered in :data:`DATASETS` with the paper's reported
statistics so the Table 1 bench can print *paper vs. stand-in* side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph import generators as gen
from repro.graph.dynamic_graph import DynamicGraph
from repro.types import Edge


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 1 row: the paper's numbers plus our stand-in recipe."""

    name: str
    #: Vertex / edge counts and largest k reported by the paper (Table 1).
    paper_vertices: int
    paper_edges: int
    paper_max_k: int
    #: What the stand-in is meant to preserve, for the report.
    regime: str
    #: Zero-argument builder returning ``(num_vertices, edges)``.
    builder: Callable[[], tuple[int, list[Edge]]] = field(repr=False)

    def build(self) -> DynamicGraph:
        """Materialise the stand-in as a :class:`DynamicGraph`."""
        n, edges = self.builder()
        return DynamicGraph(n, edges)

    def build_edges(self) -> tuple[int, list[Edge]]:
        """Materialise just ``(num_vertices, edge_list)``."""
        return self.builder()


def _social(n: int, m: int, exponent: float, seed: int) -> Callable[[], tuple[int, list[Edge]]]:
    return lambda: (n, gen.chung_lu(n, m, exponent=exponent, seed=seed))


def _pa(n: int, m_per: int, seed: int) -> Callable[[], tuple[int, list[Edge]]]:
    return lambda: (n, gen.preferential_attachment(n, m_per, seed=seed))


def _road(rows: int, cols: int, seed: int) -> Callable[[], tuple[int, list[Edge]]]:
    return lambda: (rows * cols, gen.grid_road(rows, cols, seed=seed))


def _dense(n: int, ncomm: int, csize: int, bg: int, seed: int) -> Callable[[], tuple[int, list[Edge]]]:
    return lambda: (
        n,
        gen.community_overlay(n, ncomm, csize, bg, intra_density=0.85, seed=seed),
    )


def _rmat(scale: int, m: int, seed: int) -> Callable[[], tuple[int, list[Edge]]]:
    return lambda: (1 << scale, gen.rmat(scale, m, seed=seed))


#: Registry of all ten Table 1 stand-ins, keyed by the paper's short name.
DATASETS: dict[str, DatasetSpec] = {
    "dblp": DatasetSpec(
        name="dblp",
        paper_vertices=317_080,
        paper_edges=1_049_866,
        paper_max_k=113,
        regime="co-authorship: power-law with moderate max core",
        builder=_social(3_000, 10_000, 2.3, seed=11),
    ),
    "brain": DatasetSpec(
        name="brain",
        paper_vertices=784_262,
        paper_edges=267_844_669,
        paper_max_k=1200,
        regime="very dense neuro graph: deep cores",
        builder=_dense(2_000, 6, 60, 4_000, seed=13),
    ),
    "wiki": DatasetSpec(
        name="wiki",
        paper_vertices=1_094_018,
        paper_edges=2_787_967,
        paper_max_k=124,
        regime="communication graph: strong skew, sparse tail",
        builder=_social(4_000, 12_000, 2.1, seed=17),
    ),
    "yt": DatasetSpec(
        name="yt",
        paper_vertices=1_138_499,
        paper_edges=2_990_443,
        paper_max_k=51,
        regime="social graph: skewed, shallow max core",
        builder=_social(4_000, 11_000, 2.6, seed=19),
    ),
    "so": DatasetSpec(
        name="so",
        paper_vertices=2_584_164,
        paper_edges=28_183_518,
        paper_max_k=198,
        regime="Q&A interaction graph: denser power-law",
        builder=_pa(3_000, 8, seed=23),
    ),
    "lj": DatasetSpec(
        name="lj",
        paper_vertices=4_846_609,
        paper_edges=42_851_237,
        paper_max_k=372,
        regime="large social graph: deep cores",
        builder=_dense(4_000, 4, 40, 16_000, seed=29),
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_vertices=3_072_441,
        paper_edges=117_185_083,
        paper_max_k=253,
        regime="dense social graph",
        builder=_dense(3_000, 5, 34, 20_000, seed=31),
    ),
    "ctr": DatasetSpec(
        name="ctr",
        paper_vertices=14_081_816,
        paper_edges=16_933_413,
        paper_max_k=3,
        regime="road network: near-planar, max core 3",
        builder=_road(60, 60, seed=37),
    ),
    "usa": DatasetSpec(
        name="usa",
        paper_vertices=23_947_347,
        paper_edges=28_854_312,
        paper_max_k=3,
        regime="road network: near-planar, max core 3",
        builder=_road(80, 80, seed=41),
    ),
    "twitter": DatasetSpec(
        name="twitter",
        paper_vertices=41_652_230,
        paper_edges=1_202_513_046,
        paper_max_k=2488,
        regime="extreme skew (RMAT) with deep cores",
        builder=_rmat(12, 40_000, seed=43),
    ),
}


def load(name: str) -> DynamicGraph:
    """Build the stand-in graph registered under ``name``.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.build()


def names() -> list[str]:
    """All registered dataset names, in Table 1 order."""
    return list(DATASETS)
