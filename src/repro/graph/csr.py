"""Static CSR (compressed sparse row) snapshot of an undirected graph.

The exact k-core peeling algorithm (:mod:`repro.exact.peeling`) and the
frontier level store's neighbour gathers are the hot numeric kernels in this
library that benefit from contiguous arrays, so following the HPC guidance we
freeze the mutable :class:`DynamicGraph` into a numpy CSR structure before
running them.  The snapshot is immutable by convention: its arrays are
created fresh and never mutated afterwards.

:func:`csr_view` is the cached entry point: it keys the snapshot on the
graph's edge-set version, so repeated callers between mutations (every
``core_decomposition`` / ``degeneracy`` / ``k_core_subgraph`` call in an
analysis session, say) share one set of arrays instead of re-freezing the
graph each time.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import VertexOutOfRange
from repro.graph.dynamic_graph import DynamicGraph
from repro.types import Edge, Vertex


class CSRGraph:
    """Immutable CSR adjacency: ``offsets`` (n+1 int64) and ``targets`` (2m int64).

    The neighbours of ``v`` are ``targets[offsets[v]:offsets[v+1]]``, sorted
    ascending for reproducibility and cache-friendly scans.
    """

    __slots__ = ("offsets", "targets", "_n", "_m")

    def __init__(self, offsets: np.ndarray, targets: np.ndarray) -> None:
        self.offsets = offsets
        self.targets = targets
        self._n = len(offsets) - 1
        self._m = len(targets) // 2

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dynamic(cls, g: DynamicGraph) -> "CSRGraph":
        """Snapshot a :class:`DynamicGraph` (single-threaded; call quiescent)."""
        n = g.num_vertices
        degrees = np.fromiter(
            (g.degree(v) for v in range(n)), dtype=np.int64, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        targets = np.empty(int(offsets[-1]), dtype=np.int64)
        for v in range(n):
            nbrs = sorted(g.neighbors_unsafe(v))
            targets[offsets[v] : offsets[v + 1]] = nbrs
        return cls(offsets, targets)

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Edge]) -> "CSRGraph":
        """Build directly from an edge list (duplicates collapsed)."""
        g = DynamicGraph(num_vertices, edges)
        return cls.from_dynamic(g)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    def degree(self, v: Vertex) -> int:
        self._check_vertex(v)
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """All vertex degrees as an int64 array (a fresh copy)."""
        return np.diff(self.offsets)

    def neighbors(self, v: Vertex) -> np.ndarray:
        """Neighbour slice of ``v`` (a *view*; do not mutate)."""
        self._check_vertex(v)
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def _check_vertex(self, v: Vertex) -> None:
        if not 0 <= v < self._n:
            raise VertexOutOfRange(v, self._n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self._n}, m={self._m})"


def csr_view(g: DynamicGraph) -> CSRGraph:
    """A CSR snapshot of ``g``, cached on the graph's edge-set version.

    The first call after any mutation freezes the graph (O(n + m)); every
    further call before the next mutation returns the exact same
    :class:`CSRGraph` object (and therefore the same arrays).  The dirty
    check is one integer comparison, so callers can use this unconditionally
    wherever they previously called :meth:`CSRGraph.from_dynamic`.
    """
    cached = g._csr_cache
    version = g._version
    if cached is not None and cached[0] == version:
        return cached[1]  # type: ignore[return-value]
    csr = CSRGraph.from_dynamic(g)
    g._csr_cache = (version, csr)
    return csr
