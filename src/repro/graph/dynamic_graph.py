"""Mutable undirected graph with batch edge updates.

This is the substrate the level data structures are maintained against.  It
plays the role of GBBS's dynamic graph representation in the paper's C++
implementation: adjacency is stored per vertex, batches of insertions or
deletions are applied collectively, and duplicate/conflicting updates inside a
batch are filtered exactly as the paper's pre-processing step prescribes
("batches contain a mix of insertions and deletions, which are separated into
insertion and deletion sub-batches during pre-processing").

Design notes
------------
Adjacency is a ``list[set[int]]``.  Sets give O(1) membership tests (needed by
strict-mode validation and by the LDS bookkeeping which must ask "is w a
neighbour of v" during cascades) at the cost of memory; the static snapshot
:class:`repro.graph.csr.CSRGraph` provides the cache-friendly numpy view used
by the exact peeling algorithm, following the HPC guidance of keeping hot
numeric kernels on contiguous arrays while leaving mutation to flexible
containers.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import EdgeStateError, SelfLoopError, VertexOutOfRange
from repro.types import Edge, EdgeBatch, Vertex, canonical_edge, canonicalize_batch


class DynamicGraph:
    """An undirected simple graph over a fixed vertex set ``[0, n)``.

    Parameters
    ----------
    num_vertices:
        Size of the vertex universe.  Matching the paper, the vertex set is
        fixed up front and only edges change dynamically.
    edges:
        Optional initial edges; duplicates are ignored.

    Examples
    --------
    >>> g = DynamicGraph(4, edges=[(0, 1), (1, 2)])
    >>> g.num_edges
    2
    >>> g.insert_batch([(2, 3), (0, 2)])
    2
    >>> sorted(g.neighbors(2))
    [0, 1, 3]
    """

    __slots__ = ("_n", "_adj", "_m", "_version", "_csr_cache")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._adj: list[set[Vertex]] = [set() for _ in range(num_vertices)]
        self._m = 0
        #: Monotonic edge-set version: bumped whenever the edge set actually
        #: changes.  Consumers holding derived views (the cached CSR snapshot,
        #: the frontier store's edge arrays) compare against it to decide
        #: between an incremental update and a full resync.
        self._version = 0
        #: ``(version, CSRGraph)`` cache slot for :func:`repro.graph.csr.csr_view`.
        self._csr_cache: tuple[int, object] | None = None
        inserted = self.insert_batch(edges)
        del inserted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the (fixed) vertex universe."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges currently present."""
        return self._m

    @property
    def version(self) -> int:
        """Monotonic edge-set version (bumps only on actual changes)."""
        return self._version

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """A read-only view of ``v``'s neighbourhood.

        Returned as a ``frozenset`` copy so concurrent readers can iterate
        safely while an update batch mutates the underlying sets.
        """
        self._check_vertex(v)
        return frozenset(self._adj[v])

    def neighbors_unsafe(self, v: Vertex) -> set[Vertex]:
        """The live adjacency set of ``v`` — no copy, no bounds check.

        Only for single-threaded hot loops inside the level data structures;
        mutating it directly corrupts the edge count.
        """
        return self._adj[v]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether edge ``(u, v)`` is currently present."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical ``(min, max)`` form."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def copy(self) -> "DynamicGraph":
        """An independent deep copy of the current graph state."""
        g = DynamicGraph(self._n)
        g._adj = [set(s) for s in self._adj]
        g._m = self._m
        return g

    def clear(self) -> None:
        """Remove every edge, keeping the vertex universe and the adjacency
        set objects (live references from hot loops stay valid)."""
        for s in self._adj:
            s.clear()
        self._m = 0
        self._version += 1

    # ------------------------------------------------------------------
    # Batch mutation
    # ------------------------------------------------------------------
    def insert_batch(self, edges: EdgeBatch | Iterable[Edge], *, strict: bool = False) -> int:
        """Insert a batch of edges; return how many were actually new.

        Already-present edges are skipped (or rejected with
        :class:`~repro.errors.EdgeStateError` when ``strict``), matching the
        batch pre-processing in the paper's framework.
        """
        count = 0
        for u, v in canonicalize_batch(edges):
            self._check_edge_endpoints(u, v)
            if v in self._adj[u]:
                if strict:
                    raise EdgeStateError(f"edge ({u}, {v}) already present")
                continue
            self._adj[u].add(v)
            self._adj[v].add(u)
            count += 1
        self._m += count
        if count:
            self._version += 1
        return count

    def delete_batch(self, edges: EdgeBatch | Iterable[Edge], *, strict: bool = False) -> int:
        """Delete a batch of edges; return how many were actually removed."""
        count = 0
        for u, v in canonicalize_batch(edges):
            self._check_edge_endpoints(u, v)
            if v not in self._adj[u]:
                if strict:
                    raise EdgeStateError(f"edge ({u}, {v}) not present")
                continue
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            count += 1
        self._m -= count
        if count:
            self._version += 1
        return count

    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert one edge; return ``True`` if it was new."""
        return self.insert_batch([(u, v)]) == 1

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete one edge; return ``True`` if it was present."""
        return self.delete_batch([(u, v)]) == 1

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def filter_new_edges(self, edges: Iterable[Edge]) -> list[Edge]:
        """Canonical sub-batch of ``edges`` not already in the graph."""
        return [
            e
            for e in canonicalize_batch(edges)
            if e[1] not in self._adj[e[0]]
        ]

    def filter_present_edges(self, edges: Iterable[Edge]) -> list[Edge]:
        """Canonical sub-batch of ``edges`` currently in the graph."""
        return [
            e
            for e in canonicalize_batch(edges)
            if e[1] in self._adj[e[0]]
        ]

    def _check_vertex(self, v: Vertex) -> None:
        if not 0 <= v < self._n:
            raise VertexOutOfRange(v, self._n)

    def _check_edge_endpoints(self, u: Vertex, v: Vertex) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise SelfLoopError(u)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicGraph(n={self._n}, m={self._m})"
