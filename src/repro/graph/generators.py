"""Synthetic graph generators used to fabricate the paper's workloads offline.

The paper evaluates on SNAP / Network Repository / DIMACS graphs which are not
available in this offline environment, so :mod:`repro.graph.datasets` builds
scaled stand-ins from the generators here.  Each generator targets one
structural regime that matters for dynamic k-core behaviour:

* :func:`erdos_renyi` — flat degree distribution, shallow core hierarchy.
* :func:`chung_lu` — prescribed power-law expected degrees; heavy-tailed
  corenesses like the social graphs (*dblp*, *lj*, *orkut*, ...).
* :func:`preferential_attachment` — Barabási–Albert; connected, heavy tail.
* :func:`rmat` — Kronecker-style skew with community blocks (like *twitter*).
* :func:`grid_road` — near-planar lattice with perturbations; maximum
  coreness 3 exactly like the DIMACS road networks (*ctr*, *usa*).
* :func:`community_overlay` — dense planted cliques over a sparse background,
  giving the very deep cores of the *brain* graph.

All generators are deterministic given ``seed`` and return canonical,
de-duplicated edge lists (no self-loops), ready for
:class:`~repro.graph.dynamic_graph.DynamicGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.types import Edge, canonical_edge


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def _dedup(edges: list[Edge]) -> list[Edge]:
    seen: set[Edge] = set()
    out: list[Edge] = []
    for u, v in edges:
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


def erdos_renyi(n: int, m: int, seed: int | None = 0) -> list[Edge]:
    """G(n, m)-style graph: ``m`` distinct uniform random edges on ``n`` vertices.

    Samples with rejection in vectorised numpy rounds, so it stays fast even
    for large ``m`` (per the HPC guidance: no per-edge Python loop until the
    final dedup pass).
    """
    if n < 2:
        return []
    max_edges = n * (n - 1) // 2
    m = min(m, max_edges)
    rng = _rng(seed)
    chosen: set[Edge] = set()
    out: list[Edge] = []
    while len(out) < m:
        need = m - len(out)
        us = rng.integers(0, n, size=2 * need + 8)
        vs = rng.integers(0, n, size=2 * need + 8)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            e = canonical_edge(u, v)
            if e in chosen:
                continue
            chosen.add(e)
            out.append(e)
            if len(out) == m:
                break
    return out


def chung_lu(
    n: int,
    target_edges: int,
    exponent: float = 2.5,
    seed: int | None = 0,
) -> list[Edge]:
    """Chung–Lu graph with power-law expected degrees ``w_i ∝ i^{-1/(exponent-1)}``.

    Edges are sampled by drawing both endpoints from the weight distribution,
    which matches the Chung–Lu model up to the usual ``w_u w_v / W`` factor
    and yields a heavy-tailed degree (and coreness) profile.
    """
    if n < 2 or target_edges <= 0:
        return []
    rng = _rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    out: list[Edge] = []
    seen: set[Edge] = set()
    attempts = 0
    max_attempts = 30 * target_edges + 1000
    while len(out) < target_edges and attempts < max_attempts:
        need = target_edges - len(out)
        us = rng.choice(n, size=2 * need + 8, p=probs)
        vs = rng.choice(n, size=2 * need + 8, p=probs)
        attempts += len(us)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            e = canonical_edge(int(u), int(v))
            if e in seen:
                continue
            seen.add(e)
            out.append(e)
            if len(out) == target_edges:
                break
    return out


def preferential_attachment(n: int, m_per_vertex: int, seed: int | None = 0) -> list[Edge]:
    """Barabási–Albert graph: each new vertex attaches to ``m_per_vertex`` others.

    Uses the standard repeated-endpoint trick (attachment proportional to
    degree by sampling from the flat edge-endpoint list).
    """
    if n <= m_per_vertex:
        # Fully connect the tiny case.
        return _dedup([(u, v) for u in range(n) for v in range(u + 1, n)])
    rng = _rng(seed)
    edges: list[Edge] = []
    # Seed clique over the first m_per_vertex + 1 vertices.
    core = m_per_vertex + 1
    repeated: list[int] = []
    for u in range(core):
        for v in range(u + 1, core):
            edges.append((u, v))
            repeated.extend((u, v))
    for new in range(core, n):
        targets: set[int] = set()
        while len(targets) < m_per_vertex:
            t = repeated[int(rng.integers(0, len(repeated)))]
            if t != new:
                targets.add(t)
        for t in targets:
            edges.append(canonical_edge(new, t))
            repeated.extend((new, t))
    return _dedup(edges)


def rmat(
    scale: int,
    target_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
) -> list[Edge]:
    """R-MAT (recursive matrix) graph on ``2**scale`` vertices.

    The classic Kronecker-style generator behind Graph500 and the skewed
    *twitter*-like workloads.  ``a + b + c + d == 1`` with ``d`` implied.
    Vectorised: all bit decisions for all edges are drawn in one numpy pass.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("rmat probabilities must satisfy a + b + c <= 1")
    n = 1 << scale
    rng = _rng(seed)
    out: list[Edge] = []
    seen: set[Edge] = set()
    while len(out) < target_edges:
        need = target_edges - len(out)
        batch = 2 * need + 16
        # For each edge and each bit level, pick one of 4 quadrants.
        r = rng.random(size=(batch, scale))
        u = np.zeros(batch, dtype=np.int64)
        v = np.zeros(batch, dtype=np.int64)
        ab = a + b
        abc = a + b + c
        for bit in range(scale):
            col = r[:, bit]
            right = (col >= a) & (col < ab)  # quadrant b: v bit set
            down = (col >= ab) & (col < abc)  # quadrant c: u bit set
            both = col >= abc  # quadrant d: both bits set
            u = (u << 1) | (down | both).astype(np.int64)
            v = (v << 1) | (right | both).astype(np.int64)
        for uu, vv in zip(u.tolist(), v.tolist()):
            if uu == vv:
                continue
            e = canonical_edge(uu, vv)
            if e in seen:
                continue
            seen.add(e)
            out.append(e)
            if len(out) == target_edges:
                break
        # Guard against degenerate parameterisations that cannot supply
        # enough distinct edges.
        if len(seen) >= n * (n - 1) // 2:
            break
    return out


def grid_road(
    rows: int,
    cols: int,
    diagonal_fraction: float = 0.05,
    seed: int | None = 0,
) -> list[Edge]:
    """Road-network stand-in: a ``rows × cols`` lattice plus sparse diagonals.

    A pure lattice is 2-degenerate; adding a ``diagonal_fraction`` of cell
    diagonals creates pockets of coreness 3, matching the DIMACS road graphs
    (*ctr*, *usa*) whose largest k is 3 in Table 1.
    """
    rng = _rng(seed)
    edges: list[Edge] = []

    def vid(r: int, col: int) -> int:
        return r * cols + col

    for r in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                edges.append((vid(r, col), vid(r, col + 1)))
            if r + 1 < rows:
                edges.append((vid(r, col), vid(r + 1, col)))
            if (
                r + 1 < rows
                and col + 1 < cols
                and rng.random() < diagonal_fraction
            ):
                edges.append((vid(r, col), vid(r + 1, col + 1)))
                edges.append((vid(r, col + 1), vid(r + 1, col)))
    return _dedup(edges)


def community_overlay(
    n: int,
    num_communities: int,
    community_size: int,
    background_edges: int,
    intra_density: float = 0.9,
    seed: int | None = 0,
) -> list[Edge]:
    """Dense planted communities over a sparse random background.

    Each community is a near-clique of ``community_size`` vertices with edge
    probability ``intra_density``, driving the maximum coreness up to roughly
    ``intra_density * community_size`` — the deep-core regime of the *brain*
    and *orkut* graphs.
    """
    rng = _rng(seed)
    edges: list[Edge] = list(
        erdos_renyi(n, background_edges, seed=None if seed is None else seed + 1)
    )
    for ci in range(num_communities):
        members = rng.choice(n, size=min(community_size, n), replace=False)
        members = members.tolist()
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if rng.random() < intra_density:
                    edges.append(canonical_edge(members[i], members[j]))
        del ci
    return _dedup(edges)


def bipartite(
    n_left: int,
    n_right: int,
    target_edges: int,
    seed: int | None = 0,
) -> list[Edge]:
    """Random bipartite graph: ``target_edges`` distinct left↔right edges.

    Vertices ``0..n_left-1`` form the left side, ``n_left..n_left+n_right-1``
    the right; no within-side edges exist, so the coreness structure is
    driven purely by the degree imbalance (the user/item shape of
    recommendation workloads).  Sampled in vectorised rejection rounds like
    :func:`erdos_renyi`.
    """
    if n_left < 1 or n_right < 1:
        return []
    max_edges = n_left * n_right
    m = min(target_edges, max_edges)
    if m <= 0:
        return []
    rng = _rng(seed)
    seen: set[Edge] = set()
    out: list[Edge] = []
    while len(out) < m:
        need = m - len(out)
        us = rng.integers(0, n_left, size=2 * need + 8)
        vs = rng.integers(n_left, n_left + n_right, size=2 * need + 8)
        for u, v in zip(us.tolist(), vs.tolist()):
            e = canonical_edge(u, v)
            if e in seen:
                continue
            seen.add(e)
            out.append(e)
            if len(out) == m:
                break
    return out


def stochastic_block_model(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    seed: int | None = 0,
) -> list[Edge]:
    """Stochastic block model: dense blocks, sparse cross-block edges.

    The canonical community-detection benchmark model; used by tests as a
    middle ground between :func:`community_overlay` (planted near-cliques)
    and :func:`erdos_renyi` (no structure).  Vertices are numbered block by
    block; edge probability is ``p_in`` within a block and ``p_out`` across.
    Sampled block-pair by block-pair with vectorised Bernoulli draws.
    """
    if not 0.0 <= p_out <= p_in <= 1.0:
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    if any(s < 0 for s in block_sizes):
        raise ValueError("block sizes must be non-negative")
    rng = _rng(seed)
    starts = [0]
    for s in block_sizes:
        starts.append(starts[-1] + s)
    edges: list[Edge] = []
    num_blocks = len(block_sizes)
    for bi in range(num_blocks):
        lo_i, hi_i = starts[bi], starts[bi + 1]
        # Within-block pairs.
        size = hi_i - lo_i
        if size >= 2 and p_in > 0:
            mask = rng.random(size * (size - 1) // 2) < p_in
            idx = 0
            for u in range(lo_i, hi_i):
                for v in range(u + 1, hi_i):
                    if mask[idx]:
                        edges.append((u, v))
                    idx += 1
        # Cross-block pairs.
        for bj in range(bi + 1, num_blocks):
            lo_j, hi_j = starts[bj], starts[bj + 1]
            cross = (hi_i - lo_i) * (hi_j - lo_j)
            if cross and p_out > 0:
                mask = rng.random(cross) < p_out
                idx = 0
                for u in range(lo_i, hi_i):
                    for v in range(lo_j, hi_j):
                        if mask[idx]:
                            edges.append((u, v))
                        idx += 1
    return _dedup(edges)


def small_world(n: int, k: int, rewire: float = 0.1, seed: int | None = 0) -> list[Edge]:
    """Watts–Strogatz ring lattice with rewiring (used by tests and examples).

    Every vertex connects to its ``k`` nearest ring neighbours (``k`` even),
    then each edge is rewired to a random endpoint with probability
    ``rewire``.
    """
    if k % 2 != 0:
        raise ValueError("small_world requires even k")
    rng = _rng(seed)
    edges: list[Edge] = []
    for u in range(n):
        for off in range(1, k // 2 + 1):
            v = (u + off) % n
            if rng.random() < rewire:
                w = int(rng.integers(0, n))
                if w != u:
                    v = w
            if u != v:
                edges.append(canonical_edge(u, v))
    return _dedup(edges)
