"""Plain-text edge-list I/O (SNAP-compatible format).

The SNAP datasets used by the paper are distributed as whitespace-separated
edge lists with ``#`` comments; these helpers read and write that format so
users with local copies of the real datasets can feed them straight into the
library.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.types import Edge, canonicalize_batch


def read_edge_list(path: str | os.PathLike[str]) -> tuple[int, list[Edge]]:
    """Read a whitespace-separated edge list.

    Lines starting with ``#`` or ``%`` are comments.  Self-loops are dropped
    and duplicate edges collapsed.  Returns ``(num_vertices, edges)`` where
    ``num_vertices`` is one more than the largest vertex id seen (0 for an
    empty file).
    """
    edges: list[Edge] = []
    max_v = -1
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected at least two columns, got {line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative vertex id in {line!r}")
            if u == v:
                continue
            max_v = max(max_v, u, v)
            edges.append((u, v))
    return max_v + 1, canonicalize_batch(edges)


def write_edge_list(
    path: str | os.PathLike[str],
    edges: Iterable[Edge],
    *,
    header: str | None = None,
) -> int:
    """Write edges one per line; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in edges:
            fh.write(f"{u}\t{v}\n")
            count += 1
    return count
