"""Dynamic-graph substrate: storage, snapshots, generators, datasets, I/O.

This package stands in for the role GBBS plays in the paper's implementation:
it owns the mutable undirected graph that the level data structures are
maintained against, plus everything needed to fabricate realistic workloads
offline (synthetic stand-ins for the SNAP/DIMACS datasets of Table 1).
"""

from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.edgelist import read_edge_list, write_edge_list

__all__ = [
    "CSRGraph",
    "DynamicGraph",
    "read_edge_list",
    "write_edge_list",
]
