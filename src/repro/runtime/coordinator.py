"""Multi-producer batch coordination: the service layer over the CPLDS.

The paper's model has updates arriving *already batched*; a deployment has
to build those batches from many concurrent producers (the TAO-style write
path of its motivation).  :class:`BatchCoordinator` is that layer:

* any number of producer threads call :meth:`submit_insert` /
  :meth:`submit_delete` and receive a :class:`UpdateTicket`;
* a dedicated update thread drains the queue into batches — closed by size
  (``max_batch``) or time (``max_delay`` since the oldest pending update) —
  pre-processes them into insertion/deletion sub-batches
  (:func:`~repro.workloads.mixes.preprocess_mixed_batch` semantics), and
  applies them to the structure;
* tickets complete when their batch has been applied, so producers can wait
  for *durability* (visibility to readers) when they need read-your-writes;
* reads go straight to the underlying structure at any time — that is the
  whole point of the paper.

The coordinator is also the front door of the epoch-snapshot read tier
(:mod:`repro.reads`): :attr:`BatchCoordinator.current_epoch` exposes the
engine's batch epoch as the cache key a service front-end can vary
responses on, :meth:`BatchCoordinator.read_ticketed` returns reads tagged
with the epoch they are valid at (``stable`` tickets are cacheable until
the epoch advances), and :meth:`BatchCoordinator.pin_epoch` hands out
bulk-read pins when an :class:`~repro.reads.EpochSnapshotStore` is
attached (``epoch_store=`` at construction, or via
:func:`repro.reads.attach_epoch_store`).

Failure contract: **no ticket is ever stranded**.  Every submitted ticket
either completes (``applied_in_batch`` set) or fails with a typed error
(:class:`~repro.errors.CoordinatorClosedError`,
:class:`~repro.errors.CoordinatorDiedError`, or — under the supervised
subclass — :class:`~repro.errors.PoisonUpdateError`), which
:meth:`UpdateTicket.wait` re-raises in the producer.  The base coordinator
itself still *dies loudly* on a batch failure, matching the paper's
no-process-failures model; :class:`~repro.runtime.supervisor.
SupervisedCoordinator` overrides the application seam
(:meth:`BatchCoordinator._apply_edges`) with journaled recovery.

Back-pressure: the queue is bounded; submissions block when the update
thread falls behind.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.errors import (
    CoordinatorClosedError,
    CoordinatorDiedError,
    TicketTimeoutError,
)
from repro.obs import COUNT_BUCKETS, REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.types import Edge, Vertex, canonical_edge

# Cached metric handles (all touched once per batch, on the update thread).
_Q_DEPTH = _OBS.gauge("coordinator_queue_depth")
_CO_BATCHES = _OBS.counter("coordinator_batches_total")
_CO_UPDATES = _OBS.counter("coordinator_updates_total")
_CO_SIZE = _OBS.histogram("coordinator_batch_size", COUNT_BUCKETS)


@dataclass
class UpdateTicket:
    """Completion handle for one submitted update."""

    op: Literal["+", "-"]
    edge: Edge
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Batch number the update was applied in (set on completion).
    applied_in_batch: Optional[int] = None
    #: Typed failure, when the update could not be applied (the ticket is
    #: *done* either way; :meth:`wait` re-raises this in the producer).
    error: Optional[BaseException] = None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the update is visible to readers.

        With a ``timeout``, raises :class:`~repro.errors.TicketTimeoutError`
        if the deadline expires first — a ticket wait never silently returns
        ``False`` and never blocks past an explicit bound.  If the update
        *failed* (coordinator shut down, update quarantined), the ticket's
        typed :attr:`error` is raised instead of returning.
        """
        if not self._event.wait(timeout):
            raise TicketTimeoutError(
                f"update {self.op}{self.edge} not applied within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return True

    def fail(self, error: BaseException) -> None:
        """Complete the ticket with a typed failure (idempotent-ish; the
        first error wins)."""
        if self.error is None:
            self.error = error
        self._event.set()

    @property
    def done(self) -> bool:
        """True once the ticket completed — successfully or with an error."""
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        """True when the ticket completed with a typed error."""
        return self._event.is_set() and self.error is not None


@dataclass(frozen=True)
class EpochReadTicket:
    """One read tagged with the epoch it linearized at.

    ``stable`` is True when the engine's epoch did not advance across the
    read — the estimate is exactly the state of ``epoch``, so a caching
    front-end may serve it for every request keyed by that epoch.  An
    unstable ticket (a batch landed mid-read) is still a correct
    sandwiched read, but is not cacheable: ``epoch`` then reports the
    epoch observed *after* the read.
    """

    vertex: Vertex
    estimate: float
    epoch: int
    stable: bool


class BatchCoordinator:
    """Accumulate concurrent updates into batches and apply them in order.

    Parameters
    ----------
    impl:
        Anything exposing ``apply_batch(insertions, deletions)`` and
        ``batch_number`` (CPLDS and both baselines qualify).
    max_batch:
        Close the current batch once this many updates are pending.
    max_delay:
        Close a non-empty batch at most this many seconds after its first
        update arrived (latency bound for sparse update streams).
    queue_capacity:
        Back-pressure bound on pending submissions.
    epoch_store:
        Optional :class:`~repro.reads.EpochSnapshotStore` to attach to
        ``impl`` (CPLDS family only) before the update thread starts, so
        every applied batch publishes an epoch snapshot for
        :meth:`pin_epoch` readers.
    """

    def __init__(
        self,
        impl,
        *,
        max_batch: int = 1024,
        max_delay: float = 0.01,
        queue_capacity: int = 65536,
        epoch_store=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if epoch_store is not None:
            from repro.reads import attach_epoch_store

            attach_epoch_store(impl, epoch_store)
        self.impl = impl
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queue: queue.Queue[UpdateTicket | None] = queue.Queue(queue_capacity)
        self._closed = False
        self._error: BaseException | None = None
        self.batches_applied = 0
        self.updates_applied = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-coordinator"
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (any thread)
    # ------------------------------------------------------------------
    def submit_insert(self, u: Vertex, v: Vertex) -> UpdateTicket:
        """Queue an edge insertion; returns its completion ticket."""
        return self._submit("+", (u, v))

    def submit_delete(self, u: Vertex, v: Vertex) -> UpdateTicket:
        """Queue an edge deletion; returns its completion ticket."""
        return self._submit("-", (u, v))

    def _submit(self, op: Literal["+", "-"], edge: Edge) -> UpdateTicket:
        self._check_accepting()
        ticket = UpdateTicket(op=op, edge=canonical_edge(*edge))
        self._queue.put(ticket)  # blocks when full: back-pressure
        # Submit/close race: the update thread may already have drained its
        # shutdown sentinel, in which case nothing will ever pop `ticket`.
        # Fail everything still queued instead of letting producers hang.
        if self._closed and not self._thread.is_alive():
            self._drain_pending(
                CoordinatorClosedError("coordinator closed during submit")
            )
        return ticket

    def _check_accepting(self) -> None:
        """Raise the typed reason this coordinator cannot take submissions."""
        if self._closed:
            raise CoordinatorClosedError("coordinator is closed")
        if self._error is not None:
            raise CoordinatorDiedError("coordinator died") from self._error

    def read(self, v: Vertex) -> float:
        """Pass-through asynchronous read (the paper's low-latency path)."""
        return self.impl.read(v)

    # ------------------------------------------------------------------
    # Epoch-tagged reads (the read tier's front door)
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        """The engine's batch epoch right now — the service cache key."""
        return int(getattr(self.impl, "batch_number", self.batches_applied))

    @property
    def epoch_store(self):
        """The attached epoch store, or None (see :mod:`repro.reads`)."""
        return getattr(self.impl, "epoch_store", None)

    def read_ticketed(self, v: Vertex, max_attempts: int = 8) -> EpochReadTicket:
        """Read ``v`` tagged with the epoch it is valid at.

        Sandwiches the engine read between two epoch observations; when
        they agree, the ticket is ``stable`` — the estimate is exactly
        epoch ``epoch``'s state and cacheable under that key.  After
        ``max_attempts`` racing batches, returns the (still correct) last
        read flagged unstable instead of spinning against a hot writer.
        """
        e2 = self.current_epoch
        estimate = self.read(v)
        for _ in range(max_attempts):
            e1 = e2
            e2 = self.current_epoch
            if e1 == e2:
                return EpochReadTicket(v, estimate, e2, True)
            estimate = self.read(v)
        return EpochReadTicket(v, estimate, self.current_epoch, False)

    def pin_epoch(self, epoch: int | None = None):
        """Pin an epoch for bulk reads (newest by default).

        Requires an attached epoch store; see
        :meth:`repro.reads.EpochSnapshotStore.pin`.
        """
        store = self.epoch_store
        if store is None:
            raise ValueError(
                "no epoch store attached (pass epoch_store= at construction)"
            )
        return store.pin(epoch)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything submitted so far has been applied.

        Raises :class:`~repro.errors.TicketTimeoutError` on deadline, or the
        coordinator's typed failure if it died/closed while flushing.
        """
        if self._closed:
            raise CoordinatorClosedError("cannot flush a closed coordinator")
        if self._error is not None:
            raise CoordinatorDiedError("coordinator died") from self._error
        marker = UpdateTicket(op="+", edge=(0, 0))
        marker.edge_is_marker = True  # type: ignore[attr-defined]
        self._queue.put(marker)
        marker.wait(timeout)

    def close(self, timeout: float = 30.0) -> None:
        """Flush and stop the update thread (idempotent).

        Any ticket still queued behind the shutdown sentinel is failed with
        :class:`~repro.errors.CoordinatorClosedError` so its producer
        unblocks with a typed error rather than waiting forever.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - safety net
            raise TimeoutError("coordinator failed to stop")
        self._drain_pending(CoordinatorClosedError("coordinator is closed"))
        if self._error is not None:
            raise CoordinatorDiedError("coordinator died") from self._error

    def __enter__(self) -> "BatchCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Update thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                batch = self._collect()
                if batch is None:
                    return
                self._apply(batch)
        except BaseException as exc:  # pragma: no cover - surfaced via API
            self._error = exc
            death = CoordinatorDiedError("coordinator update thread died")
            death.__cause__ = exc
            self._drain_pending(death)

    def _drain_pending(self, error: BaseException) -> None:
        """Fail every ticket still in the queue so producers unblock."""
        while True:
            try:
                t = self._queue.get_nowait()
            except queue.Empty:
                return
            if t is not None:
                t.fail(error)

    def _collect(self) -> list[UpdateTicket] | None:
        """Gather one batch: first update blocks, then a size/time window."""
        first = self._queue.get()
        if first is None:
            return None
        batch = [first]
        deadline = time.monotonic() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                self._apply(batch)
                return None
            batch.append(item)
        return batch

    def _apply_edges(
        self, inserts: list[Edge], deletes: list[Edge]
    ) -> dict[Edge, BaseException]:
        """Application seam: apply one pre-processed batch to ``impl``.

        Returns a per-edge failure map (empty on full success); raising kills
        the update thread.  The base implementation applies directly and
        never partially fails; :class:`~repro.runtime.supervisor.
        SupervisedCoordinator` overrides this with journaling, recovery, and
        poison-update quarantine.
        """
        self.impl.apply_batch(insertions=inserts, deletions=deletes)
        return {}

    def _apply(self, batch: list[UpdateTicket]) -> None:
        if _OBS.enabled:
            # Depth *after* draining this batch: what is still waiting.
            _Q_DEPTH.set(self._queue.qsize())
            _CO_BATCHES.inc()
            _CO_UPDATES.inc(len(batch))
            _CO_SIZE.observe(len(batch))
        if _REC.enabled:
            # Queue drain note: a=tickets in this batch, b=still queued.
            _REC.record(_EV.NOTE, len(batch), self._queue.qsize())
        # Pre-process: last op per edge wins (the paper's batch semantics).
        final: dict[Edge, UpdateTicket] = {}
        order: list[Edge] = []
        for t in batch:
            if getattr(t, "edge_is_marker", False):
                continue
            if t.edge not in final:
                order.append(t.edge)
            final[t.edge] = t
        inserts = [e for e in order if final[e].op == "+"]
        deletes = [e for e in order if final[e].op == "-"]
        failures: dict[Edge, BaseException] = {}
        try:
            if inserts or deletes:
                failures = self._apply_edges(inserts, deletes)
                self.batches_applied += 1
        except BaseException as exc:
            # The batch died and the thread is about to die with it: complete
            # every ticket of this batch with a typed error first, so no
            # producer is left waiting on an in-flight ticket.
            death = CoordinatorDiedError("batch application failed")
            death.__cause__ = exc
            for t in batch:
                t.fail(death)
            raise
        applied_in = getattr(self.impl, "batch_number", self.batches_applied)
        for t in batch:
            if getattr(t, "edge_is_marker", False):
                t._event.set()
                continue
            # Superseded duplicates share the fate of the edge's final op.
            err = failures.get(t.edge)
            if err is not None:
                t.fail(err)
            else:
                t.applied_in_batch = applied_in
                self.updates_applied += 1
                t._event.set()
