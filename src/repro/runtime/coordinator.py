"""Multi-producer batch coordination: the service layer over the CPLDS.

The paper's model has updates arriving *already batched*; a deployment has
to build those batches from many concurrent producers (the TAO-style write
path of its motivation).  :class:`BatchCoordinator` is that layer:

* any number of producer threads call :meth:`submit_insert` /
  :meth:`submit_delete` and receive a :class:`UpdateTicket`;
* a dedicated update thread drains the queue into batches — closed by size
  (``max_batch``) or time (``max_delay`` since the oldest pending update) —
  pre-processes them into insertion/deletion sub-batches
  (:func:`~repro.workloads.mixes.preprocess_mixed_batch` semantics), and
  applies them to the structure;
* tickets complete when their batch has been applied, so producers can wait
  for *durability* (visibility to readers) when they need read-your-writes;
* reads go straight to the underlying structure at any time — that is the
  whole point of the paper.

Back-pressure: the queue is bounded; submissions block when the update
thread falls behind.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.errors import ReproError
from repro.types import Edge, Vertex, canonical_edge


@dataclass
class UpdateTicket:
    """Completion handle for one submitted update."""

    op: Literal["+", "-"]
    edge: Edge
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Batch number the update was applied in (set on completion).
    applied_in_batch: Optional[int] = None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the update is visible to readers."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()


class BatchCoordinator:
    """Accumulate concurrent updates into batches and apply them in order.

    Parameters
    ----------
    impl:
        Anything exposing ``apply_batch(insertions, deletions)`` and
        ``batch_number`` (CPLDS and both baselines qualify).
    max_batch:
        Close the current batch once this many updates are pending.
    max_delay:
        Close a non-empty batch at most this many seconds after its first
        update arrived (latency bound for sparse update streams).
    queue_capacity:
        Back-pressure bound on pending submissions.
    """

    def __init__(
        self,
        impl,
        *,
        max_batch: int = 1024,
        max_delay: float = 0.01,
        queue_capacity: int = 65536,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay <= 0:
            raise ValueError("max_delay must be positive")
        self.impl = impl
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queue: queue.Queue[UpdateTicket | None] = queue.Queue(queue_capacity)
        self._closed = False
        self._error: BaseException | None = None
        self.batches_applied = 0
        self.updates_applied = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-coordinator"
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (any thread)
    # ------------------------------------------------------------------
    def submit_insert(self, u: Vertex, v: Vertex) -> UpdateTicket:
        """Queue an edge insertion; returns its completion ticket."""
        return self._submit("+", (u, v))

    def submit_delete(self, u: Vertex, v: Vertex) -> UpdateTicket:
        """Queue an edge deletion; returns its completion ticket."""
        return self._submit("-", (u, v))

    def _submit(self, op: Literal["+", "-"], edge: Edge) -> UpdateTicket:
        if self._closed:
            raise ReproError("coordinator is closed")
        if self._error is not None:
            raise ReproError("coordinator died") from self._error
        ticket = UpdateTicket(op=op, edge=canonical_edge(*edge))
        self._queue.put(ticket)  # blocks when full: back-pressure
        return ticket

    def read(self, v: Vertex) -> float:
        """Pass-through asynchronous read (the paper's low-latency path)."""
        return self.impl.read(v)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything submitted so far has been applied."""
        marker = UpdateTicket(op="+", edge=(0, 0))
        marker.edge_is_marker = True  # type: ignore[attr-defined]
        self._queue.put(marker)
        if not marker.wait(timeout):
            raise TimeoutError("coordinator flush timed out")
        if self._error is not None:
            raise ReproError("coordinator died") from self._error

    def close(self, timeout: float = 30.0) -> None:
        """Flush and stop the update thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - safety net
            raise TimeoutError("coordinator failed to stop")
        if self._error is not None:
            raise ReproError("coordinator died") from self._error

    def __enter__(self) -> "BatchCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Update thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                batch = self._collect()
                if batch is None:
                    return
                self._apply(batch)
        except BaseException as exc:  # pragma: no cover - surfaced via API
            self._error = exc
            # Fail every ticket still waiting so producers unblock.
            while True:
                try:
                    t = self._queue.get_nowait()
                except queue.Empty:
                    break
                if t is not None:
                    t._event.set()

    def _collect(self) -> list[UpdateTicket] | None:
        """Gather one batch: first update blocks, then a size/time window."""
        first = self._queue.get()
        if first is None:
            return None
        batch = [first]
        deadline = time.monotonic() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                self._apply(batch)
                return None
            batch.append(item)
        return batch

    def _apply(self, batch: list[UpdateTicket]) -> None:
        # Pre-process: last op per edge wins (the paper's batch semantics).
        final: dict[Edge, UpdateTicket] = {}
        order: list[Edge] = []
        markers: list[UpdateTicket] = []
        for t in batch:
            if getattr(t, "edge_is_marker", False):
                markers.append(t)
                continue
            if t.edge not in final:
                order.append(t.edge)
            final[t.edge] = t
        inserts = [e for e in order if final[e].op == "+"]
        deletes = [e for e in order if final[e].op == "-"]
        if inserts or deletes:
            self.impl.apply_batch(insertions=inserts, deletions=deletes)
            self.batches_applied += 1
        applied_in = getattr(self.impl, "batch_number", self.batches_applied)
        for t in batch:
            if not getattr(t, "edge_is_marker", False):
                t.applied_in_batch = applied_in
                self.updates_applied += 1
            t._event.set()
