"""Cost model for the virtual-time machine.

The GIL makes real multi-core scaling unobservable in CPython, so the Fig 7
scalability experiment runs on a modeled machine instead (DESIGN.md
substitution table).  The model is deliberately simple and standard — Brent's
law over the PLDS's parallel rounds:

* a parallel round of ``k`` independent work items on ``W`` cores takes
  ``ceil(k / W)`` item-times (work / cores, floored by the span);
* a batch's virtual duration is the sum of its rounds' times plus the
  edge-application and (un)marking terms;
* a read costs a constant depending on the implementation: NonSync pays one
  level load; the CPLDS additionally pays the descriptor check and DAG
  traversal (the paper measures this overhead at ≤ 2–3×).

All constants are in abstract "ticks"; only ratios matter for the shapes the
reproduction checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Tick costs for every modeled operation."""

    #: Applying one edge update to the graph + counters.
    edge_apply: float = 1.0
    #: One invariant/desire-level decision inside a parallel round.
    decision: float = 1.0
    #: One vertex level move (bookkeeping scan of its neighbourhood).
    move: float = 3.0
    #: Creating one operation descriptor + DAG merge (CPLDS only).
    mark: float = 2.0
    #: Clearing one descriptor at batch end (CPLDS only).
    unmark: float = 0.5
    #: One NonSync read (a level load + estimate).
    read_base: float = 1.0
    #: Extra cost of a CPLDS read (descriptor load + check_DAG).
    read_dag: float = 1.0

    def read_cost(self, impl_kind: str) -> float:
        """Per-read cost for ``impl_kind`` in {'cplds', 'nonsync', 'syncreads'}.

        SyncReads' *execution* cost equals NonSync's (it reads a live level);
        its latency is dominated by waiting for the batch, which the machine
        models separately.
        """
        if impl_kind == "cplds":
            return self.read_base + self.read_dag
        if impl_kind in ("nonsync", "syncreads"):
            return self.read_base
        raise ValueError(f"unknown impl kind {impl_kind!r}")


@dataclass
class BatchLedger:
    """Work counts of one executed batch, filled in by the instrumentation."""

    kind: str = "insert"
    edges: int = 0
    #: Sizes of the read-only decision rounds (invariant checks, desire
    #: levels, unmark classification/clears) run through the executor.
    decision_rounds: list[int] = field(default_factory=list)
    #: Movers per mutation round.
    move_rounds: list[int] = field(default_factory=list)
    #: Vertices marked (CPLDS only; 0 elsewhere).
    marked: int = 0

    def virtual_duration(self, num_cores: int, cost: CostModel) -> float:
        """Brent's-law duration of this batch on ``num_cores`` update cores."""
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        ticks = math.ceil(self.edges / num_cores) * cost.edge_apply
        for k in self.decision_rounds:
            ticks += math.ceil(k / num_cores) * cost.decision
        for k in self.move_rounds:
            ticks += math.ceil(k / num_cores) * cost.move
        if self.marked:
            ticks += math.ceil(self.marked / num_cores) * (
                cost.mark + cost.unmark
            )
        return float(ticks)

    @property
    def total_work(self) -> float:
        """Single-core work (the ``num_cores=1`` duration, cost-weighted)."""
        return self.virtual_duration(1, CostModel())

    @property
    def span_rounds(self) -> int:
        """Number of sequential rounds (the parallel depth of the batch)."""
        return 1 + len(self.decision_rounds) + len(self.move_rounds)
