"""Real-thread concurrent sessions: one update thread + N reader threads.

This is the wall-clock measurement substrate behind the Fig 3–6
reproductions.  The process model matches §2 of the paper as instantiated in
this reproduction (single-writer, multi-reader; see DESIGN.md): the calling
thread plays the update processes and applies the batch stream back-to-back,
while ``num_readers`` daemon threads continuously read uniform-random
vertices, exactly as the paper's read threads do ("each read thread
continuously generates reads of vertices chosen uniformly at random for the
duration of the batch").

Reads are tagged with whether a batch was in flight at their invocation;
latency statistics use only in-flight reads, since reads landing in the
quiescent gaps between batches would dilute precisely the latency difference
the experiment measures.

The CPython thread switch interval is temporarily lowered so reader threads
interleave with the update thread at a granularity far below a batch
duration.
"""

from __future__ import annotations

import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.workloads.batches import Batch, BatchStream
from repro.workloads.reads import UniformReadGenerator


@dataclass(frozen=True)
class ReadSample:
    """One measured read."""

    vertex: int
    batch: int  # implementation's claimed batch number
    estimate: float
    latency: float  # seconds
    in_flight: bool  # was an update batch running at invocation?


@dataclass
class SessionResult:
    """Everything one concurrent session measured."""

    name: str
    reads: list[ReadSample] = field(default_factory=list)
    batch_durations: list[float] = field(default_factory=list)  # seconds
    batch_kinds: list[str] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def total_write_time(self) -> float:
        return sum(self.batch_durations)

    def read_latencies(self, *, in_flight_only: bool = True) -> list[float]:
        return [
            r.latency
            for r in self.reads
            if r.in_flight or not in_flight_only
        ]

    def durations_for(self, kind: str) -> list[float]:
        return [
            d for d, k in zip(self.batch_durations, self.batch_kinds) if k == kind
        ]


class _Reader(threading.Thread):
    """One read process: reads until stopped, recording samples locally.

    When the sample budget fills, reservoir sampling keeps an unbiased
    subset of the whole session instead of truncating to the first batches
    (which would starve late-phase — e.g. deletion — statistics).
    """

    def __init__(
        self,
        impl,
        gen: UniformReadGenerator,
        stop: threading.Event,
        in_flight_flag,
        max_samples: int,
        sample_seed: int = 0,
    ) -> None:
        super().__init__(daemon=True, name="repro-reader")
        self.impl = impl
        self.gen = gen
        self.stop_event = stop
        self.in_flight_flag = in_flight_flag
        self.max_samples = max_samples
        self.samples: list[ReadSample] = []
        self.total_reads = 0
        self.error: BaseException | None = None
        self._reservoir_rng = random.Random(sample_seed)

    def run(self) -> None:  # pragma: no cover - exercised via sessions
        impl = self.impl
        gen = self.gen
        samples = self.samples
        perf = time.perf_counter
        try:
            while not self.stop_event.is_set():
                v = gen.next()
                in_flight = self.in_flight_flag[0]
                t0 = perf()
                result = impl.read_verbose(v)
                t1 = perf()
                self.total_reads += 1
                sample = ReadSample(
                    vertex=v,
                    batch=result.batch,
                    estimate=result.estimate,
                    latency=t1 - t0,
                    # A read that had to wait or retry was, by definition,
                    # concurrent with an update — count it as in-flight even
                    # if the flag snapshot missed the batch start (SyncReads
                    # waiters).
                    in_flight=in_flight or result.retries > 0,
                )
                if len(samples) < self.max_samples:
                    samples.append(sample)
                else:
                    j = self._reservoir_rng.randrange(self.total_reads)
                    if j < self.max_samples:
                        samples[j] = sample
        except BaseException as exc:  # surface reader crashes to the session
            self.error = exc


class _QueueingReader(threading.Thread):
    """The paper's SyncReads read thread.

    "Each read thread in SyncReads maintains an array of reads in the order
    that they are generated during each update batch and performs the reads,
    in order, at the end of the batch."  While a batch is in flight this
    thread *generates* timestamped reads into a local queue (bounded, to
    keep memory flat); once the batch ends it executes them in order, each
    read's latency running from its generation time to its execution.
    """

    #: Bound on queued reads per batch; generation beyond it is paced out.
    MAX_QUEUE = 2000

    def __init__(
        self,
        impl,
        gen: UniformReadGenerator,
        stop: threading.Event,
        in_flight_flag,
        max_samples: int,
        sample_seed: int = 0,
    ) -> None:
        super().__init__(daemon=True, name="repro-syncreader")
        self.impl = impl
        self.gen = gen
        self.stop_event = stop
        self.in_flight_flag = in_flight_flag
        self.max_samples = max_samples
        self.samples: list[ReadSample] = []
        self.total_reads = 0
        self.error: BaseException | None = None
        self.queue_len = 0
        self._reservoir_rng = random.Random(sample_seed)

    def _record(self, sample: ReadSample) -> None:
        self.total_reads += 1
        if len(self.samples) < self.max_samples:
            self.samples.append(sample)
        else:
            j = self._reservoir_rng.randrange(self.total_reads)
            if j < self.max_samples:
                self.samples[j] = sample

    def run(self) -> None:  # pragma: no cover - exercised via sessions
        impl = self.impl
        gen = self.gen
        perf = time.perf_counter
        queue: list[tuple[int, float]] = []
        try:
            while not self.stop_event.is_set():
                if self.in_flight_flag[0]:
                    if len(queue) < self.MAX_QUEUE:
                        queue.append((gen.next(), perf()))
                        self.queue_len = len(queue)
                    else:
                        time.sleep(1e-4)  # paced out; queue is full
                    continue
                if queue:
                    # Batch over: execute the queued reads in order.
                    for v, t_gen in queue:
                        result = impl.read_verbose(v)
                        self._record(
                            ReadSample(
                                vertex=v,
                                batch=result.batch,
                                estimate=result.estimate,
                                latency=perf() - t_gen,
                                in_flight=True,
                            )
                        )
                    queue.clear()
                    self.queue_len = 0
                    continue
                # Quiescent read between batches.
                v = gen.next()
                t0 = perf()
                result = impl.read_verbose(v)
                self._record(
                    ReadSample(
                        vertex=v,
                        batch=result.batch,
                        estimate=result.estimate,
                        latency=perf() - t0,
                        in_flight=False,
                    )
                )
        except BaseException as exc:
            self.error = exc


def run_concurrent_session(
    impl,
    stream: BatchStream | Sequence[Batch],
    *,
    num_readers: int = 2,
    reader_seed: int = 0,
    max_samples_per_reader: int = 100_000,
    switch_interval: float = 5e-4,
    inter_batch_gap: float = 0.002,
    name: str | None = None,
) -> SessionResult:
    """Apply ``stream`` on the calling thread with reader threads running.

    ``inter_batch_gap`` pauses the update thread between batches so reader
    threads get scheduled around batch boundaries, mirroring the paper's
    per-batch experiment structure; gap-time reads are recorded but not
    counted as in-flight.  For implementations exposing ``drain()``
    (SyncReads), the drain of reads queued during the batch is counted into
    the batch's measured duration, as the paper's accounting prescribes.

    Reader exceptions are re-raised after the session (a reader crash is a
    test failure, not a statistic).
    """
    batches = list(stream)
    n = stream.num_vertices if isinstance(stream, BatchStream) else impl.graph.num_vertices
    result = SessionResult(
        name=name or (stream.name if isinstance(stream, BatchStream) else "session")
    )
    stop = threading.Event()
    in_flight_flag = [False]  # single-slot list: GIL-atomic element access
    # SyncReads-style implementations (those exposing drain()) get the
    # paper's queueing read threads; everything else reads directly.
    drain = getattr(impl, "drain", None)
    reader_cls = _QueueingReader if drain is not None else _Reader
    readers = [
        reader_cls(
            impl,
            UniformReadGenerator(n, seed=reader_seed + 1000 * i),
            stop,
            in_flight_flag,
            max_samples_per_reader,
            sample_seed=reader_seed + 7777 * i,
        )
        for i in range(num_readers)
    ]

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(switch_interval)
    try:
        for r in readers:
            r.start()
        perf = time.perf_counter
        for batch in batches:
            in_flight_flag[0] = True
            t0 = perf()
            if batch.kind == "insert":
                impl.insert_batch(batch.edges)
            else:
                impl.delete_batch(batch.edges)
            # Reads arriving from here on are post-batch: stop classifying
            # them as in-flight *before* draining the queued SyncReads
            # readers (whose own reads were classified at invocation).
            in_flight_flag[0] = False
            if drain is not None:
                drain()
                # Wait for the queueing readers to execute their backlog —
                # the paper counts this into the batch update time
                # ("updates are blocked ... until all synchronous reads
                # finish").
                deadline = perf() + 30.0
                while any(getattr(r, "queue_len", 0) for r in readers):
                    if perf() > deadline:  # pragma: no cover - safety net
                        raise TimeoutError("SyncReads queue drain timed out")
                    time.sleep(1e-4)
            t1 = perf()
            result.batch_durations.append(t1 - t0)
            result.batch_kinds.append(batch.kind)
            result.batch_sizes.append(len(batch))
            if inter_batch_gap > 0:
                time.sleep(inter_batch_gap)
    finally:
        stop.set()
        for r in readers:
            r.join(timeout=30.0)
        sys.setswitchinterval(old_interval)

    for r in readers:
        if r.error is not None:
            raise r.error
        result.reads.extend(r.samples)
    return result


def run_quiescent_updates(
    impl, stream: BatchStream | Sequence[Batch], *, name: str | None = None
) -> SessionResult:
    """Apply ``stream`` with no readers at all (pure update-time baseline)."""
    result = SessionResult(
        name=name or (stream.name if isinstance(stream, BatchStream) else "session")
    )
    perf = time.perf_counter
    for batch in stream:
        t0 = perf()
        if batch.kind == "insert":
            impl.insert_batch(batch.edges)
        else:
            impl.delete_batch(batch.edges)
        t1 = perf()
        result.batch_durations.append(t1 - t0)
        result.batch_kinds.append(batch.kind)
        result.batch_sizes.append(len(batch))
    return result
