"""Step-level interleaving of the CPLDS read protocol (Algorithm 4).

The thread harness and round-boundary injection interleave *whole* reads
with updates; this module goes one level finer.  A :class:`SteppedRead`
executes Algorithm 4 as a coroutine that yields control after **every shared
memory access** — between the two batch-number collects, between the level
collects, around the descriptor fetch and the DAG check — so a scheduler can
suspend a reader at any protocol step, run an arbitrary amount of update
work, and resume it.  This is exactly the adversary the sandwich
(double-collect) exists to defeat, and it is the only way to exercise the
two retry branches (`b1 != b2`, `l1 != l2`) deterministically.

:class:`InterleavedScheduler` drives a population of stepped readers against
a real batch stream, advancing each reader by a seeded random number of
steps at every update round boundary (and between batches).  Completed reads
are validated on the spot:

* the returned level must be one of the vertex's batch-boundary levels seen
  so far (no intermediate values), and
* every retry must have a *cause* — the batch number or the live level
  changed across the sandwich — which is the paper's lock-freedom witness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.cplds import CPLDS
from repro.errors import SimulationError
from repro.lds.plds import UpdateHooks
from repro.runtime.inject import HookChain
from repro.types import Vertex


@dataclass
class SteppedResult:
    """Outcome of one stepped read."""

    vertex: Vertex
    level: int
    estimate: float
    from_descriptor: bool
    retries: int
    #: Cause of each retry: "batch" (b1 != b2) or "level" (l1 != l2).
    retry_causes: list[str] = field(default_factory=list)
    steps: int = 0


class SteppedRead:
    """Algorithm 4 as a resumable coroutine.

    ``advance(k)`` executes up to ``k`` protocol steps; returns the
    :class:`SteppedResult` once the read completes, else ``None``.
    """

    def __init__(self, cplds: CPLDS, vertex: Vertex, max_retries: int = 100_000) -> None:
        self.cplds = cplds
        self.vertex = vertex
        self.max_retries = max_retries
        self.result: Optional[SteppedResult] = None
        self._steps = 0
        self._gen = self._protocol()

    def _protocol(self) -> Generator[None, None, None]:
        cp = self.cplds
        v = self.vertex
        level = cp.plds.state.level
        slots = cp.descriptors.slots
        retries = 0
        causes: list[str] = []
        while True:
            b1 = cp.batch_number
            yield
            l1 = level[v]
            yield
            desc = slots[v]
            yield
            marked = cp.descriptors.check_dag(desc)
            yield
            l2 = level[v]
            yield
            b2 = cp.batch_number
            yield
            if b1 != b2:
                retries += 1
                causes.append("batch")
            elif marked:
                self.result = SteppedResult(
                    vertex=v,
                    level=desc.old_level,  # type: ignore[union-attr]
                    estimate=cp.params.coreness_estimate(desc.old_level),
                    from_descriptor=True,
                    retries=retries,
                    retry_causes=causes,
                    steps=self._steps,
                )
                return
            elif l1 == l2:
                self.result = SteppedResult(
                    vertex=v,
                    level=l1,
                    estimate=cp.params.coreness_estimate(l1),
                    from_descriptor=False,
                    retries=retries,
                    retry_causes=causes,
                    steps=self._steps,
                )
                return
            else:
                retries += 1
                causes.append("level")
            if retries > self.max_retries:
                raise SimulationError(
                    f"stepped read of {v} exceeded {self.max_retries} retries"
                )

    def advance(self, steps: int) -> Optional[SteppedResult]:
        """Run up to ``steps`` protocol steps; result once complete."""
        for _ in range(steps):
            if self.result is not None:
                break
            try:
                next(self._gen)
                self._steps += 1
            except StopIteration:
                break
        return self.result


class _SchedulerHooks(UpdateHooks):
    __slots__ = ("scheduler",)

    def __init__(self, scheduler: "InterleavedScheduler") -> None:
        self.scheduler = scheduler

    def round_boundary(self) -> None:
        self.scheduler._pump()

    def batch_end(self) -> None:
        # This hook runs after the CPLDS's own batch_end (unmark_all), so
        # the live levels are the new batch boundary: record them *before*
        # letting readers complete against them.
        self.scheduler._record_boundary()
        self.scheduler._pump()


class InterleavedScheduler:
    """Interleave stepped readers with a CPLDS update stream, seeded.

    Parameters
    ----------
    cplds:
        A fresh CPLDS (this scheduler installs its own probe hooks).
    num_readers:
        Concurrent stepped reads kept in flight.
    seed:
        Drives which vertices are read and how many steps each reader
        advances per scheduling point — every interleaving is reproducible.
    """

    def __init__(
        self,
        cplds: CPLDS,
        num_readers: int = 4,
        seed: int = 0,
        max_step_burst: int = 4,
    ) -> None:
        self.cplds = cplds
        self.num_readers = num_readers
        self.rng = random.Random(seed)
        self.max_step_burst = max_step_burst
        self.completed: list[SteppedResult] = []
        #: Per-vertex levels observed at batch boundaries (validation set).
        self.boundary_levels: dict[Vertex, set[int]] = {
            v: {cplds.plds.state.level[v]}
            for v in range(cplds.graph.num_vertices)
        }
        self._active: list[SteppedRead] = []
        cplds.plds.hooks = HookChain(cplds.plds.hooks, _SchedulerHooks(self))

    # ------------------------------------------------------------------
    def _record_boundary(self) -> None:
        levels = self.cplds.plds.state.level
        for v in range(self.cplds.graph.num_vertices):
            self.boundary_levels[v].add(levels[v])

    def _spawn(self) -> SteppedRead:
        v = self.rng.randrange(self.cplds.graph.num_vertices)
        return SteppedRead(self.cplds, v)

    def _pump(self) -> None:
        """Advance every active reader by a random burst of steps."""
        while len(self._active) < self.num_readers:
            self._active.append(self._spawn())
        still_active: list[SteppedRead] = []
        for reader in self._active:
            result = reader.advance(self.rng.randint(0, self.max_step_burst))
            if result is not None:
                self._validate(result)
                self.completed.append(result)
            else:
                still_active.append(reader)
        self._active = still_active

    def _validate(self, result: SteppedResult) -> None:
        allowed = self.boundary_levels[result.vertex]
        if result.level not in allowed:
            raise AssertionError(
                f"stepped read of {result.vertex} returned level "
                f"{result.level}, not a batch-boundary level {sorted(allowed)}"
            )

    # ------------------------------------------------------------------
    def run(self, batches) -> list[SteppedResult]:
        """Apply the batch stream, interleaving reads; drain at the end."""
        for batch in batches:
            # Boundary recording happens inside the batch_end hook, before
            # any reader can complete against the new levels.
            if batch.kind == "insert":
                self.cplds.insert_batch(batch.edges)
            else:
                self.cplds.delete_batch(batch.edges)
            self._pump()  # quiescent window between batches
        # Drain: no more updates, so every read completes promptly.
        guard = 0
        while self._active:
            self._pump()
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - safety net
                raise SimulationError("stepped readers failed to drain")
        return self.completed
