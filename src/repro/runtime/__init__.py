"""Execution substrates: who runs the "parallel" parts, and on what clock.

The paper's implementation runs on a 30-core machine with a C++ work-stealing
scheduler.  CPython's GIL rules out shared-memory parallel speedup, so this
package provides the substitutions documented in DESIGN.md:

* :mod:`repro.runtime.executor` — the ``Executor`` abstraction the PLDS uses
  for per-level "parallel" rounds (sequential, thread-pool, or simulated).
* :mod:`repro.runtime.threads` — a real-threads harness: one update thread
  applying batches while reader threads issue asynchronous reads, measuring
  wall-clock latency.  Single-writer multi-reader concurrency is real here.
* :mod:`repro.runtime.sim` — a deterministic virtual-time machine with a
  P-core cost model, used for the scalability experiment (Fig 7);
* :mod:`repro.runtime.inject` — deterministic mid-batch read injection;
* :mod:`repro.runtime.stepping` — the read protocol as a coroutine,
  interleaved with updates at individual protocol-step granularity;
* :mod:`repro.runtime.coordinator` — multi-producer batch formation (the
  service layer over the CPLDS);
* :mod:`repro.runtime.supervisor` — self-healing service layer: write-ahead
  batch journal, supervised recovery with poison-batch quarantine, health
  state machine, stale-snapshot degraded reads;
* :mod:`repro.runtime.chaos` — deterministic seeded fault schedules
  (mid-batch crashes, journal truncation, checkpoint corruption) with an
  oracle-equivalence verdict;
* :mod:`repro.runtime.replay` — timestamped trace replay with
  visibility-lag measurement.
"""

from repro.runtime.coordinator import BatchCoordinator, UpdateTicket

#: Supervisor names resolved lazily (PEP 562): the supervisor pulls in the
#: CPLDS and the persistence layer, which themselves import
#: :mod:`repro.runtime.executor` — an eager import here would be circular.
_LAZY_SUPERVISOR_EXPORTS = {
    "BatchOutcome",
    "HealthState",
    "RecoveryReport",
    "ServiceRead",
    "SupervisedCoordinator",
    "SupervisedCPLDS",
    "restore_from_dir",
}


def __getattr__(name: str):
    """Resolve supervisor exports on first use (avoids an import cycle)."""
    if name in _LAZY_SUPERVISOR_EXPORTS:
        from repro.runtime import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.runtime.executor import (
    Executor,
    SequentialExecutor,
    ThreadedExecutor,
    RoundStats,
)
from repro.runtime.replay import TraceEvent, replay_trace, synthesize_trace

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadedExecutor",
    "RoundStats",
    "BatchCoordinator",
    "UpdateTicket",
    "BatchOutcome",
    "HealthState",
    "RecoveryReport",
    "ServiceRead",
    "SupervisedCoordinator",
    "SupervisedCPLDS",
    "restore_from_dir",
    "TraceEvent",
    "replay_trace",
    "synthesize_trace",
]
