"""Timestamped trace replay with visibility-lag measurement.

The paper's motivation is freshness: reads should observe recent updates
without waiting for batch machinery.  This module measures exactly that.
A trace is a sequence of timestamped update events; the replay engine feeds
them through a :class:`~repro.runtime.coordinator.BatchCoordinator` at
(scaled) trace speed and records each update's **visibility lag** — wall
time from its trace arrival to the completion of the batch that applied it
(the moment it becomes observable to the asynchronous readers).

This is the end-to-end staleness a product team would put on a dashboard,
and it composes three layers of the library: the coordinator (batching
policy), the CPLDS (read path), and the stats helpers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.coordinator import BatchCoordinator
from repro.types import Edge


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped update in a trace."""

    at: float  # seconds from trace start
    op: Literal["+", "-"]
    edge: Edge


def synthesize_trace(
    edges: Sequence[Edge],
    *,
    rate: float,
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> list[TraceEvent]:
    """Poisson-arrival trace: insertions at ``rate`` events/sec, followed by
    a deletion wave over ``delete_fraction`` of the edges."""
    if rate <= 0:
        raise WorkloadError("rate must be positive")
    if not 0.0 <= delete_fraction <= 1.0:
        raise WorkloadError("delete_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=len(edges))
    times = np.cumsum(gaps)
    events = [
        TraceEvent(at=float(t), op="+", edge=e) for t, e in zip(times, edges)
    ]
    num_del = int(len(edges) * delete_fraction)
    if num_del and len(events):
        del_gaps = rng.exponential(1.0 / rate, size=num_del)
        del_times = float(times[-1]) + np.cumsum(del_gaps)
        picks = rng.choice(len(edges), size=num_del, replace=False)
        events.extend(
            TraceEvent(at=float(t), op="-", edge=edges[int(i)])
            for t, i in zip(del_times, picks)
        )
    return events


@dataclass
class ReplayReport:
    """Outcome of one trace replay."""

    events: int
    duration: float  # wall seconds
    batches: int
    visibility_lags: list[float] = field(default_factory=list)

    @property
    def lag_stats(self):
        """Visibility-lag aggregate (a
        :class:`~repro.harness.stats.LatencyStats`)."""
        # Imported lazily: the runtime package must not pull in the harness
        # at init time (repro.lds.plds -> repro.runtime would cycle back
        # through repro.harness -> repro.core).
        from repro.harness.stats import LatencyStats

        return LatencyStats.from_samples(self.visibility_lags)

    @property
    def throughput(self) -> float:
        """Applied events per wall second."""
        return self.events / self.duration if self.duration > 0 else 0.0


def replay_trace(
    impl,
    trace: Iterable[TraceEvent],
    *,
    speed: float = 1.0,
    max_batch: int = 512,
    max_delay: float = 0.005,
) -> ReplayReport:
    """Feed ``trace`` through a coordinator at ``speed``× trace time.

    Visibility lag per event = wall time from its (paced) submission to the
    completion of the batch that applied it, captured on the coordinator's
    update thread itself.
    """
    if speed <= 0:
        raise WorkloadError("speed must be positive")
    events = sorted(trace, key=lambda e: e.at)
    report = ReplayReport(events=len(events), duration=0.0, batches=0)
    if not events:
        return report

    coord = BatchCoordinator(impl, max_batch=max_batch, max_delay=max_delay)
    completions: dict[int, float] = {}
    original_apply = coord._apply

    def timed_apply(batch):
        original_apply(batch)
        now = time.perf_counter()
        for t in batch:
            completions[id(t)] = now

    coord._apply = timed_apply  # type: ignore[method-assign]

    start = time.perf_counter()
    arrivals: list[tuple[float, object]] = []
    try:
        for ev in events:
            target = start + ev.at / speed
            now = time.perf_counter()
            if target > now:
                time.sleep(target - now)
            arrival = time.perf_counter()
            ticket = (
                coord.submit_insert(*ev.edge)
                if ev.op == "+"
                else coord.submit_delete(*ev.edge)
            )
            arrivals.append((arrival, ticket))
        coord.flush()
    finally:
        coord.close()
    report.duration = time.perf_counter() - start
    report.batches = coord.batches_applied
    for arrival, ticket in arrivals:
        done_at = completions.get(id(ticket))
        if done_at is not None:
            report.visibility_lags.append(max(0.0, done_at - arrival))
    return report
