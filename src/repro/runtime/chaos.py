"""Deterministic chaos harness for the supervised service layer.

Everything here is a pure function of the seed: the workload (a long mixed
insert/delete stream), the fault schedule (mid-batch crashes à la
``DieAfterMoves``, always-failing *poison* edges, simulated process crashes
with journal tail truncation and checkpoint corruption), and therefore the
entire execution — the supervised engine is synchronous and the PLDS is
deterministic under the sequential executor.  That makes every chaos run a
reproducible regression test rather than a flaky stress test.

The verdict is an **oracle equivalence check**: the harness keeps its own
record of every sub-batch the service reports as committed (trimmed to the
recovered prefix after each simulated crash), replays that history into a
fresh-built CPLDS, and requires the supervised structure's coreness
estimate for *every* vertex to match the oracle's exactly — plus clean LDS
invariants, an edge set matching the harness's own bookkeeping, and a final
health state that never needed operator intervention.

The read tier is probed alongside: every batch (and every simulated process
crash) runs under a held epoch pin, and the harness requires each pin's
bulk read to stay bit-identical across the fault — or to have been
force-advanced because recovery rolled its epoch back.  The probes consume
no rng, so the fault schedule is unchanged by their presence.

Run one schedule with :func:`run_chaos`; sweep many with
``python -m repro.runtime.chaos --seeds 50``.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.cplds import CPLDS
from repro.lds.plds import Phase, UpdateHooks
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.runtime.inject import HookChain
from repro.runtime.supervisor import (
    AppliedRecord,
    HealthState,
    SupervisedCPLDS,
    _list_checkpoints,
)
from repro.types import Edge, canonical_edge


class ChaosHooks(UpdateHooks):
    """Seeded fault injector chained after a structure's own hooks.

    Two fault modes, driven by the harness between batches:

    * :meth:`arm_crash` — raise after the k-th vertex move, for the next
      ``times`` application attempts (``times`` ≤ the supervisor's retry
      budget exercises recovery+retry; larger values force a bisection);
    * :attr:`poison` — edges whose presence in a phase's applied sub-batch
      always raises, modelling updates that fail deterministically until
      the supervisor quarantines them.
    """

    def __init__(self) -> None:
        self.poison: set[Edge] = set()
        self._crash_after = 0
        self._crash_times = 0
        self._moves = 0
        self._counting = False

    def arm_crash(self, after_moves: int, times: int) -> None:
        """Fail the next ``times`` attempts after ``after_moves`` moves."""
        self._crash_after = after_moves
        self._crash_times = times

    def clear(self) -> None:
        """Disarm every fault (harness calls this between batches)."""
        self.poison.clear()
        self._crash_times = 0
        self._counting = False

    # -- hook callbacks --------------------------------------------------
    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        if self.poison and self.poison & {canonical_edge(u, v) for u, v in edges}:
            raise RuntimeError("chaos: poison update in batch")
        self._moves = 0
        self._counting = self._crash_times > 0

    def before_move(self, v: int, old: int, new: int, phase: Phase) -> None:
        if not self._counting:
            return
        self._moves += 1
        if self._moves > self._crash_after:
            self._crash_times -= 1
            self._counting = False
            raise RuntimeError("chaos: injected mid-batch crash")


@dataclass(frozen=True)
class ChaosResult:
    """Verdict and statistics of one seeded chaos schedule."""

    seed: int
    backend: str
    num_vertices: int
    batches_submitted: int
    crashes_armed: int
    poison_edges: int
    restarts: int
    truncated_bytes: int
    checkpoints_corrupted: int
    quarantined: int
    recoveries: int
    final_health: str
    #: Vertices whose final estimate differed from the oracle (empty = pass).
    mismatches: tuple[int, ...]
    #: True iff estimates matched, invariants held, the edge set matched the
    #: harness's bookkeeping, and the service never needed an operator.
    converged: bool
    telemetry: dict = field(default_factory=dict)
    #: Basenames of every flight-recorder crash dump the run produced
    #: (empty unless ``record=True``).  Basenames, not paths, so results
    #: stay comparable across throwaway directories.
    crash_dumps: tuple[str, ...] = ()
    #: Epoch-pin immutability probes taken (one per batch, one per restart).
    epoch_pins_checked: int = 0
    #: Batch indices where a held pin's bulk read changed without the pin
    #: being force-advanced (empty = pass; folded into ``converged``).
    epoch_pin_mismatches: tuple[int, ...] = ()
    #: Total force-advances observed across probes (epochs rolled back by
    #: mid-batch recovery).
    epoch_pins_advanced: int = 0


def _sample_batch(
    rng: random.Random, n: int, live: set[Edge]
) -> tuple[list[Edge], list[Edge]]:
    """One seeded mixed batch: fresh insertions + deletions of live edges."""
    ins: list[Edge] = []
    want = rng.randint(1, 8)
    attempts = 0
    while len(ins) < want and attempts < 50:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e in live or e in ins:
            continue
        ins.append(e)
    dels: list[Edge] = []
    if live:
        k = min(len(live), rng.randint(0, 4))
        dels = rng.sample(sorted(live), k)
    return ins, dels


def _corrupt_checkpoint(path: str, rng: random.Random) -> None:
    """Overwrite a slice in the middle of a checkpoint file."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(max(0, size // 2 - 8))
        fh.write(bytes(rng.getrandbits(8) for _ in range(16)))


def _truncate_tail(path: str, rng: random.Random) -> int:
    """Chop a seeded number of bytes off the journal tail; returns count."""
    size = os.path.getsize(path)
    chop = min(rng.randint(1, 120), max(0, size - 80))
    if chop > 0:
        with open(path, "r+b") as fh:
            fh.truncate(size - chop)
    return chop


def run_chaos(
    seed: int,
    journal_dir: str | os.PathLike[str],
    *,
    num_batches: int | None = None,
    backend: str = "object",
    record: bool = False,
    dump_dir: str | os.PathLike[str] | None = None,
) -> ChaosResult:
    """Execute one seeded fault schedule against a supervised service.

    Drives a mixed workload through a :class:`SupervisedCPLDS` (journaled
    into ``journal_dir``, which must be empty) while injecting the seed's
    fault schedule, then renders the oracle-equivalence verdict described
    in the module docstring.  Everything — workload, faults, recovery — is
    deterministic in ``seed``; ``backend`` picks the level-store layout
    without perturbing the schedule (rng consumption is backend-blind).

    With ``record=True`` the process-wide flight recorder is cleared and
    enabled for the duration of the run (its previous on/off state is
    restored afterwards): every distress transition, simulated restart and
    divergent verdict dumps the recorder tail into ``dump_dir`` (default:
    ``journal_dir``), and the dump basenames land in
    :attr:`ChaosResult.crash_dumps`.  Recording does not consume rng, so
    the fault schedule is identical with and without it.
    """
    if record:
        was_enabled = _REC.enabled
        _REC.clear()  # seq restarts at 0: dump names deterministic in seed
        _REC.enable()
        try:
            return _run_chaos_inner(
                seed, journal_dir,
                num_batches=num_batches, backend=backend, dump_dir=dump_dir,
            )
        finally:
            _REC.enabled = was_enabled
    return _run_chaos_inner(
        seed, journal_dir,
        num_batches=num_batches, backend=backend, dump_dir=dump_dir,
    )


def _run_chaos_inner(
    seed: int,
    journal_dir: str | os.PathLike[str],
    *,
    num_batches: int | None = None,
    backend: str = "object",
    dump_dir: str | os.PathLike[str] | None = None,
) -> ChaosResult:
    from repro import engines

    rng = random.Random(seed)
    n = rng.randint(16, 40)
    batches = num_batches if num_batches is not None else rng.randint(12, 24)
    max_retries = rng.randint(1, 2)
    directory = os.fspath(journal_dir)
    dump_root = os.fspath(dump_dir) if dump_dir is not None else directory

    hooks = ChaosHooks()

    def attach(impl: CPLDS) -> None:
        impl.plds.hooks = HookChain(impl.plds.hooks, hooks)

    service = SupervisedCPLDS(
        engines.create("cplds", n, backend=backend),
        journal_dir=directory,
        checkpoint_every=rng.randint(2, 6),
        keep_checkpoints=2,
        max_retries=max_retries,
        backoff_base=0.0,
        degraded_clearance=2,
        crash_dump_dir=dump_root,
    )
    attach(service.impl)
    service.post_restore = attach
    crash_dumps: list[str] = []

    # Pre-draw the restart schedule so rng consumption stays independent of
    # outcomes: up to two simulated process crashes at fixed batch indices.
    restart_at = set(rng.sample(range(1, batches), min(2, batches - 1)))

    live: set[Edge] = set()
    history: list[AppliedRecord] = []
    crashes_armed = poison_edges = restarts = 0
    truncated_bytes = checkpoints_corrupted = quarantined = 0
    epoch_pins_checked = epoch_pins_advanced = 0
    epoch_pin_mismatches: list[int] = []

    for i in range(batches):
        ins, dels = _sample_batch(rng, n, live)
        roll = rng.random()
        crash_moves = rng.randint(1, 6)
        crash_times = rng.randint(1, max_retries + 2)
        poison_pick = rng.randrange(len(ins)) if ins else 0
        if roll < 0.40:
            hooks.arm_crash(crash_moves, crash_times)
            crashes_armed += 1
            if _REC.enabled:
                _REC.record(_EV.CHAOS_FAULT, 1, crash_moves, crash_times)
        elif roll < 0.55 and ins:
            hooks.poison = {ins[poison_pick]}
            poison_edges += 1
            if _REC.enabled:
                _REC.record(_EV.CHAOS_FAULT, 2, poison_pick)

        pin = service.pin_epoch()
        pin_before = tuple(pin.coreness_many(range(n)).tolist())

        outcome = service.apply_batch(ins, dels)
        hooks.clear()
        # A pin held across the batch — including any mid-batch recovery —
        # must either read bit-identically or have been force-advanced
        # because recovery rolled its epoch back.
        pin_after = tuple(pin.coreness_many(range(n)).tolist())
        epoch_pins_checked += 1
        if pin.advanced:
            epoch_pins_advanced += pin.advanced
        elif pin_after != pin_before:
            epoch_pin_mismatches.append(i)
        pin.release()
        quarantined += len(outcome.dropped)
        history.extend(outcome.applied)
        for rec in outcome.applied:
            live.update(rec.insertions)
            live.difference_update(rec.deletions)

        if i in restart_at:
            # Simulated process crash: no graceful close, maybe a torn /
            # truncated journal tail, maybe a corrupted newest checkpoint.
            restarts += 1
            if _REC.enabled:
                _REC.record(_EV.CHAOS_FAULT, 3, i)
            crash_dumps.extend(service.crash_dumps)
            restart_pin = service.pin_epoch()
            restart_before = tuple(
                restart_pin.coreness_many(range(n)).tolist()
            )
            service._journal.close()
            jpath = os.path.join(directory, "journal.jsonl")
            if rng.random() < 0.6:
                chop = _truncate_tail(jpath, rng)
                truncated_bytes += chop
                if _REC.enabled and chop:
                    _REC.record(_EV.CHAOS_FAULT, 4, chop)
            ckpts = _list_checkpoints(directory)
            if ckpts and rng.random() < 0.5:
                _corrupt_checkpoint(ckpts[0][1], rng)
                checkpoints_corrupted += 1
                if _REC.enabled:
                    _REC.record(_EV.CHAOS_FAULT, 5, ckpts[0][0])
            service, report = SupervisedCPLDS.open(
                directory,
                checkpoint_every=rng.randint(2, 6),
                keep_checkpoints=2,
                max_retries=max_retries,
                backoff_base=0.0,
                degraded_clearance=2,
                crash_dump_dir=dump_root,
            )
            attach(service.impl)
            service.post_restore = attach
            # A restart is an induced failure with no health transition on
            # the (fresh) service: dump its recovery timeline explicitly.
            service.dump_flight_record(f"restart-{restarts}")
            # The pin taken before the process crash leases a snapshot of
            # the dead service's store; it must keep reading bit-identically
            # even though the replacement service runs a fresh store seeded
            # at the recovered prefix.
            epoch_pins_checked += 1
            restart_after = tuple(
                restart_pin.coreness_many(range(n)).tolist()
            )
            if restart_after != restart_before:
                epoch_pin_mismatches.append(i)
            restart_pin.release()
            # Durability contract: recovery lands on a consistent prefix.
            history = [r for r in history if r.seq <= report.recovered_through]
            live = set()
            for rec in history:
                live.update(rec.insertions)
                live.difference_update(rec.deletions)

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    oracle = engines.create(
        "cplds", n, params=service.impl.params, backend=backend
    )
    for rec in history:
        oracle.apply_batch(rec.insertions, rec.deletions)
    mismatches = tuple(
        v for v in range(n) if service.read(v) != oracle.read(v)
    )
    structure_ok = True
    try:
        service.impl.check_invariants()
    except Exception:
        structure_ok = False
    edges_ok = set(map(tuple, service.impl.graph.edges())) == live
    health_ok = service.health in (HealthState.HEALTHY, HealthState.DEGRADED)
    converged = (
        not mismatches
        and structure_ok
        and edges_ok
        and health_ok
        and not epoch_pin_mismatches
    )
    if not converged:
        # Divergent verdict: capture the timeline for the post-mortem.
        service.dump_flight_record("diverged")
    crash_dumps.extend(service.crash_dumps)
    service.close()
    return ChaosResult(
        seed=seed,
        backend=backend,
        num_vertices=n,
        batches_submitted=batches,
        crashes_armed=crashes_armed,
        poison_edges=poison_edges,
        restarts=restarts,
        truncated_bytes=truncated_bytes,
        checkpoints_corrupted=checkpoints_corrupted,
        quarantined=quarantined,
        recoveries=service.telemetry.recoveries,
        final_health=service.health.name,
        mismatches=mismatches,
        converged=converged,
        telemetry=service.telemetry.as_dict(),
        crash_dumps=tuple(crash_dumps),
        epoch_pins_checked=epoch_pins_checked,
        epoch_pin_mismatches=tuple(epoch_pin_mismatches),
        epoch_pins_advanced=epoch_pins_advanced,
    )


def run_sweep(
    seeds: Sequence[int],
    *,
    backend: str = "object",
    record: bool = False,
    dump_dir: str | os.PathLike[str] | None = None,
) -> list[ChaosResult]:
    """Run one schedule per seed (each in a throwaway directory).

    With ``record``/``dump_dir`` set, each seed's flight-recorder crash
    dumps land in ``<dump_dir>/seed-<NNNN>/``.
    """
    results = []
    for seed in seeds:
        seed_dump: str | None = None
        if dump_dir is not None:
            seed_dump = os.path.join(os.fspath(dump_dir), f"seed-{seed:04d}")
            os.makedirs(seed_dump, exist_ok=True)
        with tempfile.TemporaryDirectory(prefix=f"chaos-{seed}-") as d:
            results.append(
                run_chaos(seed, d, backend=backend, record=record,
                          dump_dir=seed_dump)
            )
    return results


def _verify_dumps(dump_dir: str, results: Sequence[ChaosResult]) -> list[str]:
    """Parse every crash dump a sweep wrote; return unparseable paths."""
    from repro.obs import flightrec

    bad = []
    for r in results:
        for name in r.crash_dumps:
            path = os.path.join(dump_dir, f"seed-{r.seed:04d}", name)
            try:
                flightrec.load(path)
            except Exception:
                bad.append(path)
    return bad


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: sweep N seeds and report; exit non-zero on any divergence."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of seeded schedules to run")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed of the sweep")
    parser.add_argument("--backend", default="object",
                        help="level-store backend (object | columnar | columnar-frontier)")
    parser.add_argument("--record", action="store_true",
                        help="enable the flight recorder; dump on every "
                             "induced failure")
    parser.add_argument("--dump-dir", default=None,
                        help="directory for flight-recorder crash dumps "
                             "(per-seed subdirectories; implies --record)")
    args = parser.parse_args(argv)
    record = args.record or args.dump_dir is not None
    if record and args.dump_dir is None:
        parser.error("--record requires --dump-dir (nowhere to keep dumps)")
    results = run_sweep(
        range(args.start, args.start + args.seeds),
        backend=args.backend,
        record=record,
        dump_dir=args.dump_dir,
    )
    failures = [r for r in results if not r.converged]
    total_faults = sum(
        r.crashes_armed + r.poison_edges + r.restarts for r in results
    )
    print(
        f"chaos sweep [{args.backend}]: {len(results)} schedules, "
        f"{total_faults} faults, "
        f"{sum(r.recoveries for r in results)} recoveries, "
        f"{sum(r.quarantined for r in results)} quarantined updates, "
        f"{sum(r.epoch_pins_checked for r in results)} epoch-pin probes "
        f"({sum(r.epoch_pins_advanced for r in results)} force-advanced), "
        f"{len(failures)} divergences"
    )
    for r in failures:
        print(f"  seed {r.seed}: mismatches={r.mismatches} "
              f"pin_mismatches={r.epoch_pin_mismatches} "
              f"health={r.final_health}")
    if record:
        total_dumps = sum(len(r.crash_dumps) for r in results)
        bad = _verify_dumps(args.dump_dir, results)
        print(f"flight-recorder dumps: {total_dumps} written, "
              f"{len(bad)} unparseable")
        for path in bad:
            print(f"  unparseable: {path}")
        if bad:
            return 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
