"""Deterministic chaos harness for the supervised service layer.

Everything here is a pure function of the seed: the workload (a long mixed
insert/delete stream), the fault schedule (mid-batch crashes à la
``DieAfterMoves``, always-failing *poison* edges, simulated process crashes
with journal tail truncation and checkpoint corruption), and therefore the
entire execution — the supervised engine is synchronous and the PLDS is
deterministic under the sequential executor.  That makes every chaos run a
reproducible regression test rather than a flaky stress test.

The verdict is an **oracle equivalence check**: the harness keeps its own
record of every sub-batch the service reports as committed (trimmed to the
recovered prefix after each simulated crash), replays that history into a
fresh-built CPLDS, and requires the supervised structure's coreness
estimate for *every* vertex to match the oracle's exactly — plus clean LDS
invariants, an edge set matching the harness's own bookkeeping, and a final
health state that never needed operator intervention.

Run one schedule with :func:`run_chaos`; sweep many with
``python -m repro.runtime.chaos --seeds 50``.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.cplds import CPLDS
from repro.lds.plds import Phase, UpdateHooks
from repro.runtime.inject import HookChain
from repro.runtime.supervisor import (
    AppliedRecord,
    HealthState,
    SupervisedCPLDS,
    _list_checkpoints,
)
from repro.types import Edge, canonical_edge


class ChaosHooks(UpdateHooks):
    """Seeded fault injector chained after a structure's own hooks.

    Two fault modes, driven by the harness between batches:

    * :meth:`arm_crash` — raise after the k-th vertex move, for the next
      ``times`` application attempts (``times`` ≤ the supervisor's retry
      budget exercises recovery+retry; larger values force a bisection);
    * :attr:`poison` — edges whose presence in a phase's applied sub-batch
      always raises, modelling updates that fail deterministically until
      the supervisor quarantines them.
    """

    def __init__(self) -> None:
        self.poison: set[Edge] = set()
        self._crash_after = 0
        self._crash_times = 0
        self._moves = 0
        self._counting = False

    def arm_crash(self, after_moves: int, times: int) -> None:
        """Fail the next ``times`` attempts after ``after_moves`` moves."""
        self._crash_after = after_moves
        self._crash_times = times

    def clear(self) -> None:
        """Disarm every fault (harness calls this between batches)."""
        self.poison.clear()
        self._crash_times = 0
        self._counting = False

    # -- hook callbacks --------------------------------------------------
    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        if self.poison and self.poison & {canonical_edge(u, v) for u, v in edges}:
            raise RuntimeError("chaos: poison update in batch")
        self._moves = 0
        self._counting = self._crash_times > 0

    def before_move(self, v: int, old: int, new: int, phase: Phase) -> None:
        if not self._counting:
            return
        self._moves += 1
        if self._moves > self._crash_after:
            self._crash_times -= 1
            self._counting = False
            raise RuntimeError("chaos: injected mid-batch crash")


@dataclass(frozen=True)
class ChaosResult:
    """Verdict and statistics of one seeded chaos schedule."""

    seed: int
    backend: str
    num_vertices: int
    batches_submitted: int
    crashes_armed: int
    poison_edges: int
    restarts: int
    truncated_bytes: int
    checkpoints_corrupted: int
    quarantined: int
    recoveries: int
    final_health: str
    #: Vertices whose final estimate differed from the oracle (empty = pass).
    mismatches: tuple[int, ...]
    #: True iff estimates matched, invariants held, the edge set matched the
    #: harness's bookkeeping, and the service never needed an operator.
    converged: bool
    telemetry: dict = field(default_factory=dict)


def _sample_batch(
    rng: random.Random, n: int, live: set[Edge]
) -> tuple[list[Edge], list[Edge]]:
    """One seeded mixed batch: fresh insertions + deletions of live edges."""
    ins: list[Edge] = []
    want = rng.randint(1, 8)
    attempts = 0
    while len(ins) < want and attempts < 50:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e in live or e in ins:
            continue
        ins.append(e)
    dels: list[Edge] = []
    if live:
        k = min(len(live), rng.randint(0, 4))
        dels = rng.sample(sorted(live), k)
    return ins, dels


def _corrupt_checkpoint(path: str, rng: random.Random) -> None:
    """Overwrite a slice in the middle of a checkpoint file."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(max(0, size // 2 - 8))
        fh.write(bytes(rng.getrandbits(8) for _ in range(16)))


def _truncate_tail(path: str, rng: random.Random) -> int:
    """Chop a seeded number of bytes off the journal tail; returns count."""
    size = os.path.getsize(path)
    chop = min(rng.randint(1, 120), max(0, size - 80))
    if chop > 0:
        with open(path, "r+b") as fh:
            fh.truncate(size - chop)
    return chop


def run_chaos(
    seed: int,
    journal_dir: str | os.PathLike[str],
    *,
    num_batches: int | None = None,
    backend: str = "object",
) -> ChaosResult:
    """Execute one seeded fault schedule against a supervised service.

    Drives a mixed workload through a :class:`SupervisedCPLDS` (journaled
    into ``journal_dir``, which must be empty) while injecting the seed's
    fault schedule, then renders the oracle-equivalence verdict described
    in the module docstring.  Everything — workload, faults, recovery — is
    deterministic in ``seed``; ``backend`` picks the level-store layout
    without perturbing the schedule (rng consumption is backend-blind).
    """
    from repro import engines

    rng = random.Random(seed)
    n = rng.randint(16, 40)
    batches = num_batches if num_batches is not None else rng.randint(12, 24)
    max_retries = rng.randint(1, 2)
    directory = os.fspath(journal_dir)

    hooks = ChaosHooks()

    def attach(impl: CPLDS) -> None:
        impl.plds.hooks = HookChain(impl.plds.hooks, hooks)

    service = SupervisedCPLDS(
        engines.create("cplds", n, backend=backend),
        journal_dir=directory,
        checkpoint_every=rng.randint(2, 6),
        keep_checkpoints=2,
        max_retries=max_retries,
        backoff_base=0.0,
        degraded_clearance=2,
    )
    attach(service.impl)
    service.post_restore = attach

    # Pre-draw the restart schedule so rng consumption stays independent of
    # outcomes: up to two simulated process crashes at fixed batch indices.
    restart_at = set(rng.sample(range(1, batches), min(2, batches - 1)))

    live: set[Edge] = set()
    history: list[AppliedRecord] = []
    crashes_armed = poison_edges = restarts = 0
    truncated_bytes = checkpoints_corrupted = quarantined = 0

    for i in range(batches):
        ins, dels = _sample_batch(rng, n, live)
        roll = rng.random()
        crash_moves = rng.randint(1, 6)
        crash_times = rng.randint(1, max_retries + 2)
        poison_pick = rng.randrange(len(ins)) if ins else 0
        if roll < 0.40:
            hooks.arm_crash(crash_moves, crash_times)
            crashes_armed += 1
        elif roll < 0.55 and ins:
            hooks.poison = {ins[poison_pick]}
            poison_edges += 1

        outcome = service.apply_batch(ins, dels)
        hooks.clear()
        quarantined += len(outcome.dropped)
        history.extend(outcome.applied)
        for rec in outcome.applied:
            live.update(rec.insertions)
            live.difference_update(rec.deletions)

        if i in restart_at:
            # Simulated process crash: no graceful close, maybe a torn /
            # truncated journal tail, maybe a corrupted newest checkpoint.
            restarts += 1
            service._journal.close()
            jpath = os.path.join(directory, "journal.jsonl")
            if rng.random() < 0.6:
                truncated_bytes += _truncate_tail(jpath, rng)
            ckpts = _list_checkpoints(directory)
            if ckpts and rng.random() < 0.5:
                _corrupt_checkpoint(ckpts[0][1], rng)
                checkpoints_corrupted += 1
            service, report = SupervisedCPLDS.open(
                directory,
                checkpoint_every=rng.randint(2, 6),
                keep_checkpoints=2,
                max_retries=max_retries,
                backoff_base=0.0,
                degraded_clearance=2,
            )
            attach(service.impl)
            service.post_restore = attach
            # Durability contract: recovery lands on a consistent prefix.
            history = [r for r in history if r.seq <= report.recovered_through]
            live = set()
            for rec in history:
                live.update(rec.insertions)
                live.difference_update(rec.deletions)

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    oracle = engines.create(
        "cplds", n, params=service.impl.params, backend=backend
    )
    for rec in history:
        oracle.apply_batch(rec.insertions, rec.deletions)
    mismatches = tuple(
        v for v in range(n) if service.read(v) != oracle.read(v)
    )
    structure_ok = True
    try:
        service.impl.check_invariants()
    except Exception:
        structure_ok = False
    edges_ok = set(map(tuple, service.impl.graph.edges())) == live
    health_ok = service.health in (HealthState.HEALTHY, HealthState.DEGRADED)
    service.close()
    return ChaosResult(
        seed=seed,
        backend=backend,
        num_vertices=n,
        batches_submitted=batches,
        crashes_armed=crashes_armed,
        poison_edges=poison_edges,
        restarts=restarts,
        truncated_bytes=truncated_bytes,
        checkpoints_corrupted=checkpoints_corrupted,
        quarantined=quarantined,
        recoveries=service.telemetry.recoveries,
        final_health=service.health.name,
        mismatches=mismatches,
        converged=(
            not mismatches and structure_ok and edges_ok and health_ok
        ),
        telemetry=service.telemetry.as_dict(),
    )


def run_sweep(
    seeds: Sequence[int], *, backend: str = "object"
) -> list[ChaosResult]:
    """Run one schedule per seed (each in a throwaway directory)."""
    results = []
    for seed in seeds:
        with tempfile.TemporaryDirectory(prefix=f"chaos-{seed}-") as d:
            results.append(run_chaos(seed, d, backend=backend))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: sweep N seeds and report; exit non-zero on any divergence."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of seeded schedules to run")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed of the sweep")
    parser.add_argument("--backend", default="object",
                        help="level-store backend (object | columnar | columnar-frontier)")
    args = parser.parse_args(argv)
    results = run_sweep(
        range(args.start, args.start + args.seeds), backend=args.backend
    )
    failures = [r for r in results if not r.converged]
    total_faults = sum(
        r.crashes_armed + r.poison_edges + r.restarts for r in results
    )
    print(
        f"chaos sweep [{args.backend}]: {len(results)} schedules, "
        f"{total_faults} faults, "
        f"{sum(r.recoveries for r in results)} recoveries, "
        f"{sum(r.quarantined for r in results)} quarantined updates, "
        f"{len(failures)} divergences"
    )
    for r in failures:
        print(f"  seed {r.seed}: mismatches={r.mismatches} "
              f"health={r.final_health}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
