"""The ``Executor`` abstraction behind the PLDS's per-level parallel rounds.

The PLDS processes each level as a *round*: a set of vertices that all move
"simultaneously".  Within a round the moves commute (they are applied to
disjoint vertices and the bookkeeping update rules are order-independent, see
:class:`repro.lds.bookkeeping.LevelState`), so the executor is free to run
them in any order or interleaving.  Three substrates implement the protocol:

* :class:`SequentialExecutor` — applies the round in submission order.
  The default and the reference semantics.
* :class:`ThreadedExecutor` — fans a round out over a thread pool.  Under the
  GIL this cannot yield speedup, but it exercises the code under real
  preemption and is useful for stress tests.
* :class:`repro.runtime.sim.SimExecutor` — charges virtual time for a round
  as ``ceil(len(round)/P) × cost`` on a simulated P-core machine; this is how
  the Fig 7 scalability experiment models core counts.

Executors also count rounds and items so benches can report span/work-style
statistics.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class RoundStats:
    """Work/span accounting across all rounds an executor has run."""

    rounds: int = 0
    items: int = 0
    max_round: int = 0
    #: Histogram-ish record of round sizes (kept small: just the sizes list
    #: when telemetry is enabled).
    sizes: list[int] = field(default_factory=list)
    record_sizes: bool = False

    def note(self, size: int) -> None:
        self.rounds += 1
        self.items += size
        if size > self.max_round:
            self.max_round = size
        if self.record_sizes:
            self.sizes.append(size)

    def reset(self) -> None:
        self.rounds = 0
        self.items = 0
        self.max_round = 0
        self.sizes.clear()


class Executor(Protocol):
    """Runs one parallel round of independent per-item work."""

    stats: RoundStats

    def run_round(self, fn: Callable[[T], None], items: Sequence[T]) -> None:
        """Apply ``fn`` to every item; returns when the whole round is done."""
        ...


class SequentialExecutor:
    """Reference executor: applies each round in submission order."""

    def __init__(self) -> None:
        self.stats = RoundStats()

    def run_round(self, fn: Callable[[T], None], items: Sequence[T]) -> None:
        self.stats.note(len(items))
        for item in items:
            fn(item)


class ThreadedExecutor:
    """Fans rounds out over ``num_threads`` OS threads (chunked).

    The round barrier (all items done before returning) mirrors the paper's
    synchronous update processes.  Note the GIL caveat in the module
    docstring: use this for preemption stress, not for speedup.
    """

    def __init__(self, num_threads: int = 4) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.stats = RoundStats()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-update"
        )

    def run_round(self, fn: Callable[[T], None], items: Sequence[T]) -> None:
        self.stats.note(len(items))
        if len(items) <= 1 or self.num_threads == 1:
            for item in items:
                fn(item)
            return
        chunk = max(1, len(items) // self.num_threads)
        chunks = [items[i : i + chunk] for i in range(0, len(items), chunk)]

        def run_chunk(part: Sequence[T]) -> None:
            for item in part:
                fn(item)

        futures = [self._pool.submit(run_chunk, part) for part in chunks]
        for fut in futures:
            fut.result()  # re-raise worker exceptions at the barrier

    def shutdown(self) -> None:
        """Release the pool's threads (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
