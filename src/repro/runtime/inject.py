"""Deterministic mid-batch read injection.

Real-thread executions interleave reads and updates nondeterministically; for
reproducible linearizability experiments (and CI-stable tests) this module
injects reads at the PLDS's *round boundaries* — the points between parallel
rounds inside a batch, where the structure is exactly in one of the
intermediate states a concurrent reader could observe.

Because injected reads run on the update thread itself, every interleaving is
a deterministic function of the workload and the injection policy.  Do not
inject into :class:`~repro.core.baselines.SyncReadsKCore` — its reads block
until batch end, which would self-deadlock on the update thread (that is,
after all, the latency problem the paper sets out to fix).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.lds.plds import Phase, UpdateHooks
from repro.types import Edge


class HookChain(UpdateHooks):
    """Fan one PLDS hook stream out to several hook objects, in order."""

    def __init__(self, *hooks: UpdateHooks) -> None:
        self.hooks = list(hooks)

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        for h in self.hooks:
            h.batch_begin(kind, edges)

    def before_move(self, v: int, old: int, new: int, phase: Phase) -> None:
        for h in self.hooks:
            h.before_move(v, old, new, phase)

    def round_boundary(self) -> None:
        for h in self.hooks:
            h.round_boundary()

    def batch_end(self) -> None:
        for h in self.hooks:
            h.batch_end()


class InjectionProbe(UpdateHooks):
    """Invoke a callback at every round boundary (and optionally at batch
    begin/end), tagged with the current phase."""

    def __init__(
        self,
        on_point: Callable[[str], None],
        *,
        at_begin: bool = False,
        at_end: bool = False,
    ) -> None:
        self.on_point = on_point
        self.at_begin = at_begin
        self.at_end = at_end
        self._phase: Phase = "insert"

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        self._phase = kind
        if self.at_begin:
            self.on_point(f"{kind}:begin")

    def round_boundary(self) -> None:
        self.on_point(f"{self._phase}:round")

    def batch_end(self) -> None:
        if self.at_end:
            self.on_point(f"{self._phase}:end")


class ProbeExecutor:
    """Executor wrapper that fires a callback around (and optionally inside)
    every parallel round.

    Wrapping the executor (rather than the hooks) reaches the rounds the
    hooks cannot see — in particular the three unmark rounds at batch end,
    whose partially-unmarked intermediate states are exactly where the
    root-first ordering earns its keep.
    """

    def __init__(
        self,
        inner,
        on_point: Callable[[str], None],
        *,
        per_item: bool = False,
    ) -> None:
        self.inner = inner
        self.on_point = on_point
        self.per_item = per_item

    @property
    def stats(self):
        return self.inner.stats

    def run_round(self, fn, items) -> None:
        if not self.per_item:
            self.inner.run_round(fn, items)
            self.on_point("round")
            return

        def probed(item):
            fn(item)
            self.on_point("item")

        self.inner.run_round(probed, items)
        self.on_point("round")


def attach_probe(impl, probe: UpdateHooks) -> None:
    """Chain ``probe`` after ``impl``'s existing PLDS hooks.

    ``impl`` is anything owning a ``plds`` attribute (CPLDS, NonSyncKCore,
    NaiveMarkedKCore).  The probe runs *after* the implementation's own hooks
    so that it observes each round's fully published state.
    """
    plds = impl.plds
    plds.hooks = HookChain(plds.hooks, probe)
