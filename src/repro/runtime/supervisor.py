"""Self-healing service layer: supervised recovery over the CPLDS.

The paper's model (§2) excludes process failures; a production service
cannot.  This module wraps the structure (and the batch coordinator) in a
supervisor implementing the recovery contract documented in
``docs/robustness.md``:

* every batch is **journaled before it is applied** (write-ahead, see
  :class:`~repro.persist.BatchJournal`) and committed afterwards, with
  periodic quiescent checkpoints, so a consistent structure can always be
  reconstructed as *newest valid checkpoint + committed journal suffix* —
  batch by batch, reproducing the exact level history;
* a batch that dies mid-flight triggers **supervised recovery**: restore a
  consistent pre-batch structure, retry with exponential backoff, and — if
  the batch fails deterministically — **bisect** it to isolate the poison
  updates, quarantining only those (their tickets fail with
  :class:`~repro.errors.PoisonUpdateError`; the rest of the batch commits);
* while recovery is in flight, **reads never block and never fail**: they
  are served from the newest epoch retained by the multi-version read tier
  (:mod:`repro.reads` — the same store that serves bulk epoch reads),
  tagged ``stale``, preserving the paper's asynchronous-reads guarantee
  across faults;
* the service's condition is surfaced as a **health state machine**
  (HEALTHY → RECOVERING → DEGRADED → FAILED) whose transitions and counters
  live in :class:`~repro.harness.telemetry.ServiceTelemetry`.

:class:`SupervisedCPLDS` is the synchronous engine (single update thread —
deterministic, which the chaos harness in :mod:`repro.runtime.chaos` relies
on); :class:`SupervisedCoordinator` threads it under the multi-producer
:class:`~repro.runtime.coordinator.BatchCoordinator` front end.
"""

from __future__ import annotations

import enum
import os
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.cplds import CPLDS
from repro.errors import (
    CheckpointCorruptError,
    PersistError,
    PoisonUpdateError,
    ServiceFailedError,
)
from repro.harness.telemetry import ServiceTelemetry
from repro.lds.params import LDSParams
from repro.obs import REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.obs.staleness import (
    RECOVERY_SECONDS as _RECOVERY_SECONDS,
    SNAPSHOT_AGE as _SNAPSHOT_AGE,
)
from repro.reads import EpochSnapshotStore
from repro.runtime.coordinator import BatchCoordinator
from repro.types import Edge, Vertex, canonical_edge

#: Journal filename inside a service's persistence directory.
JOURNAL_FILENAME = "journal.jsonl"

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.npz$")


class HealthState(enum.Enum):
    """The supervised service's health state machine.

    ``HEALTHY``
        Normal operation; reads are live, batches apply directly.
    ``RECOVERING``
        A batch died and the supervisor is restoring/retrying; reads are
        served from the newest retained epoch, tagged stale.
    ``DEGRADED``
        The structure is consistent again but the service recently dropped
        updates (poison quarantine); clears back to HEALTHY after a run of
        clean batches.
    ``FAILED``
        Recovery was exhausted (e.g. the journal is corrupt mid-stream);
        terminal.  Submissions raise
        :class:`~repro.errors.ServiceFailedError`; reads keep serving the
        newest retained epoch.
    """

    HEALTHY = "healthy"
    RECOVERING = "recovering"
    DEGRADED = "degraded"
    FAILED = "failed"


#: Stable integer encoding of the health states for flight-recorder
#: HEALTH events (``a`` = from-state, ``b`` = to-state).
HEALTH_ORDINALS = {
    HealthState.HEALTHY: 0,
    HealthState.RECOVERING: 1,
    HealthState.DEGRADED: 2,
    HealthState.FAILED: 3,
}


_ALLOWED_TRANSITIONS = {
    HealthState.HEALTHY: {HealthState.RECOVERING, HealthState.DEGRADED,
                          HealthState.FAILED},
    HealthState.RECOVERING: {HealthState.HEALTHY, HealthState.DEGRADED,
                             HealthState.FAILED},
    HealthState.DEGRADED: {HealthState.HEALTHY, HealthState.RECOVERING,
                           HealthState.FAILED},
    HealthState.FAILED: set(),
}


@dataclass(frozen=True)
class ServiceRead:
    """One read served by the supervised layer.

    ``stale`` is True when the estimate came from the newest epoch
    retained by the read tier (recovery in flight) rather than the live
    structure; ``batch`` is the batch epoch the estimate reflects.
    """

    estimate: float
    stale: bool
    health: HealthState
    batch: int


@dataclass(frozen=True)
class AppliedRecord:
    """One successfully applied (and journaled) sub-batch."""

    seq: int
    insertions: tuple[Edge, ...]
    deletions: tuple[Edge, ...]


@dataclass(frozen=True)
class DroppedUpdate:
    """One update the supervisor gave up on, with its typed error."""

    op: str
    edge: Edge
    error: Exception


@dataclass
class BatchOutcome:
    """What happened to one submitted batch after supervision.

    ``applied`` lists the committed sub-batches in application order (one
    entry for an untroubled batch; several after a bisection); ``dropped``
    lists quarantined/failed updates with their typed errors.  The oracle
    check in the chaos harness replays exactly the ``applied`` records.
    """

    applied: list[AppliedRecord] = field(default_factory=list)
    dropped: list[DroppedUpdate] = field(default_factory=list)

    @property
    def fully_applied(self) -> bool:
        """True when no update in the batch was dropped."""
        return not self.dropped


@dataclass(frozen=True)
class RecoveryReport:
    """How a structure was reconstructed from a persistence directory."""

    #: Highest journal sequence number reflected in the restored structure.
    recovered_through: int
    #: Sequence number of the checkpoint used (0 = genesis replay).
    checkpoint_seq: int
    #: Filename of the checkpoint used, or None for a genesis replay.
    checkpoint_file: Optional[str]
    #: Number of journal records replayed on top of the checkpoint.
    replayed: int
    #: Whether the journal scan dropped a torn final record.
    torn_tail: bool
    #: Checkpoints that failed validation and were skipped.
    checkpoints_rejected: int


def _cplds_from_genesis(genesis: dict) -> CPLDS:
    """Fresh structure matching a journal's genesis record.

    The genesis ``backend`` field is additive: journals written before the
    level-store seam lack it and restore onto the object backend.
    """
    from repro import engines

    n = int(genesis["num_vertices"])
    params = LDSParams(
        n,
        delta=float(genesis["delta"]),
        lam=float(genesis["lam"]),
        levels_per_group=int(genesis["group_height"]),
    )
    return engines.create(
        "cplds", n, params=params,
        backend=str(genesis.get("backend", "object")),
    )


def _list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """(seq, path) of every checkpoint file in ``directory``, newest first."""
    out = []
    for name in os.listdir(directory):
        m = _CHECKPOINT_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    out.sort(reverse=True)
    return out


def restore_from_dir(directory: str | os.PathLike[str]) -> tuple[CPLDS, RecoveryReport]:
    """Reconstruct a consistent CPLDS from a persistence directory.

    The recovery contract: scan the journal (raising
    :class:`~repro.errors.JournalCorruptError` for non-tail corruption),
    restore the newest checkpoint that passes validation — falling back to
    older ones, then to the journal's own embedded snapshot (written by
    compaction on a previous reopen), and ultimately to a from-genesis
    replay — then replay every committed batch record newer than the base,
    in sequence order.  The result reflects a consistent *prefix* of the
    journaled history.

    Bases below the journal's *floor* (the newest embedded snapshot's
    sequence number) are never used: history at or below the floor was
    compacted away, so replaying from an older base could silently skip
    batches.  If nothing at or above the floor is restorable, recovery
    raises rather than diverge.
    """
    from repro.persist import BatchJournal, cplds_from_snapshot, load_cplds

    directory = os.fspath(directory)
    contents = BatchJournal.scan(os.path.join(directory, JOURNAL_FILENAME))
    records = contents.committed_batches()
    floor = contents.floor()

    base: CPLDS | None = None
    base_seq = 0
    used_file: str | None = None
    rejected = 0
    for seq, path in _list_checkpoints(directory):
        if seq < floor:
            break  # stale: predates the compaction floor
        try:
            base = load_cplds(path)
        except (CheckpointCorruptError, PersistError):
            rejected += 1
            continue
        base_seq = seq
        used_file = os.path.basename(path)
        break
    if base is None and floor > 0:
        base = cplds_from_snapshot(contents.genesis, contents.latest_snapshot())
        base_seq = floor
    if base is None:
        base = _cplds_from_genesis(contents.genesis)

    replayed = 0
    last = base_seq
    for rec in records:
        if rec.seq <= base_seq:
            continue
        base.apply_batch(rec.insertions, rec.deletions)
        replayed += 1
        last = rec.seq
    return base, RecoveryReport(
        recovered_through=last,
        checkpoint_seq=base_seq,
        checkpoint_file=used_file,
        replayed=replayed,
        torn_tail=contents.torn_tail,
        checkpoints_rejected=rejected,
    )


class SupervisedCPLDS:
    """Fault-tolerant, journaled wrapper around one CPLDS.

    Single-writer: one thread (or one synchronous caller) drives
    :meth:`apply_batch`; any number of threads may call :meth:`read` /
    :meth:`read_tagged` concurrently.  See the module docstring for the
    recovery contract.

    Parameters
    ----------
    impl:
        The structure to supervise.  Must be quiescent and consistent.
    journal_dir:
        Directory for the write-ahead journal and checkpoints.  ``None``
        disables persistence: recovery then restores the exact pre-batch
        state captured in memory just before the attempt
        (:meth:`CPLDS.snapshot_state` / :meth:`CPLDS.restore_state`) — no
        durability across process death, but in-process faults lose
        nothing.  The directory must not already contain a journal;
        re-opening an existing one is :meth:`SupervisedCPLDS.open`'s job.
    checkpoint_every:
        Write a quiescent checkpoint after this many committed batches.
    keep_checkpoints:
        Retain this many newest checkpoint files.
    max_retries:
        Full-batch retries (after recovery) before bisecting.
    backoff_base:
        First retry delay in seconds; doubles per retry.  The ``sleep``
        callable is injectable so tests and the chaos harness stay fast and
        deterministic.
    degraded_clearance:
        Clean batches required to clear DEGRADED back to HEALTHY.
    snapshot_every:
        Publish cadence of the epoch-snapshot read tier: the attached
        :class:`~repro.reads.EpochSnapshotStore` accepts every epoch
        divisible by this (1 = every batch; larger trades read-tier
        freshness for an O(n)-copy saving on huge graphs).  Degraded
        reads are served from the newest epoch the cadence retained.
    epoch_window:
        How many epoch snapshots the read tier retains for pinned bulk
        reads (see :mod:`repro.reads`).
    epoch_max_staleness:
        Bounded-staleness budget forwarded to the epoch store: pins
        falling more than this many epochs behind are force-advanced
        (``None`` disables the budget).
    """

    def __init__(
        self,
        impl: CPLDS,
        *,
        journal_dir: str | os.PathLike[str] | None = None,
        checkpoint_every: int = 64,
        keep_checkpoints: int = 2,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        degraded_clearance: int = 3,
        snapshot_every: int = 1,
        epoch_window: int = 8,
        epoch_max_staleness: int | None = None,
        sync: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: ServiceTelemetry | None = None,
        crash_dump_dir: str | os.PathLike[str] | None = None,
    ) -> None:
        from repro.persist import BatchJournal, seed_epoch_store

        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.impl = impl
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.degraded_clearance = degraded_clearance
        self.snapshot_every = snapshot_every
        self._sleep = sleep
        self.telemetry = telemetry if telemetry is not None else ServiceTelemetry()
        self.health = HealthState.HEALTHY
        #: Called with the (new) structure after every recovery swap —
        #: re-attach instrumentation/fault hooks here (the chaos harness
        #: does).
        self.post_restore: Callable[[CPLDS], None] | None = None
        self.failure_cause: BaseException | None = None
        #: Where flight-recorder crash dumps land on RECOVERING/FAILED
        #: transitions (defaults to the journal directory when journaling;
        #: None + no journal = no dumps).
        self.crash_dump_dir: str | None = (
            os.fspath(crash_dump_dir) if crash_dump_dir is not None else None
        )
        #: Basenames of every crash dump this service instance wrote.
        self.crash_dumps: list[str] = []

        self._journal: "BatchJournal | None" = None
        self._journal_dir: str | None = None
        self._next_seq = 1  # used only when journaling is disabled
        self._last_seq = 0
        self._committed_since_checkpoint = 0
        self._degraded_countdown = 0
        #: The multi-version read tier.  Seeded with the adopted structure's
        #: current state (so degraded reads work from batch zero), published
        #: to by the engine at every accepted ``batch_end``, and re-seeded
        #: after every recovery (:func:`repro.persist.seed_epoch_store`).
        self.epoch_store = EpochSnapshotStore(
            window=epoch_window,
            max_staleness=epoch_max_staleness,
            publish_every=snapshot_every,
        )
        seed_epoch_store(impl, self.epoch_store)

        if journal_dir is not None:
            directory = os.fspath(journal_dir)
            os.makedirs(directory, exist_ok=True)
            self._journal_dir = directory
            if self.crash_dump_dir is None:
                self.crash_dump_dir = directory
            self._journal = BatchJournal.create(
                os.path.join(directory, JOURNAL_FILENAME),
                num_vertices=impl.graph.num_vertices,
                params=impl.params,
                backend=impl.backend,
                sync=sync,
            )
            self.telemetry.journal_records += 1
            if impl.graph.num_edges or impl.batch_number:
                # Non-empty adoption: snapshot the starting state so a
                # from-genesis replay is never needed to reach it.
                self._write_checkpoint()

    # ------------------------------------------------------------------
    # Re-opening after a crash
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        journal_dir: str | os.PathLike[str],
        *,
        sync: bool = False,
        **options,
    ) -> tuple["SupervisedCPLDS", RecoveryReport]:
        """Recover a service from its persistence directory after a crash.

        Returns the service plus a :class:`RecoveryReport` saying exactly
        which prefix of the journaled history the restored structure
        reflects.  Accepts the same tuning keyword arguments as the
        constructor (``checkpoint_every``, ``max_retries``, ...).

        The journal is *compacted* on reopen (rewritten as genesis + an
        embedded snapshot of the recovered state): truncation may have
        removed batch records that the recovery checkpoint covered, and
        appending after such a hole would leave a journal that can never
        again reproduce the live state by replay.  After compaction the
        journal alone restores to ``recovered_through`` even if every
        checkpoint file is later lost.
        """
        from repro.persist import BatchJournal

        directory = os.fspath(journal_dir)
        impl, report = restore_from_dir(directory)
        service = cls(impl, journal_dir=None, sync=sync, **options)
        service._journal_dir = directory
        if service.crash_dump_dir is None:
            service.crash_dump_dir = directory
        service._journal = BatchJournal.compact(
            os.path.join(directory, JOURNAL_FILENAME),
            cplds=impl,
            seq=report.recovered_through,
            sync=sync,
        )
        service.telemetry.journal_records += 2  # genesis + snapshot
        service._last_seq = report.recovered_through
        service.telemetry.recoveries += 1
        service.telemetry.checkpoints_rejected += report.checkpoints_rejected
        return service, report

    # ------------------------------------------------------------------
    # Reads (any thread; never block, never raise)
    # ------------------------------------------------------------------
    def read(self, v: Vertex) -> float:
        """Coreness estimate of ``v`` — live when healthy, stale-snapshot
        while recovery is in flight (use :meth:`read_tagged` to see which)."""
        return self.read_tagged(v).estimate

    def read_tagged(self, v: Vertex) -> ServiceRead:
        """Read with degradation metadata (stale flag, health, batch)."""
        health = self.health
        if health in (HealthState.RECOVERING, HealthState.FAILED):
            return self._stale_read(v, health)
        impl = self.impl
        try:
            return ServiceRead(impl.read(v), False, health, impl.batch_number)
        except Exception:
            # Wounded mid-transition (failure racing this read): degrade.
            return self._stale_read(v, self.health)

    def _stale_read(self, v: Vertex, health: HealthState) -> ServiceRead:
        """Serve ``v`` from the newest retained epoch, accounting its age
        (live batch number minus the served epoch) in epochs."""
        snap = self.epoch_store.newest()
        assert snap is not None  # seeded at construction, never emptied
        self.telemetry.stale_reads += 1
        age = max(0, self.impl.batch_number - snap.epoch)
        self.telemetry.note_stale_read_age(age)
        if _OBS.enabled:
            _SNAPSHOT_AGE.observe(age)
        if _REC.enabled:
            _REC.record(_EV.STALE_READ, v, age, snap.epoch)
        return ServiceRead(snap.estimate(v), True, health, snap.epoch)

    def pin_epoch(self, epoch: int | None = None):
        """Pin an epoch in the read tier for bulk reads (newest by default).

        See :meth:`repro.reads.EpochSnapshotStore.pin`; reads through the
        returned pin never touch the live structure, so they stay
        consistent through recoveries and health transitions.
        """
        return self.epoch_store.pin(epoch)

    # ------------------------------------------------------------------
    # Updates (single supervised writer)
    # ------------------------------------------------------------------
    def apply_batch(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> BatchOutcome:
        """Apply one mixed batch under supervision.

        Never raises for *batch* failures — those are absorbed by recovery,
        retry, and quarantine, and reported in the returned
        :class:`BatchOutcome`.  Raises
        :class:`~repro.errors.ServiceFailedError` only when the service is
        already FAILED.
        """
        if self.health is HealthState.FAILED:
            raise ServiceFailedError(
                "service is FAILED; submissions are rejected"
            ) from self.failure_cause
        ins, dels = self._normalize(insertions, deletions)
        outcome = BatchOutcome()
        self._apply_ops(ins, dels, outcome)
        if self.health is not HealthState.FAILED:
            if outcome.dropped:
                self._set_health(HealthState.DEGRADED)
                self._degraded_countdown = self.degraded_clearance
            elif self.health is HealthState.DEGRADED and outcome.applied:
                self._degraded_countdown -= 1
                if self._degraded_countdown <= 0:
                    self._set_health(HealthState.HEALTHY)
            if (
                self._journal is not None
                and self._committed_since_checkpoint >= self.checkpoint_every
            ):
                self._write_checkpoint()
        return outcome

    def close(self) -> None:
        """Checkpoint (when healthy) and close the journal (idempotent)."""
        if self._journal is not None:
            if self.health in (HealthState.HEALTHY, HealthState.DEGRADED):
                if self._committed_since_checkpoint:
                    self._write_checkpoint()
            self._journal.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(
        insertions: Iterable[Edge], deletions: Iterable[Edge]
    ) -> tuple[list[Edge], list[Edge]]:
        """Canonicalise and dedupe; an edge in both sub-batches nets to its
        deletion (``apply_batch`` treats it as insert-then-delete)."""
        ins_order: list[Edge] = []
        seen: set[Edge] = set()
        for u, v in insertions:
            e = canonical_edge(u, v)
            if e not in seen:
                seen.add(e)
                ins_order.append(e)
        del_order: list[Edge] = []
        dseen: set[Edge] = set()
        for u, v in deletions:
            e = canonical_edge(u, v)
            if e not in dseen:
                dseen.add(e)
                del_order.append(e)
        ins_final = [e for e in ins_order if e not in dseen]
        return ins_final, del_order

    def _apply_ops(
        self, ins: list[Edge], dels: list[Edge], outcome: BatchOutcome
    ) -> None:
        """Apply one (sub-)batch with journaling, retry, and bisection."""
        if not ins and not dels:
            return
        if self.health is HealthState.FAILED:
            self._drop_all(ins, dels, outcome)
            return

        pre_state = None
        if self._journal is None:
            # Persistence-free recovery restores the exact pre-batch state
            # captured here (cheap array copies on the columnar backend).
            pre_state = self.impl.snapshot_state()

        try:
            seq = self._append_journal(ins, dels)
        except ServiceFailedError:
            self._drop_all(ins, dels, outcome)
            return

        attempts = 0
        while True:
            try:
                self.impl.apply_batch(ins, dels)
            except Exception:
                self.telemetry.batch_failures += 1
                if not self._recover(pre_state):
                    self._drop_all(ins, dels, outcome)
                    return
                if attempts < self.max_retries:
                    attempts += 1
                    self.telemetry.retries += 1
                    delay = self.backoff_base * (2 ** (attempts - 1))
                    if delay > 0:
                        self._sleep(delay)
                    continue
                break  # deterministic failure: bisect
            else:
                try:
                    self._commit_journal(seq)
                except ServiceFailedError:
                    self._drop_all(ins, dels, outcome)
                    return
                self._after_commit(seq, ins, dels, outcome)
                return

        ops = [("+", e) for e in ins] + [("-", e) for e in dels]
        if len(ops) == 1:
            op, edge = ops[0]
            error = PoisonUpdateError(
                f"update {op}{edge} quarantined after "
                f"{attempts + 1} failed attempts"
            )
            outcome.dropped.append(DroppedUpdate(op, edge, error))
            self.telemetry.poison_updates += 1
            return
        self.telemetry.bisections += 1
        mid = len(ops) // 2
        for half in (ops[:mid], ops[mid:]):
            self._apply_ops(
                [e for op, e in half if op == "+"],
                [e for op, e in half if op == "-"],
                outcome,
            )

    def _append_journal(self, ins: list[Edge], dels: list[Edge]) -> int:
        if self._journal is None:
            seq = self._next_seq
            self._next_seq += 1
            return seq
        try:
            seq = self._journal.append_batch(ins, dels)
        except Exception as exc:
            self._fail(exc)
            raise ServiceFailedError("journal append failed") from exc
        self.telemetry.journal_records += 1
        return seq

    def _commit_journal(self, seq: int) -> None:
        if self._journal is None:
            return
        try:
            self._journal.commit(seq)
        except Exception as exc:
            self._fail(exc)
            raise ServiceFailedError("journal commit failed") from exc
        self.telemetry.journal_records += 1

    def _after_commit(
        self, seq: int, ins: list[Edge], dels: list[Edge], outcome: BatchOutcome
    ) -> None:
        outcome.applied.append(AppliedRecord(seq, tuple(ins), tuple(dels)))
        self._last_seq = seq
        self.telemetry.batches_applied += 1
        self._committed_since_checkpoint += 1
        if self.health is HealthState.RECOVERING:
            self._set_health(HealthState.HEALTHY)

    def _drop_all(
        self, ins: list[Edge], dels: list[Edge], outcome: BatchOutcome
    ) -> None:
        error = ServiceFailedError("service failed; update not applied")
        error.__cause__ = self.failure_cause
        for e in ins:
            outcome.dropped.append(DroppedUpdate("+", e, error))
        for e in dels:
            outcome.dropped.append(DroppedUpdate("-", e, error))

    def _recover(self, pre_state) -> bool:
        """Restore a consistent pre-batch structure; False = now FAILED."""
        started = time.perf_counter()
        with _OBS.span(
            "supervisor.recover", journaled=self._journal is not None
        ) as sp:
            self._set_health(HealthState.RECOVERING)
            self.telemetry.recoveries += 1
            replayed = checkpoint_seq = 0
            try:
                if self._journal is not None:
                    assert self._journal_dir is not None
                    impl, report = restore_from_dir(self._journal_dir)
                    replayed = report.replayed
                    checkpoint_seq = report.checkpoint_seq
                    sp.set(
                        replayed=report.replayed,
                        checkpoint_seq=report.checkpoint_seq,
                    )
                else:
                    # Persistence-free mode: exact in-place restore of the
                    # state snapshotted just before the failed attempt.
                    impl = self.impl
                    impl.restore_state(pre_state)
            except Exception as exc:
                self._fail(exc)
                sp.set(failed=True)
                if _REC.enabled:
                    _REC.record(_EV.RECOVERY, 0, replayed, checkpoint_seq)
                return False
            self.impl = impl
            if self.post_restore is not None:
                self.post_restore(impl)
            # The restored structure is consistent: re-anchor the read tier
            # at the recovered epoch — rolled-back epochs are dropped, and
            # the (possibly fresh) structure publishes into the same store
            # (readers keep the stale tag until a batch commits again).
            from repro.persist import seed_epoch_store

            seed_epoch_store(impl, self.epoch_store)
            if _OBS.enabled:
                _RECOVERY_SECONDS.observe(time.perf_counter() - started)
            if _REC.enabled:
                _REC.record(_EV.RECOVERY, 1, replayed, checkpoint_seq)
            return True

    def _fail(self, cause: BaseException) -> None:
        self.failure_cause = cause
        if self.health is not HealthState.FAILED:
            self._set_health(HealthState.FAILED)

    def _set_health(self, new: HealthState) -> None:
        old = self.health
        if new is old:
            return
        if new not in _ALLOWED_TRANSITIONS[old]:  # pragma: no cover - guard
            raise AssertionError(f"illegal health transition {old} -> {new}")
        self.health = new
        self.telemetry.record_transition(old.name, new.name)
        if _REC.enabled:
            _REC.record(_EV.HEALTH, HEALTH_ORDINALS[old], HEALTH_ORDINALS[new])
        if new in (HealthState.RECOVERING, HealthState.FAILED):
            self.dump_flight_record(new.value)

    def dump_flight_record(self, tag: str) -> Optional[str]:
        """Dump the flight recorder's tail for post-mortem analysis.

        Called automatically on every RECOVERING/FAILED transition; callable
        explicitly (the chaos harness dumps after simulated restarts).  The
        filename embeds the recorder's lifetime event count, so successive
        dumps never collide and deterministic replays produce deterministic
        names.  Never raises — a failed dump must not worsen a failure.
        """
        if not _REC.enabled or self.crash_dump_dir is None:
            return None
        name = f"flightrec-{_REC.total:08d}-{tag}.jsonl"
        path = os.path.join(self.crash_dump_dir, name)
        try:
            os.makedirs(self.crash_dump_dir, exist_ok=True)
            _REC.dump(path)
        except OSError:  # pragma: no cover - dump failure must stay benign
            return None
        self.crash_dumps.append(name)
        return path

    def _write_checkpoint(self) -> None:
        from repro.persist import save_cplds

        assert self._journal is not None and self._journal_dir is not None
        name = f"checkpoint-{self._last_seq:08d}.npz"
        path = os.path.join(self._journal_dir, name)
        try:
            with _OBS.span("supervisor.checkpoint", seq=self._last_seq):
                save_cplds(self.impl, path)
        except Exception:
            # A rejected checkpoint is not fatal: recovery falls back to an
            # older one (or a genesis replay).  Leave no partial file.
            self.telemetry.checkpoints_rejected += 1
            if os.path.exists(path):
                os.unlink(path)
            return
        self._journal.note_checkpoint(self._last_seq, name)
        self.telemetry.journal_records += 1
        self.telemetry.checkpoints_written += 1
        if _REC.enabled:
            _REC.record(_EV.CHECKPOINT, self._last_seq)
        self._committed_since_checkpoint = 0
        for _seq, old in _list_checkpoints(self._journal_dir)[self.keep_checkpoints:]:
            os.unlink(old)


class SupervisedCoordinator(BatchCoordinator):
    """Multi-producer coordinator with supervised, journaled application.

    Drop-in for :class:`~repro.runtime.coordinator.BatchCoordinator`, but a
    mid-batch failure no longer kills the update thread: the batch is
    recovered, retried, and — if deterministically poisonous — bisected so
    that only the offending updates' tickets fail (with
    :class:`~repro.errors.PoisonUpdateError`); everything else commits.
    Reads served through :meth:`read` / :meth:`read_tagged` degrade to the
    newest retained epoch while recovery is in flight instead of ever
    blocking or raising; :meth:`~repro.runtime.coordinator.
    BatchCoordinator.pin_epoch` serves bulk reads from the service's own
    epoch store.

    Supervision parameters (``journal_dir``, ``checkpoint_every``,
    ``max_retries``, ...) are forwarded to :class:`SupervisedCPLDS`;
    batching parameters (``max_batch``, ``max_delay``, ``queue_capacity``)
    to the base coordinator.
    """

    def __init__(
        self,
        impl: CPLDS,
        *,
        max_batch: int = 1024,
        max_delay: float = 0.01,
        queue_capacity: int = 65536,
        service: SupervisedCPLDS | None = None,
        **supervision,
    ) -> None:
        if service is not None:
            if supervision:
                raise ValueError(
                    "pass either a pre-built service or supervision options"
                )
            if service.impl is not impl:
                raise ValueError("service does not supervise this impl")
            self.service = service
        else:
            self.service = SupervisedCPLDS(impl, **supervision)
        super().__init__(
            impl,
            max_batch=max_batch,
            max_delay=max_delay,
            queue_capacity=queue_capacity,
        )

    # The service owns (and may swap) the structure during recovery; the
    # coordinator always sees the current one.
    @property
    def impl(self) -> CPLDS:
        """The currently supervised structure (post-recovery swaps seen)."""
        return self.service.impl

    @impl.setter
    def impl(self, value: CPLDS) -> None:
        if value is not self.service.impl:
            raise ValueError("the supervised service owns the structure")

    @property
    def health(self) -> HealthState:
        """Current health state of the supervised service."""
        return self.service.health

    @property
    def telemetry(self) -> ServiceTelemetry:
        """The service's operational counters and transition log."""
        return self.service.telemetry

    def read(self, v: Vertex) -> float:
        """Degradation-aware read (stale snapshot while recovering)."""
        return self.service.read(v)

    def read_tagged(self, v: Vertex) -> ServiceRead:
        """Read with degradation metadata (stale flag, health, batch)."""
        return self.service.read_tagged(v)

    def _check_accepting(self) -> None:
        super()._check_accepting()
        if self.service.health is HealthState.FAILED:
            raise ServiceFailedError(
                "service is FAILED; submissions are rejected"
            ) from self.service.failure_cause

    def _apply_edges(self, inserts, deletes):
        try:
            outcome = self.service.apply_batch(inserts, deletes)
        except ServiceFailedError as exc:
            return {e: exc for e in (*inserts, *deletes)}
        return {d.edge: d.error for d in outcome.dropped}

    def close(self, timeout: float = 30.0) -> None:
        """Close the coordinator, then checkpoint and close the journal."""
        try:
            super().close(timeout)
        finally:
            self.service.close()
