"""Virtual-time machine: deterministic scalability simulation (Fig 7).

The machine executes a real batch stream against a real implementation (so
every level change and descriptor is genuine), while *time* is virtual: an
instrumented executor and hook ledger count the parallel rounds each batch
performs, and :class:`~repro.runtime.simcost.BatchLedger` converts the counts
into a duration on a ``W``-core modeled machine.  Reader processes run on
their own modeled cores (the paper pins each thread to its own core) at the
per-read cost of their implementation kind.

This reproduces the Fig 7 quantities:

* **write throughput** — edges applied per virtual second as ``W`` grows,
  with the CPLDS paying the marking overhead on top of NonSync's update path
  and SyncReads additionally folding read execution into its denominator;
* **read throughput** — reads per virtual second as the reader count grows,
  with the CPLDS paying the descriptor-check overhead per read and SyncReads
  capped by batch duration (reads only execute at batch boundaries).

Everything is exactly reproducible: no wall clock is consulted anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lds.plds import Phase, UpdateHooks
from repro.runtime.executor import SequentialExecutor
from repro.runtime.inject import HookChain
from repro.runtime.simcost import BatchLedger, CostModel
from repro.types import Edge
from repro.workloads.batches import Batch, BatchStream


class _LedgerExecutor:
    """Executor wrapper crediting every parallel round to the ledger."""

    def __init__(self, inner, session: "SimSession") -> None:
        self.inner = inner
        self.session = session

    @property
    def stats(self):
        return self.inner.stats

    def run_round(self, fn, items) -> None:
        ledger = self.session.current_ledger
        if ledger is not None and len(items):
            ledger.decision_rounds.append(len(items))
        self.inner.run_round(fn, items)


class _LedgerHooks(UpdateHooks):
    """Hook stream counting edges, movers-per-round and phase kind."""

    def __init__(self, session: "SimSession") -> None:
        self.session = session
        self._movers_this_round = 0

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        ledger = self.session.current_ledger
        if ledger is not None:
            ledger.kind = kind
            ledger.edges += len(edges)
        self._movers_this_round = 0

    def before_move(self, v: int, old: int, new: int, phase: Phase) -> None:
        self._movers_this_round += 1

    def round_boundary(self) -> None:
        ledger = self.session.current_ledger
        if ledger is not None and self._movers_this_round:
            ledger.move_rounds.append(self._movers_this_round)
        self._movers_this_round = 0

    def batch_end(self) -> None:
        ledger = self.session.current_ledger
        if ledger is not None and self._movers_this_round:
            ledger.move_rounds.append(self._movers_this_round)
        self._movers_this_round = 0


@dataclass
class SimBatchResult:
    """One batch's virtual execution."""

    ledger: BatchLedger
    duration: float  # virtual ticks on the session's update cores
    start: float
    end: float


@dataclass
class SimSessionResult:
    """Virtual-time session outcome."""

    impl_kind: str
    num_update_cores: int
    num_readers: int
    #: Per-read execution cost of this session's cost model (ticks).
    read_exec_cost: float = 1.0
    batches: list[SimBatchResult] = field(default_factory=list)
    #: Completed reads per reader over the whole session.
    reads_per_reader: list[int] = field(default_factory=list)
    #: Latency samples (virtual ticks).  For CPLDS/NonSync this is the
    #: constant service time; for SyncReads it includes batch waiting.
    read_latencies: list[float] = field(default_factory=list)

    @property
    def total_write_time(self) -> float:
        return sum(b.duration for b in self.batches)

    @property
    def total_reads(self) -> int:
        return sum(self.reads_per_reader)

    @property
    def total_edges(self) -> int:
        return sum(b.ledger.edges for b in self.batches)

    def write_throughput(self) -> float:
        """Edges per virtual tick, per the paper's definitions.

        SyncReads folds the synchronous read-execution time into the
        denominator (§7): reads generated during each batch execute at batch
        end before updates may continue.
        """
        t = self.total_write_time
        if self.impl_kind == "syncreads":
            t += self._syncreads_read_time()
        return self.total_edges / t if t > 0 else 0.0

    def read_throughput(self) -> float:
        """Reads per virtual tick (reads / total write time; for SyncReads,
        reads / (write + read) time — §7)."""
        t = self.total_write_time
        if self.impl_kind == "syncreads":
            t += self._syncreads_read_time()
        return self.total_reads / t if t > 0 else 0.0

    def _syncreads_read_time(self) -> float:
        # Reads execute serially at batch end on the read cores.
        return self.total_reads * self.read_exec_cost / max(self.num_readers, 1)


class SimSession:
    """Drive one implementation over a batch stream in virtual time.

    Parameters
    ----------
    impl:
        A CPLDS / NonSyncKCore / SyncReadsKCore instance (fresh).
    impl_kind:
        ``"cplds"``, ``"nonsync"`` or ``"syncreads"`` — selects read costing.
    num_update_cores / num_readers:
        The modeled machine.
    cost:
        The :class:`CostModel`.
    """

    def __init__(
        self,
        impl,
        impl_kind: str,
        *,
        num_update_cores: int = 15,
        num_readers: int = 15,
        cost: CostModel | None = None,
    ) -> None:
        if impl_kind not in ("cplds", "nonsync", "syncreads"):
            raise ValueError(f"unknown impl kind {impl_kind!r}")
        self.impl = impl
        self.impl_kind = impl_kind
        self.num_update_cores = num_update_cores
        self.num_readers = num_readers
        self.cost = cost if cost is not None else CostModel()
        self.current_ledger: BatchLedger | None = None
        # Instrument the implementation's PLDS.
        plds = impl.plds
        plds.executor = _LedgerExecutor(SequentialExecutor(), self)
        plds.hooks = HookChain(plds.hooks, _LedgerHooks(self))

    def run(self, stream: BatchStream | Sequence[Batch]) -> SimSessionResult:
        result = SimSessionResult(
            impl_kind=self.impl_kind,
            num_update_cores=self.num_update_cores,
            num_readers=self.num_readers,
            read_exec_cost=self.cost.read_base,
        )
        clock = 0.0
        read_cost = self.cost.read_cost(self.impl_kind)
        reads_per_reader = [0] * self.num_readers
        for batch in stream:
            ledger = BatchLedger()
            self.current_ledger = ledger
            if batch.kind == "insert":
                self.impl.insert_batch(batch.edges)
            else:
                self.impl.delete_batch(batch.edges)
            if self.impl_kind == "cplds":
                ledger.marked = getattr(self.impl, "last_batch_marked", 0)
            self.current_ledger = None
            duration = ledger.virtual_duration(self.num_update_cores, self.cost)
            result.batches.append(
                SimBatchResult(
                    ledger=ledger,
                    duration=duration,
                    start=clock,
                    end=clock + duration,
                )
            )
            # Readers run for the batch duration on their own cores.
            self._account_reads(
                result, reads_per_reader, duration, read_cost
            )
            clock += duration
        result.reads_per_reader = reads_per_reader
        return result

    def _account_reads(
        self,
        result: SimSessionResult,
        reads_per_reader: list[int],
        duration: float,
        read_cost: float,
    ) -> None:
        if self.num_readers == 0 or duration <= 0:
            return
        if self.impl_kind in ("cplds", "nonsync"):
            per_reader = int(duration // read_cost)
            for i in range(self.num_readers):
                reads_per_reader[i] += per_reader
            # Cap retained latency samples; they are all the constant
            # service time for these kinds.
            want = min(per_reader * self.num_readers, 10_000)
            result.read_latencies.extend([read_cost] * want)
        else:
            # SyncReads: reads *generated* during the batch (at the NonSync
            # generation rate) wait for batch end, then execute serially.
            gen_interval = self.cost.read_base
            per_reader = int(duration // gen_interval)
            for i in range(self.num_readers):
                reads_per_reader[i] += per_reader
            base = self.cost.read_base
            for k in range(min(per_reader, 2_000)):
                gen_time = (k + 1) * gen_interval
                wait = duration - gen_time
                # Queueing at batch end: the k-th read in a reader's queue
                # executes after k earlier reads.
                result.read_latencies.append(wait + (k + 1) * base)


def sweep_reader_scalability(
    impl_factory: Callable[[], object],
    impl_kind: str,
    stream_factory: Callable[[], BatchStream],
    reader_counts: Sequence[int],
    *,
    num_update_cores: int = 15,
    cost: CostModel | None = None,
) -> dict[int, SimSessionResult]:
    """Fig 7 (read side): re-run the stream for each reader count."""
    out: dict[int, SimSessionResult] = {}
    for r in reader_counts:
        session = SimSession(
            impl_factory(),
            impl_kind,
            num_update_cores=num_update_cores,
            num_readers=r,
            cost=cost,
        )
        out[r] = session.run(stream_factory())
    return out


def sweep_writer_scalability(
    impl_factory: Callable[[], object],
    impl_kind: str,
    stream_factory: Callable[[], BatchStream],
    core_counts: Sequence[int],
    *,
    num_readers: int = 15,
    cost: CostModel | None = None,
) -> dict[int, SimSessionResult]:
    """Fig 7 (write side): re-run the stream for each update-core count."""
    out: dict[int, SimSessionResult] = {}
    for w in core_counts:
        session = SimSession(
            impl_factory(),
            impl_kind,
            num_update_cores=w,
            num_readers=num_readers,
            cost=cost,
        )
        out[w] = session.run(stream_factory())
    return out


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division (exposed for the cost-model tests)."""
    return -(-a // b) if b else math.inf  # type: ignore[return-value]
