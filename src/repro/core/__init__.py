"""The paper's contribution: the CPLDS and its read/update protocol.

* :mod:`repro.core.descriptor` — operation descriptors (Algorithm 1).
* :mod:`repro.core.marking` — mark / unmark / check_DAG (Algorithms 2 & 3),
  including the dependency-DAG union with path compression.
* :mod:`repro.core.cplds` — the CPLDS itself: batched updates with marking
  hooks and the sandwiched lock-free read (Algorithm 4).
* :mod:`repro.core.naive` — the strawman from Section 4 (descriptors without
  DAG tracking), kept because it exhibits the new-old inversions the DAG rule
  exists to prevent, which the linearizability tests demonstrate.
* :mod:`repro.core.baselines` — SyncReads and NonSync, the two baselines of
  the experimental evaluation.
"""

from repro.core.cplds import CPLDS, ReadResult
from repro.core.descriptor import Descriptor, I_AM_ROOT, UNMARKED
from repro.core.baselines import NonSyncKCore, SyncReadsKCore
from repro.core.naive import NaiveMarkedKCore

__all__ = [
    "CPLDS",
    "ReadResult",
    "Descriptor",
    "I_AM_ROOT",
    "UNMARKED",
    "NonSyncKCore",
    "SyncReadsKCore",
    "NaiveMarkedKCore",
]
