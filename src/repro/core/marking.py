"""Marking, unmarking and DAG traversal (Algorithms 2 and 3 of the paper).

The dependency DAG of a batch is materialised as a parent-pointer forest over
the batch's descriptors, merged with the same CAS discipline as concurrent
union-find (:mod:`repro.unionfind.concurrent`):

* every newly marked vertex starts as a singleton root;
* when vertex ``v`` is marked with triggers/marked-batch-neighbours
  ``w₁..w_k``, the DAGs of all ``wᵢ`` are merged (smallest root vertex id
  deterministically becomes the sole root) and ``v`` is attached underneath —
  crucially ``v`` itself never becomes the root of a pre-existing DAG while
  its descriptor is still unpublished, which preserves the paper's invariant
  that *a DAG's root is marked before its non-roots and unmarked before its
  non-roots*;
* path compression (update and read side) rewrites parent pointers to point
  at an observed ancestor, which never breaks root reachability; readers can
  only ever compress the descriptor *objects* they traversed, so a slow
  reader from batch ``b`` cannot corrupt batch ``b+1``'s fresh descriptors.

``check_DAG`` (Algorithm 3) returns early with ``UNMARKED`` the moment any
descriptor on the path is unmarked, which is sound because roots are
unmarked strictly before non-roots.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.descriptor import Descriptor, I_AM_ROOT, UNMARKED
from repro.obs import REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.unionfind.atomics import stripe_lock_for

#: check_DAG results (kept as module constants to mirror the pseudocode).
MARKED = True
NOT_MARKED = False

# Cached metric handles.  Only the *update-side* operations report —
# ``check_dag`` sits on the read hot path and stays uninstrumented (read
# retries are counted in :mod:`repro.core.cplds` instead).
_MARKS = _OBS.counter("marking_marks_total")
_MERGES = _OBS.counter("marking_dag_merges_total")
_COMPRESSIONS = _OBS.counter("marking_path_compressions_total")


def _cas_parent(desc: Descriptor, expected: int, new: int) -> bool:
    """CAS a descriptor's parent field (striped-lock CAS; see DESIGN.md)."""
    with stripe_lock_for(desc.vertex):
        if desc.parent == expected:
            desc.parent = new
            return True
        return False


class DescriptorTable:
    """The global descriptor array plus the marking/unmarking operations.

    One instance lives inside each :class:`~repro.core.cplds.CPLDS` for the
    lifetime of the structure (paper: "a global array desc_array of
    Descriptors, one per vertex in the graph, for the lifetime of the
    program").
    """

    __slots__ = ("slots", "marked_vertices")

    def __init__(self, num_vertices: int) -> None:
        self.slots: list[Optional[Descriptor]] = [UNMARKED] * num_vertices
        #: Vertices marked in the current batch, in marking order; lets
        #: unmark_all avoid an O(n) scan.
        self.marked_vertices: list[int] = []

    # ------------------------------------------------------------------
    # Update-side: marking (Algorithm 2, mark)
    # ------------------------------------------------------------------
    def mark(
        self,
        v: int,
        old_level: int,
        related: Sequence[int],
        batch: int,
    ) -> Descriptor:
        """Mark ``v``: create its descriptor and merge it into the DAGs of
        ``related`` (its triggers plus marked batch neighbours).

        The descriptor is published into the slot *last*, after the DAG
        merge, exactly as in the paper's pseudocode: readers either see ``v``
        unmarked (and return its live level, which has not moved yet — the
        caller moves it only after ``mark`` returns) or see the completed
        descriptor.
        """
        desc = Descriptor(v, old_level=old_level, batch=batch)
        sole = self._merge_dags(related)
        if sole is not None and sole.vertex != v:
            desc.parent = sole.vertex
        self.slots[v] = desc
        self.marked_vertices.append(v)
        if _OBS.enabled:
            _MARKS.inc()
        return desc

    def add_dependencies(self, v: int, related: Sequence[int]) -> None:
        """Merge ``v``'s DAG with those of ``related`` (``v`` already marked).

        Used when an already-marked vertex moves again because of vertices in
        other DAGs: the causal connection requires the DAGs to appear atomic
        together, so they are merged (see DESIGN.md, "Marking on later
        moves").
        """
        desc = self.slots[v]
        if desc is UNMARKED:
            raise ValueError(f"add_dependencies on unmarked vertex {v}")
        if not related:
            return
        self._merge_dags([v, *related])

    def _merge_dags(self, members: Sequence[int]) -> Optional[Descriptor]:
        """Merge the DAGs of all marked ``members``; return the sole root.

        Linking follows the concurrent union-find CAS loop: find both roots,
        link the larger-vertex-id root under the smaller, retry on
        contention.  Returns ``None`` when ``members`` is empty.
        """
        if not members:
            return None
        while True:
            roots: dict[int, Descriptor] = {}
            for w in members:
                root = self._find_root(w)
                roots[root.vertex] = root
            if len(roots) == 1:
                return next(iter(roots.values()))
            ordered = sorted(roots)
            winner = roots[ordered[0]]
            contended = False
            for rid in ordered[1:]:
                if not _cas_parent(roots[rid], I_AM_ROOT, winner.vertex):
                    contended = True  # concurrent link; re-find everything
                else:
                    if _OBS.enabled:
                        _MERGES.inc()
                    if _REC.enabled:
                        _REC.record(_EV.DAG_MERGE, winner.vertex, rid)
            if not contended:
                # `winner` may itself have been linked concurrently since,
                # but any member of the merged DAG is a valid attachment
                # point — its chain still reaches the sole root.
                return winner

    def _find_root(self, v: int) -> Descriptor:
        """Root descriptor of marked vertex ``v``, compressing the path.

        Update-side only: during the marking phase every traversed slot is
        guaranteed marked, so the chain always terminates at a root.
        """
        desc = self.slots[v]
        if desc is UNMARKED:
            raise ValueError(f"_find_root on unmarked vertex {v}")
        trail: list[Descriptor] = []
        while desc.parent != I_AM_ROOT:
            trail.append(desc)
            nxt = self.slots[desc.parent]
            if nxt is UNMARKED:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"marked descriptor chain of {v} reached unmarked slot "
                    f"{desc.parent} during the update phase"
                )
            desc = nxt
        root = desc
        compressed = 0
        for node in trail:
            if node.parent != root.vertex and node is not root:
                if _cas_parent(node, node.parent, root.vertex):
                    compressed += 1
        if compressed and _OBS.enabled:
            _COMPRESSIONS.inc(compressed)
        return root

    # ------------------------------------------------------------------
    # Update-side: unmarking (Algorithm 2, unmark_all)
    # ------------------------------------------------------------------
    def unmark_all(self, run_round) -> None:
        """Clear all descriptors: roots first, then everything else.

        ``run_round`` is an executor round function (two barriers — one per
        phase — mirror the two ``parfor`` loops of the pseudocode).  The
        root-first order maintains the invariant ``check_DAG`` relies on: if
        any non-root is still marked, observing *it* unmarked implies its
        root is unmarked too.
        """
        marked = self.marked_vertices
        slots = self.slots
        root_flags = [False] * len(marked)

        def classify(i: int) -> None:
            desc = slots[marked[i]]
            root_flags[i] = desc is not UNMARKED and desc.parent == I_AM_ROOT

        run_round(classify, range(len(marked)))

        def clear_roots(i: int) -> None:
            if root_flags[i]:
                slots[marked[i]] = UNMARKED

        run_round(clear_roots, range(len(marked)))

        def clear_rest(i: int) -> None:
            if not root_flags[i]:
                slots[marked[i]] = UNMARKED

        run_round(clear_rest, range(len(marked)))
        marked.clear()

    # ------------------------------------------------------------------
    # Read-side: check_DAG (Algorithm 3)
    # ------------------------------------------------------------------
    def check_dag(self, desc: Optional[Descriptor]) -> bool:
        """Whether the DAG containing ``desc`` is still marked.

        Returns :data:`MARKED`/:data:`NOT_MARKED`.  Early-exits
        ``NOT_MARKED`` on the first unmarked descriptor found along the path
        (sound because roots unmark first), compressing the traversed prefix.
        Lock-free: the only loop is bounded by the (finite, acyclic) parent
        chain, and compression CAS failures are abandoned, never retried.
        """
        if desc is UNMARKED:
            return NOT_MARKED
        trail: list[Descriptor] = []
        while desc.parent != I_AM_ROOT:
            target = desc.parent
            trail.append(desc)
            nxt = self.slots[target]
            if nxt is UNMARKED:
                # Compress onto the unmarked slot index: later readers of the
                # same stale chain short-circuit straight to it.
                self._compress(trail, target)
                return NOT_MARKED
            desc = nxt
        self._compress(trail, desc.vertex)
        return MARKED

    @staticmethod
    def _compress(trail: list[Descriptor], target: int) -> None:
        for node in trail:
            if node.parent != target and node.vertex != target:
                _cas_parent(node, node.parent, target)

    # ------------------------------------------------------------------
    # Introspection (tests / diagnostics)
    # ------------------------------------------------------------------
    def get(self, v: int) -> Optional[Descriptor]:
        """Atomic load of ``v``'s slot."""
        return self.slots[v]

    def is_marked(self, v: int) -> bool:
        """Whether ``v`` currently has an active descriptor."""
        return self.slots[v] is not UNMARKED

    def dag_members(self) -> dict[int, list[int]]:
        """Current DAGs as ``{root_vertex: sorted members}`` (quiescent use)."""
        out: dict[int, list[int]] = {}
        for v in self.marked_vertices:
            if self.slots[v] is UNMARKED:
                continue
            root = self._find_root(v).vertex
            out.setdefault(root, []).append(v)
        for members in out.values():
            members.sort()
        return out
