"""Operation descriptors (Algorithm 1 of the paper).

A vertex that is in the process of changing levels during the current batch
is *marked*: its slot in the global descriptor array holds a
:class:`Descriptor` recording the vertex's pre-batch level (``old_level``)
and its parent in the dependency DAG (``parent``, a vertex index, or
:data:`I_AM_ROOT`).  An unmarked vertex's slot holds :data:`UNMARKED`.

Descriptor objects are created fresh for every (vertex, batch) pair and never
recycled: a slow reader that still holds a previous batch's descriptor can
only ever mutate (via path compression) or inspect that stale object, never a
current one — this is what makes read-side path compression safe across batch
boundaries (see the discussion in ``repro/core/marking.py``).
"""

from __future__ import annotations

from typing import Optional

#: Sentinel parent value for DAG roots (paper: ``I_AM_ROOT``).
I_AM_ROOT: int = -1

#: Sentinel slot value for unmarked vertices (paper: ``UNMARKED``).  ``None``
#: is used so that slot checks are identity tests, the cheapest atomic read.
UNMARKED: Optional["Descriptor"] = None


class Descriptor:
    """One vertex's in-flight level-change record.

    Attributes
    ----------
    vertex:
        The vertex this descriptor belongs to (handy for diagnostics and for
        deterministic root selection).
    old_level:
        The vertex's level *before* the current batch — what concurrent
        readers must return while the vertex's DAG is still marked.
    parent:
        The vertex index of this node's parent in the dependency DAG, or
        :data:`I_AM_ROOT`.  Mutated by DAG unions (update side) and path
        compression (both sides); single-word reads/writes are GIL-atomic.
    batch:
        The batch number this descriptor was created in (diagnostics only;
        the read protocol never needs it thanks to the batch-number
        sandwich).
    """

    __slots__ = ("vertex", "old_level", "parent", "batch")

    def __init__(
        self,
        vertex: int,
        old_level: int,
        parent: int = I_AM_ROOT,
        batch: int = 0,
    ) -> None:
        self.vertex = vertex
        self.old_level = old_level
        self.parent = parent
        self.batch = batch

    def is_root(self) -> bool:
        """Whether this descriptor currently heads its dependency DAG."""
        return self.parent == I_AM_ROOT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parent = "ROOT" if self.parent == I_AM_ROOT else self.parent
        return (
            f"Descriptor(v={self.vertex}, old_level={self.old_level}, "
            f"parent={parent}, batch={self.batch})"
        )
