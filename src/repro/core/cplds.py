"""CPLDS: the concurrent parallel level data structure (the paper's §4–§5).

The CPLDS composes:

* a :class:`~repro.lds.plds.PLDS` that executes batches of edge updates, and
* a :class:`~repro.core.marking.DescriptorTable` holding the per-vertex
  operation descriptors and dependency DAGs,

wired together through the PLDS update hooks: immediately *before* a vertex's
live level changes, the vertex is marked (first move in the batch) or its DAG
is merged with its new triggers' DAGs (later moves), so that a concurrent
reader always finds either the pre-batch level in a descriptor or a stable
live level.

Reads (Algorithm 4) are **lock-free**: the only blocking-free retry loop
re-runs when the batch number advanced or the live level changed between the
two "sandwich" collects — both of which certify that an update made progress,
which is the paper's lock-freedom argument (§6.2).  Updates run on the
calling (update) thread and always terminate — they are *live* in the
paper's terminology.

Thread-safety contract: any number of reader threads may call :meth:`read` /
:meth:`read_verbose` concurrently with one in-flight batch (single-writer,
multi-reader), matching the process model of §2 as instantiated in this
reproduction (see DESIGN.md substitution table for the multi-writer case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.descriptor import UNMARKED
from repro.core.marking import DescriptorTable
from repro.errors import ReproError
from repro.lds.params import LDSParams
from repro.lds.plds import PLDS, Phase, UpdateHooks
from repro.obs import COUNT_BUCKETS, REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.obs.staleness import (
    READS_DESCRIPTOR as _READS_DESCRIPTOR,
    READS_LIVE as _READS_LIVE,
    STALENESS_EPOCHS as _STALENESS,
)
from repro.runtime.executor import Executor
from repro.types import Edge, Vertex

# Cached metric handles (see docs/observability.md).  The success path of
# :meth:`CPLDS.read` carries exactly one ``_OBS.enabled`` branch, tagging
# the read live (0 epochs behind) or descriptor (1 epoch behind); per-read
# flight-recorder events are confined to :meth:`CPLDS.read_verbose` and the
# retry branch so the uncontended hot path stays lean.
_MARKED = _OBS.counter("cplds_marked_total")
_DAGS = _OBS.counter("cplds_dags_total")
_BATCHES = _OBS.counter("cplds_batches_total")
_READ_RETRIES = _OBS.counter("cplds_read_retries_total")
_READS_VERBOSE = _OBS.counter("cplds_reads_verbose_total")
_RETRY_HIST = _OBS.histogram("cplds_read_retries_per_read", COUNT_BUCKETS)


@dataclass(frozen=True)
class ReadResult:
    """Outcome of one linearizable read (telemetry-rich variant)."""

    #: The coreness estimate returned to the caller.
    estimate: float
    #: The level the estimate was computed from.
    level: int
    #: True if the level came from a descriptor (``old_level``); False if it
    #: is the live level.
    from_descriptor: bool
    #: How many times the sandwich forced a retry before succeeding.
    retries: int
    #: The batch number the read linearized in.
    batch: int


class _MarkingHooks(UpdateHooks):
    """PLDS hooks implementing the paper's marking discipline."""

    __slots__ = ("cp", "_phase")

    def __init__(self, cp: "CPLDS") -> None:
        self.cp = cp
        self._phase: Phase = "insert"

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        cp = self.cp
        self._phase = kind
        # Incremented at the start of every batch (Algorithm 1).  A plain
        # int increment on the update thread; reader loads are GIL-atomic.
        cp.batch_number += 1
        if _REC.enabled:
            _REC.record(
                _EV.BATCH_BEGIN,
                cp.batch_number,
                0 if kind == "insert" else 1,
                len(edges),
            )
        partners: dict[Vertex, list[Vertex]] = {}
        for u, v in edges:
            partners.setdefault(u, []).append(v)
            partners.setdefault(v, []).append(u)
        cp._batch_partners = partners

    def before_move(self, v: Vertex, old: int, new: int, phase: Phase) -> None:
        cp = self.cp
        table = cp.descriptors
        # Inline trigger scan (hot path: once per vertex move).  Triggers:
        # marked graph neighbours at >= ℓ(v) for insertions, or strictly
        # below ℓ(v) − 1 for deletions; plus marked batch partners.
        slots = table.slots
        level = cp.plds.state.level
        lv = level[v]
        related: list[Vertex] = []
        if phase == "insert":
            for w in cp.plds.graph.neighbors_unsafe(v):
                if level[w] >= lv and slots[w] is not None:
                    related.append(w)
        else:
            bound = lv - 1
            for w in cp.plds.graph.neighbors_unsafe(v):
                if level[w] < bound and slots[w] is not None:
                    related.append(w)
        partners = cp._batch_partners.get(v)
        if partners:
            for w in partners:
                if slots[w] is not None:
                    related.append(w)
        if slots[v] is None:
            # First move this batch: `old` is the pre-batch level.
            table.mark(v, old_level=old, related=related, batch=cp.batch_number)
        elif related:
            # Later move triggered by other DAGs: merge them (DESIGN.md,
            # "Marking on later moves").
            table.add_dependencies(v, related)

    def batch_end(self) -> None:
        cp = self.cp
        dags = cp.descriptors.dag_members()
        cp.last_batch_marked = len(cp.descriptors.marked_vertices)
        cp.last_batch_dags = len(dags)
        cp.last_batch_dag_map = {
            v: root for root, members in dags.items() for v in members
        }
        if _OBS.enabled:
            _BATCHES.inc()
            _MARKED.inc(cp.last_batch_marked)
            _DAGS.inc(cp.last_batch_dags)
        if _REC.enabled:
            _REC.record(
                _EV.BATCH_END,
                cp.batch_number,
                cp.last_batch_marked,
                cp.last_batch_dags,
                cp.plds.last_batch_moves,
            )
        cp.descriptors.unmark_all(cp.plds.executor.run_round)
        cp._batch_partners = {}
        cp._publish_epoch()


class CPLDS:
    """Approximate k-core with batched updates and asynchronous reads.

    Parameters
    ----------
    num_vertices:
        Size of the fixed vertex universe.
    params:
        :class:`LDSParams`; defaults to the paper's (δ=0.2, λ=9).
    executor:
        Round executor for the update phases (see
        :mod:`repro.runtime.executor`).
    max_read_retries:
        Safety bound on the read retry loop; exceeding it raises
        :class:`~repro.errors.ReproError` (a genuine execution can only hit
        it if updates are streaming in faster than a read can double-collect,
        which the paper's model excludes by making update processes
        synchronous).
    backend:
        Level-store backend name (``"object"``, ``"columnar"`` or
        ``"columnar-frontier"``); see :mod:`repro.lds.store`.  The
        frontier backend is constructed via
        :class:`repro.core.frontier.FrontierCPLDS` (the engine registry
        routes there automatically).

    Examples
    --------
    >>> cp = CPLDS(6)
    >>> cp.insert_batch([(0, 1), (1, 2), (0, 2)])
    3
    >>> cp.read(0) >= 1.0
    True
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        executor: Executor | None = None,
        max_read_retries: int = 10_000_000,
        backend: str = "object",
    ) -> None:
        hooks = _MarkingHooks(self)
        self.plds = PLDS(
            num_vertices,
            params=params,
            executor=executor,
            hooks=hooks,
            backend=backend,
        )
        self.params = self.plds.params
        self.descriptors = DescriptorTable(num_vertices)
        self.batch_number = 0
        self.max_read_retries = max_read_retries
        #: Optional :class:`repro.reads.EpochSnapshotStore`: when attached
        #: (see :func:`repro.reads.attach_epoch_store`), every ``batch_end``
        #: the store's cadence accepts publishes an immutable level snapshot
        #: for the multi-version read tier.  Never touched by the update
        #: algorithm itself — publishing adds no rounds, moves, or marks.
        self.epoch_store = None
        self._batch_partners: dict[Vertex, list[Vertex]] = {}
        self._wounded = False
        #: Telemetry from the most recent batch.
        self.last_batch_marked = 0
        self.last_batch_dags = 0
        #: Dependency-DAG partition of the most recent batch
        #: (vertex -> DAG root), captured just before unmarking.
        self.last_batch_dag_map: dict[Vertex, Vertex] = {}

    # ------------------------------------------------------------------
    # Updates (update processes)
    # ------------------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        """Apply an insertion batch; returns the number of new edges."""
        with _OBS.span("cplds.insert_batch") as sp:
            try:
                applied = self.plds.batch_insert(edges)
            except BaseException:
                self._wounded = True
                raise
            sp.set(
                edges=applied,
                moves=self.plds.last_batch_moves,
                rounds=self.plds.last_batch_rounds,
                marked=self.last_batch_marked,
                dags=self.last_batch_dags,
            )
            return applied

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        """Apply a deletion batch; returns the number of removed edges."""
        with _OBS.span("cplds.delete_batch") as sp:
            try:
                applied = self.plds.batch_delete(edges)
            except BaseException:
                self._wounded = True
                raise
            sp.set(
                edges=applied,
                moves=self.plds.last_batch_moves,
                rounds=self.plds.last_batch_rounds,
                marked=self.last_batch_marked,
                dags=self.last_batch_dags,
            )
            return applied

    def apply_batch(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[int, int]:
        """Mixed batch, pre-processed into insertion + deletion sub-batches."""
        with _OBS.span("cplds.apply_batch") as sp:
            try:
                counts = self.plds.apply_batch(insertions, deletions)
            except BaseException:
                self._wounded = True
                raise
            sp.set(
                insertions=counts[0],
                deletions=counts[1],
                moves=self.plds.last_batch_moves,
                rounds=self.plds.last_batch_rounds,
            )
            return counts

    def _publish_epoch(self) -> None:
        """Publish this epoch's level snapshot to the attached read tier.

        Called by the hooks at ``batch_end`` (once per insert/delete
        phase), after unmarking, so the published levels are the settled
        post-batch state.  A no-op without a store (or when the store's
        publish cadence rejects the epoch); costs one O(n) array copy
        when it fires and touches no work counters.
        """
        store = self.epoch_store
        if store is not None and store.accepts(self.batch_number):
            store.publish(
                self.batch_number,
                self.plds.state.snapshot_levels(),
                params=self.params,
            )

    # ------------------------------------------------------------------
    # Reads (read processes — lock-free, callable from any thread)
    # ------------------------------------------------------------------
    def read(self, v: Vertex) -> float:
        """Linearizable coreness estimate of ``v`` (Algorithm 4).

        The hot path: identical protocol to :meth:`read_verbose` but with no
        per-read allocation (no :class:`ReadResult`) — a table lookup away
        from NonSync's cost once the sandwich passes.  While observability
        is on, the success path tags the read's staleness class (live = 0
        epochs behind, descriptor = 1); disabled, it costs one branch.
        """
        level = self.plds.state.level
        slots = self.descriptors.slots
        estimates = self.params.estimate_table
        check_dag = self.descriptors.check_dag
        retries = 0
        while True:
            b1 = self.batch_number
            l1 = level[v]
            desc = slots[v]
            marked = check_dag(desc)
            l2 = level[v]
            b2 = self.batch_number
            if b1 == b2:
                if marked:
                    if _OBS.enabled:
                        _READS_DESCRIPTOR.inc()
                        _STALENESS.observe(1)
                    return estimates[desc.old_level]  # type: ignore[union-attr]
                if l1 == l2:
                    if _OBS.enabled:
                        _READS_LIVE.inc()
                        _STALENESS.observe(0)
                    return estimates[l1]
            retries += 1
            if _OBS.enabled:
                _READ_RETRIES.inc()
            if _REC.enabled:
                _REC.record(_EV.READ_RETRY, v, b1, b2, retries)
            if retries > self.max_read_retries:
                raise ReproError(
                    f"read({v}) exceeded {self.max_read_retries} retries; "
                    "the update stream is outpacing the reader"
                )

    def read_level(self, v: Vertex) -> int:
        """Linearizable *level* of ``v`` (the raw quantity behind the
        estimate; used by the verification harness)."""
        return self.read_verbose(v).level

    def read_verbose(self, v: Vertex) -> ReadResult:
        """Algorithm 4 with full telemetry.

        The double sandwich: (batch number, live level) collected before and
        after the descriptor check must both match, else retry.
        """
        level = self.plds.state.level  # the live-level array
        slots = self.descriptors.slots
        params = self.params
        retries = 0
        result: ReadResult | None = None
        while result is None:
            b1 = self.batch_number
            l1 = level[v]
            desc = slots[v]
            marked = self.descriptors.check_dag(desc)
            l2 = level[v]
            b2 = self.batch_number
            if b1 == b2:
                if marked:
                    old = desc.old_level  # type: ignore[union-attr]
                    result = ReadResult(
                        estimate=params.coreness_estimate(old),
                        level=old,
                        from_descriptor=True,
                        retries=retries,
                        batch=b1,
                    )
                    break
                if l1 == l2:
                    result = ReadResult(
                        estimate=params.coreness_estimate(l1),
                        level=l1,
                        from_descriptor=False,
                        retries=retries,
                        batch=b1,
                    )
                    break
            retries += 1
            if _REC.enabled:
                _REC.record(_EV.READ_RETRY, v, b1, b2, retries)
            if retries > self.max_read_retries:
                raise ReproError(
                    f"read({v}) exceeded {self.max_read_retries} retries; "
                    "the update stream is outpacing the reader"
                )
        if _OBS.enabled:
            _READS_VERBOSE.inc()
            if result.from_descriptor:
                _READS_DESCRIPTOR.inc()
                _STALENESS.observe(1)
            else:
                _READS_LIVE.inc()
                _STALENESS.observe(0)
            if retries:
                _READ_RETRIES.inc(retries)
                _RETRY_HIST.observe(retries)
        if _REC.enabled:
            _REC.record(
                _EV.READ_OK,
                v,
                result.batch,
                1 if result.from_descriptor else 0,
                retries,
            )
        return result

    # ------------------------------------------------------------------
    # Marking support
    # ------------------------------------------------------------------
    def _related_marked(self, v: Vertex, phase: Phase) -> list[Vertex]:
        """Triggers ∪ marked batch neighbours of ``v`` (Algorithm 2, line 4).

        Insertions: marked graph neighbours at ``v``'s level or higher.
        Deletions: marked graph neighbours strictly below ``ℓ(v) − 1``.
        Plus, in both phases, every marked endpoint of a batch edge incident
        to ``v`` (which is what keeps updated edges inside a single DAG,
        Lemma 6.3).
        """
        state = self.plds.state
        table = self.descriptors
        lv = state.level[v]
        related: list[Vertex] = []
        if phase == "insert":
            for w in self.plds.graph.neighbors_unsafe(v):
                if state.level[w] >= lv and table.is_marked(w):
                    related.append(w)
        else:
            for w in self.plds.graph.neighbors_unsafe(v):
                if state.level[w] < lv - 1 and table.is_marked(w):
                    related.append(w)
        for w in self._batch_partners.get(v, ()):
            if table.is_marked(w):
                related.append(w)
        return related

    # ------------------------------------------------------------------
    # Quiescent conveniences
    # ------------------------------------------------------------------
    def coreness_estimate(self, v: Vertex) -> float:
        """Quiescent estimate straight from the live level (no protocol)."""
        return self.plds.coreness_estimate(v)

    def levels(self) -> list[int]:
        """Snapshot of all live levels (quiescent use)."""
        return self.plds.levels()

    @property
    def graph(self):
        """The underlying dynamic graph."""
        return self.plds.graph

    @property
    def backend(self) -> str:
        """The level-store backend this structure runs on."""
        return self.plds.state.backend

    @property
    def wounded(self) -> bool:
        """True if a batch ever raised mid-flight on this structure.

        A wounded structure's levels/counters/descriptors may be mutually
        inconsistent; the recovery entry points (:meth:`rebuild`, or the
        supervisor's checkpoint+journal restore) clear the flag.
        """
        return self._wounded

    def fresh_like(self) -> "CPLDS":
        """A new, empty CPLDS over the same vertex universe and parameters.

        Recovery entry point: checkpoint+journal replay starts from a fresh
        structure (never the wounded one) and replays history batch by
        batch, which — the PLDS being deterministic under the sequential
        executor — reproduces the exact level history of the original.
        """
        return type(self)(
            self.graph.num_vertices,
            params=self.params,
            max_read_retries=self.max_read_retries,
            backend=self.backend,
        )

    def rebuild(self) -> None:
        """Recover a consistent quiescent state from the graph alone.

        The paper's model has no process failures, but an update *batch* can
        die mid-flight for mundane reasons (a hook raised, the process was
        interrupted) leaving levels, counters and descriptors mutually
        inconsistent.  ``rebuild`` discards all derived state and recomputes
        it from the surviving edge set: descriptors are cleared, every level
        reset, and the whole graph re-run through one insertion batch.  Reads
        are **not** safe concurrently with a rebuild (the structure was
        already broken); it counts as one batch for the sandwich, so any
        straggling reader retries out.
        """
        graph = self.plds.graph
        edges = list(graph.edges())
        n = graph.num_vertices
        # Clear descriptors (any leftover marks belong to the dead batch).
        self.descriptors.slots[:] = [None] * n
        self.descriptors.marked_vertices.clear()
        self._batch_partners = {}
        # Reset the graph + level state and replay.
        graph.clear()
        self.plds.state.reset()
        self.insert_batch(edges)
        self._wounded = False

    # ------------------------------------------------------------------
    # State management (quiescent use)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture the full quiescent state (no batch may be in flight)."""
        return {
            "backend": self.backend,
            "batch_number": self.batch_number,
            "plds": self.plds.snapshot_state(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place.

        Also discards any derived per-batch state (descriptors, partner
        map, the wounded flag), so it doubles as the exact-state recovery
        path after a batch died mid-flight.
        """
        n = self.graph.num_vertices
        self.descriptors.slots[:] = [None] * n
        self.descriptors.marked_vertices.clear()
        self._batch_partners = {}
        self.plds.restore_state(snap["plds"])
        self.batch_number = snap["batch_number"]
        self._wounded = False

    def check_invariants(self) -> None:
        """Assert LDS invariants and a fully unmarked descriptor table."""
        self.plds.check_invariants()
        if self.descriptors.marked_vertices:
            raise AssertionError(
                f"{len(self.descriptors.marked_vertices)} descriptors leaked "
                "past batch end"
            )
        leaked = [
            v for v, d in enumerate(self.descriptors.slots) if d is not UNMARKED
        ]
        if leaked:
            raise AssertionError(f"marked slots leaked past batch end: {leaked[:10]}")
