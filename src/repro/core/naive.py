"""The Section 4 strawman: per-vertex descriptors *without* DAG tracking.

"A first and naive version of our algorithm ... if a read of v finds that v
is marked with an active descriptor, the read must return the old level of
v."  The strawman prevents a reader from observing an individual vertex's
intermediate level, but it does **not** prevent *new-old inversions* between
causally dependent vertices: at batch end the descriptors are cleared one by
one with no root-first ordering, so a reader can observe one vertex of a
dependency chain already unmarked (new level) and then another vertex of the
same chain still marked (old level) — impossible in any sequential
execution.

The linearizability tests construct exactly that schedule through the
``on_unmark_step`` hook and show the checker rejecting this structure while
accepting the CPLDS, reproducing the paper's motivation for the DAG
atomicity rule.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.core.cplds import ReadResult
from repro.core.descriptor import Descriptor, UNMARKED
from repro.errors import ReproError
from repro.lds.params import LDSParams
from repro.lds.plds import PLDS, Phase, UpdateHooks
from repro.runtime.executor import Executor
from repro.types import Edge, Vertex


class _NaiveHooks(UpdateHooks):
    __slots__ = ("owner", )

    def __init__(self, owner: "NaiveMarkedKCore") -> None:
        self.owner = owner

    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        self.owner.batch_number += 1

    def before_move(self, v: Vertex, old: int, new: int, phase: Phase) -> None:
        owner = self.owner
        if owner.slots[v] is UNMARKED:
            owner.slots[v] = Descriptor(
                v, old_level=old, batch=owner.batch_number
            )
            owner._marked.append(v)

    def batch_end(self) -> None:
        owner = self.owner
        # Unmark one vertex at a time, in marking order, with NO atomicity
        # across a dependency chain — this is the strawman's flaw.
        for v in owner._marked:
            owner.slots[v] = UNMARKED
            if owner.on_unmark_step is not None:
                owner.on_unmark_step(v)
        owner._marked.clear()


class NaiveMarkedKCore:
    """Strawman structure: marked reads return old levels, no DAGs.

    Exposes the same surface as :class:`~repro.core.cplds.CPLDS`.  The
    ``on_unmark_step`` attribute, when set, is invoked after each individual
    descriptor clear at batch end — the seam tests use to interleave reads
    into the unmark sequence deterministically.
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        executor: Executor | None = None,
        max_read_retries: int = 10_000_000,
        backend: str = "object",
    ) -> None:
        self.plds = PLDS(
            num_vertices,
            params=params,
            executor=executor,
            hooks=_NaiveHooks(self),
            backend=backend,
        )
        self.params = self.plds.params
        self.slots: list[Optional[Descriptor]] = [UNMARKED] * num_vertices
        self.batch_number = 0
        self.max_read_retries = max_read_retries
        self._marked: list[Vertex] = []
        self.on_unmark_step: Optional[Callable[[Vertex], None]] = None

    # -- updates -------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        return self.plds.batch_insert(edges)

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        return self.plds.batch_delete(edges)

    # -- reads ----------------------------------------------------------
    def read(self, v: Vertex) -> float:
        return self.read_verbose(v).estimate

    def read_level(self, v: Vertex) -> int:
        return self.read_verbose(v).level

    def read_verbose(self, v: Vertex) -> ReadResult:
        """Sandwiched read against the single descriptor (no DAG check).

        The sandwich keeps reads from mixing state across *batches* (so any
        violation the checker finds is attributable to the missing DAG rule,
        not to torn batch numbers).
        """
        level = self.plds.state.level
        retries = 0
        while True:
            b1 = self.batch_number
            l1 = level[v]
            desc = self.slots[v]
            l2 = level[v]
            b2 = self.batch_number
            if b1 == b2:
                if desc is not UNMARKED:
                    return ReadResult(
                        estimate=self.params.coreness_estimate(desc.old_level),
                        level=desc.old_level,
                        from_descriptor=True,
                        retries=retries,
                        batch=b1,
                    )
                if l1 == l2:
                    return ReadResult(
                        estimate=self.params.coreness_estimate(l1),
                        level=l1,
                        from_descriptor=False,
                        retries=retries,
                        batch=b1,
                    )
            retries += 1
            if retries > self.max_read_retries:
                raise ReproError(f"naive read({v}) exceeded retry bound")

    # -- conveniences ----------------------------------------------------
    def coreness_estimate(self, v: Vertex) -> float:
        return self.plds.coreness_estimate(v)

    def levels(self) -> list[int]:
        return self.plds.levels()

    @property
    def graph(self):
        return self.plds.graph

    @property
    def backend(self) -> str:
        return self.plds.state.backend

    def snapshot_state(self) -> dict:
        """Capture the full quiescent state."""
        return {
            "backend": self.backend,
            "batch_number": self.batch_number,
            "plds": self.plds.snapshot_state(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        self.slots[:] = [UNMARKED] * len(self.slots)
        self._marked.clear()
        self.plds.restore_state(snap["plds"])
        self.batch_number = snap["batch_number"]

    def check_invariants(self) -> None:
        self.plds.check_invariants()
