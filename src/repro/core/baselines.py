"""The two baselines of the paper's evaluation: NonSync and SyncReads.

* :class:`NonSyncKCore` — unsynchronized reads: a read returns the estimate
  from the vertex's *current* live level, whatever mid-batch intermediate
  state that is.  Fastest reads, **not linearizable**, and the estimate error
  is unbounded relative to the batch-boundary truth (§6.3 of the paper).
* :class:`SyncReadsKCore` — fully synchronous reads: a read generated while a
  batch is in flight blocks until the batch completes, then executes.  Always
  linearizable, but the read latency is dominated by the remaining batch
  time — this is the "orders of magnitude" gap of Fig 3/4.

Both expose the same surface as :class:`~repro.core.cplds.CPLDS` (``read``,
``read_verbose``, ``insert_batch``, ``delete_batch``), so harnesses and
examples can swap implementations freely.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.core.cplds import ReadResult
from repro.lds.params import LDSParams
from repro.lds.plds import PLDS
from repro.runtime.executor import Executor
from repro.types import Edge, Vertex


class NonSyncKCore:
    """Unsynchronized (non-linearizable) baseline.

    The update path is the plain PLDS — no descriptors, no marking — which
    is why the paper's Fig 5 shows NonSync with the lowest update times.
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        executor: Executor | None = None,
        backend: str = "object",
    ) -> None:
        self.plds = PLDS(
            num_vertices, params=params, executor=executor, backend=backend
        )
        self.params = self.plds.params
        self.batch_number = 0

    # -- updates -------------------------------------------------------
    def insert_batch(self, edges: Iterable[Edge]) -> int:
        self.batch_number += 1
        return self.plds.batch_insert(edges)

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        self.batch_number += 1
        return self.plds.batch_delete(edges)

    def apply_batch(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[int, int]:
        self.batch_number += 1
        return self.plds.apply_batch(insertions, deletions)

    # -- reads ----------------------------------------------------------
    def read(self, v: Vertex) -> float:
        """Immediate read of the live level — may be a mid-batch level."""
        return self.params.coreness_estimate(self.plds.state.level[v])

    def read_level(self, v: Vertex) -> int:
        return self.plds.state.level[v]

    def read_verbose(self, v: Vertex) -> ReadResult:
        lvl = self.plds.state.level[v]
        return ReadResult(
            estimate=self.params.coreness_estimate(lvl),
            level=lvl,
            from_descriptor=False,
            retries=0,
            batch=self.batch_number,
        )

    # -- conveniences ----------------------------------------------------
    def coreness_estimate(self, v: Vertex) -> float:
        return self.plds.coreness_estimate(v)

    def levels(self) -> list[int]:
        return self.plds.levels()

    @property
    def graph(self):
        return self.plds.graph

    @property
    def backend(self) -> str:
        return self.plds.state.backend

    def snapshot_state(self) -> dict:
        """Capture the full quiescent state."""
        return {
            "backend": self.backend,
            "batch_number": self.batch_number,
            "plds": self.plds.snapshot_state(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        self.plds.restore_state(snap["plds"])
        self.batch_number = snap["batch_number"]

    def check_invariants(self) -> None:
        self.plds.check_invariants()


class SyncReadsKCore:
    """Synchronous-reads baseline: reads wait for the in-flight batch.

    A condition variable models the paper's SyncReads discipline ("reads
    ... are performed ... at the end of the batch"): readers that arrive
    mid-batch block until the update thread signals batch completion; reads
    that arrive between batches execute immediately.  Holding the condition
    while reading also prevents the next batch from starting under a read,
    which is the batch/read mutual exclusion SyncReads implies.
    """

    def __init__(
        self,
        num_vertices: int,
        params: LDSParams | None = None,
        executor: Executor | None = None,
        backend: str = "object",
    ) -> None:
        self.plds = PLDS(
            num_vertices, params=params, executor=executor, backend=backend
        )
        self.params = self.plds.params
        self.batch_number = 0
        self._cond = threading.Condition()
        self._in_batch = False
        self._waiting = 0

    # -- updates -------------------------------------------------------
    def _run_batch(self, fn, *args):
        with self._cond:
            self._in_batch = True
            self.batch_number += 1
        try:
            return fn(*args)
        finally:
            with self._cond:
                self._in_batch = False
                self._cond.notify_all()

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every read queued during the last batch was served.

        The paper folds the synchronous reads into the batch update time
        ("updates are blocked and cannot be performed until all synchronous
        reads finish"); the harness calls this right after each batch and
        counts the drain into the measured batch duration.
        """
        with self._cond:
            while self._waiting:
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError("SyncReads drain timed out")

    def insert_batch(self, edges: Iterable[Edge]) -> int:
        return self._run_batch(self.plds.batch_insert, list(edges))

    def delete_batch(self, edges: Iterable[Edge]) -> int:
        return self._run_batch(self.plds.batch_delete, list(edges))

    def apply_batch(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[int, int]:
        return self._run_batch(
            self.plds.apply_batch, list(insertions), list(deletions)
        )

    # -- reads ----------------------------------------------------------
    def read(self, v: Vertex) -> float:
        return self.read_verbose(v).estimate

    def read_level(self, v: Vertex) -> int:
        return self.read_verbose(v).level

    def read_verbose(self, v: Vertex) -> ReadResult:
        waited = 0
        with self._cond:
            if self._in_batch:
                self._waiting += 1
                try:
                    while self._in_batch:
                        self._cond.wait()
                        waited += 1
                finally:
                    self._waiting -= 1
                    if self._waiting == 0:
                        self._cond.notify_all()
            lvl = self.plds.state.level[v]
            batch = self.batch_number
        return ReadResult(
            estimate=self.params.coreness_estimate(lvl),
            level=lvl,
            from_descriptor=False,
            retries=waited,
            batch=batch,
        )

    # -- conveniences ----------------------------------------------------
    def coreness_estimate(self, v: Vertex) -> float:
        return self.plds.coreness_estimate(v)

    def levels(self) -> list[int]:
        return self.plds.levels()

    @property
    def graph(self):
        return self.plds.graph

    @property
    def backend(self) -> str:
        return self.plds.state.backend

    def snapshot_state(self) -> dict:
        """Capture the full quiescent state (no batch in flight)."""
        return {
            "backend": self.backend,
            "batch_number": self.batch_number,
            "plds": self.plds.snapshot_state(),
        }

    def restore_state(self, snap: dict) -> None:
        """Restore a :meth:`snapshot_state` capture in place."""
        self.plds.restore_state(snap["plds"])
        self.batch_number = snap["batch_number"]

    def check_invariants(self) -> None:
        self.plds.check_invariants()
