"""The vectorized batch-update engine (``columnar-frontier``).

This module rewrites the CPLDS batch pipeline as whole-frontier numpy array
passes while keeping the *observable algorithm* bit-identical to the object
engine — same movers, same rounds, same move/round/marked/DAG counters, same
read protocol answers — which is what lets ``bench_gate`` treat the work
counters as a proof that only the execution strategy changed:

* the PLDS phase loops run per-level/per-round over int64 frontier arrays
  (:func:`run_insert_rounds` / :func:`run_delete_rounds`), with neighbour
  gathers served by the per-phase CSR view of
  :class:`~repro.lds.store.FrontierLevelStore` and level changes applied by
  its scatter kernels;
* the marking discipline of :class:`~repro.core.marking.DescriptorTable` is
  replaced by flat ``marked``/``old_level`` arrays plus a
  :class:`~repro.unionfind.vectorized.VectorizedUnionFind` parent forest
  (:class:`FrontierMarkingHooks`); dependency-DAG edges are derived from the
  same gathered rows the level kernels use, and merged in one grouped union
  per phase;
* reads (:meth:`FrontierCPLDS.read`) walk the parent array instead of
  descriptor objects — same sandwich, same MARKED/NOT_MARKED semantics,
  because unions are deferred to the phase end: mid-phase every marked
  vertex is its own root, so a reader that finds ``marked[v]`` returns
  ``old_level[v]`` exactly as ``check_DAG`` would.

Hook dispatch
-------------
The round drivers adapt to whatever hooks are installed:

* a bare :class:`~repro.lds.plds.UpdateHooks` (the NonSync/SyncReads
  baselines, the plain PLDS engine) — no marking work at all;
* :class:`FrontierMarkingHooks` (``supports_bulk_moves``) — whole-frontier
  marking from the gathered rows, zero per-vertex Python;
* anything else (a :class:`~repro.runtime.inject.HookChain` carrying chaos
  hooks, probes, ledgers, or a classic
  :class:`~repro.core.cplds._MarkingHooks`) — the scalar per-mover
  ``before_move`` loop, preserving every observer's call sequence.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.cplds import (
    CPLDS,
    ReadResult,
    _BATCHES,
    _DAGS,
    _MARKED,
    _READ_RETRIES,
    _READS_VERBOSE,
    _RETRY_HIST,
)
from repro.errors import ReproError
from repro.lds.plds import PLDS, Phase, UpdateHooks, _noop
from repro.obs import REGISTRY as _OBS
from repro.obs.flightrec import RECORDER as _REC, EventType as _EV
from repro.obs.staleness import (
    READS_DESCRIPTOR as _READS_DESCRIPTOR,
    READS_LIVE as _READS_LIVE,
    STALENESS_EPOCHS as _STALENESS,
)
from repro.runtime.executor import Executor, SequentialExecutor
from repro.types import Edge, Vertex
from repro.unionfind.vectorized import VectorizedUnionFind

_EMPTY = np.empty(0, dtype=np.int64)

#: Rounds with at most this many movers run through the scalar per-vertex
#: path — for one or two movers a couple of set_level calls beat the fixed
#: cost of a dozen array kernels.  Both paths produce identical observable
#: state (differentially pinned), so the threshold is purely a performance
#: knob; 4 measured best on the bundled datasets (larger values regress —
#: the array kernels win surprisingly early).
_SMALL_FRONTIER = 4


def _hook_mode(hooks: UpdateHooks) -> str:
    """``noop`` / ``bulk`` / ``scalar`` — see the module docstring."""
    if type(hooks) is UpdateHooks:
        return "noop"
    if getattr(hooks, "supports_bulk_moves", False):
        return "bulk"
    return "scalar"


def _noop_round(executor: Executor, size: int) -> None:
    """Account one decision round of ``size`` items without the O(size)
    no-op Python calls when the executor is the plain sequential one (the
    observable state — ``executor.stats`` — is identical either way)."""
    if type(executor) is SequentialExecutor:
        executor.stats.note(size)
    else:
        executor.run_round(_noop, range(size))


# ----------------------------------------------------------------------
# Phase drivers (replacing PLDS._run_insert_rounds / _run_delete_rounds)
# ----------------------------------------------------------------------
def run_insert_rounds(plds: PLDS, applied: Sequence[Edge]) -> None:
    """Insertion sweep over whole per-level frontiers (Invariant 1)."""
    state = plds.state
    hooks = plds.hooks
    mode = _hook_mode(hooks)
    executor = plds.executor
    level_arr = state._level_arr
    max_level = plds.params.max_level
    hooks.batch_begin("insert", applied)
    try:
        pending: dict[int, list[np.ndarray]] = {}
        heap: list[int] = []

        def enqueue(arr: np.ndarray, lvl: int) -> None:
            bucket = pending.get(lvl)
            if bucket is None:
                pending[lvl] = [arr]
                heapq.heappush(heap, lvl)
            else:
                bucket.append(arr)

        if applied:
            eps = np.unique(
                np.asarray(applied, dtype=np.int64).reshape(-1, 2).ravel()
            )
            lv = level_arr[eps]
            order = np.argsort(lv, kind="stable")
            se, sl = eps[order], lv[order]
            starts = np.flatnonzero(np.r_[True, sl[1:] != sl[:-1]])
            bounds = np.append(starts, len(se))
            for i, s0 in enumerate(starts):
                enqueue(se[s0 : bounds[i + 1]], int(sl[s0]))

        while heap:
            lvl = heapq.heappop(heap)
            chunks = pending.pop(lvl, None)
            if chunks is None:
                continue
            cand = (
                chunks[0]
                if len(chunks) == 1
                else np.unique(np.concatenate(chunks))
            )
            cands = cand[level_arr[cand] == lvl]
            if cands.size:
                _noop_round(executor, int(cands.size))
                movers = state.bulk_inv1_violators_arr(cands)
            else:
                movers = _EMPTY
            if movers.size == 0 or lvl >= max_level:
                continue
            new_level = lvl + 1
            if movers.size <= _SMALL_FRONTIER:
                # Tiny round: the fixed cost of a dozen array kernels
                # exceeds a handful of scalar moves.  Identical observable
                # state — hooks fire first (as in the bulk path), then
                # per-vertex set_level, then the post-move requeue scan.
                movers_list = movers.tolist()
                if mode != "noop":
                    for v in movers_list:
                        hooks.before_move(v, lvl, new_level, "insert")
                for v in movers_list:
                    state.set_level(v, new_level)
                plds._count_moves(len(movers_list))
                enqueue(movers, new_level)
                level = state.level
                graph = plds.graph
                req = [
                    w
                    for v in movers_list
                    for w in graph.neighbors_unsafe(v)
                    if level[w] == new_level
                ]
                if req:
                    enqueue(np.unique(np.asarray(req, dtype=np.int64)), new_level)
                hooks.round_boundary()
                continue
            src, flat = state.gather_rows(movers)
            if mode == "bulk":
                hooks.bulk_insert_moves(movers, lvl, src, flat)
            elif mode == "scalar":
                for v in movers.tolist():
                    hooks.before_move(v, lvl, new_level, "insert")
            requeue = state.bulk_raise_level_rows(movers, lvl, src, flat)
            plds._count_moves(int(movers.size))
            enqueue(movers, new_level)
            if requeue.size:
                enqueue(requeue, new_level)
            hooks.round_boundary()
    finally:
        hooks.batch_end()


def run_delete_rounds(plds: PLDS, applied: Sequence[Edge]) -> None:
    """Deletion rounds over the whole outstanding frontier (Invariant 2)."""
    state = plds.state
    hooks = plds.hooks
    mode = _hook_mode(hooks)
    executor = plds.executor
    level_arr = state._level_arr
    hooks.batch_begin("delete", applied)
    try:
        if applied:
            outstanding = np.unique(
                np.asarray(applied, dtype=np.int64).reshape(-1, 2).ravel()
            )
        else:
            outstanding = _EMPTY
        while outstanding.size:
            _noop_round(executor, int(outstanding.size))
            viols, desires = state.bulk_desire_levels_arr(outstanding)
            if viols.size == 0:
                break
            lstar = int(desires.min())
            movers = viols[desires == lstar]
            if movers.size <= _SMALL_FRONTIER:
                # Tiny round: interleaved scalar moves, as in the object
                # engine's delete loop (hook-time levels matter for the
                # marking trigger scans).
                level = state.level
                for v in movers.tolist():
                    if mode != "noop":
                        hooks.before_move(v, level[v], lstar, "delete")
                    state.set_level(v, lstar)
                plds._count_moves(int(movers.size))
                graph = plds.graph
                grow = [
                    w
                    for v in movers.tolist()
                    for w in graph.neighbors_unsafe(v)
                    if level[w] > lstar
                ]
                if grow:
                    outstanding = np.unique(
                        np.concatenate(
                            [viols, np.asarray(grow, dtype=np.int64)]
                        )
                    )
                else:
                    outstanding = viols
                hooks.round_boundary()
                continue
            src, flat = state.gather_rows(movers)
            if mode == "bulk":
                old_levels = level_arr[movers].copy()
                hooks.bulk_delete_moves(movers, old_levels, lstar, src, flat)
                state.bulk_move_to_level_rows(movers, lstar, src, flat)
            elif mode == "scalar":
                level = state.level
                for v in movers.tolist():
                    old = level[v]
                    hooks.before_move(v, old, lstar, "delete")
                    state.set_level(v, lstar)
            else:
                state.bulk_move_to_level_rows(movers, lstar, src, flat)
            plds._count_moves(int(movers.size))
            # Neighbours left strictly above the landing level re-check next
            # round, alongside every current violator (movers included —
            # they may violate again at lstar).
            if flat.size:
                grow = flat[level_arr[flat] > lstar]
                outstanding = np.unique(np.concatenate([viols, grow]))
            else:
                outstanding = viols
            hooks.round_boundary()
    finally:
        hooks.batch_end()


# ----------------------------------------------------------------------
# Array marking (replacing DescriptorTable for the frontier engine)
# ----------------------------------------------------------------------
class FrontierMarkingHooks(UpdateHooks):
    """The paper's marking discipline over flat arrays.

    State lives on the owning :class:`FrontierCPLDS`: ``_marked`` (bool),
    ``_old_level`` (int64, valid where marked) and ``_uf`` (the parent
    forest; self-root convention).  DAG-edge *pairs* are accumulated in
    buffers during the rounds and merged with one grouped union at phase
    end — deferring the unions is safe because a mid-phase reader that
    finds ``marked[v]`` set must return ``old_level[v]`` no matter which
    DAG ``v`` belongs to.

    Pair derivation matches the hook-time trigger scans of
    :class:`~repro.core.cplds._MarkingHooks` exactly (the differential suite
    pins marked/DAG counts): for an insertion round at level ℓ a gathered
    row (mover ``v``, neighbour ``w``) yields a pair iff ``level(w) >= ℓ``
    and ``w`` is marked or a co-mover; for a deletion round the mover→
    non-mover and mover→mover cases encode the two hook orderings of the
    scalar interleaving; and batch-edge partner pairs reduce to "both
    endpoints marked by phase end" (each hook-time partner pair implies it,
    and it implies the pair the later-marked endpoint would have added).
    """

    supports_bulk_moves = True

    __slots__ = ("cp", "_phase", "_edges", "_pair_chunks", "_pairs_scalar")

    def __init__(self, cp: "FrontierCPLDS") -> None:
        self.cp = cp
        self._phase: Phase = "insert"
        self._edges: Sequence[Edge] = ()
        self._pair_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._pairs_scalar: list[tuple[int, int]] = []

    # -- phase boundaries ----------------------------------------------
    def batch_begin(self, kind: Phase, edges: Sequence[Edge]) -> None:
        cp = self.cp
        self._phase = kind
        cp.batch_number += 1
        if _REC.enabled:
            _REC.record(
                _EV.BATCH_BEGIN,
                cp.batch_number,
                0 if kind == "insert" else 1,
                len(edges),
            )
        self._edges = edges
        self._pair_chunks.clear()
        self._pairs_scalar.clear()

    # -- scalar mode (chained hooks) -----------------------------------
    def before_move(self, v: Vertex, old: int, new: int, phase: Phase) -> None:
        """Per-mover marking, identical trigger scan to ``_MarkingHooks``
        (partner pairs are handled uniformly at :meth:`batch_end`)."""
        cp = self.cp
        marked = cp._marked
        level = cp.plds.state.level
        lv = level[v]
        pairs = self._pairs_scalar
        if phase == "insert":
            for w in cp.plds.graph.neighbors_unsafe(v):
                if level[w] >= lv and marked[w]:
                    pairs.append((v, w))
        else:
            bound = lv - 1
            for w in cp.plds.graph.neighbors_unsafe(v):
                if level[w] < bound and marked[w]:
                    pairs.append((v, w))
        if not marked[v]:
            cp._old_level[v] = old
            marked[v] = True  # published after old_level, like the table

    # -- bulk mode (whole-frontier rounds) ------------------------------
    def bulk_insert_moves(
        self,
        movers: np.ndarray,
        lvl: int,
        src: np.ndarray,
        flat: np.ndarray,
    ) -> None:
        cp = self.cp
        marked = cp._marked
        if flat.size:
            stamp = cp.plds.state._stamp
            stamp[movers] = True
            trigger = (cp.plds.state._level_arr[flat] >= lvl) & (
                marked[flat] | stamp[flat]
            )
            stamp[movers] = False
            if trigger.any():
                self._pair_chunks.append((src[trigger], flat[trigger]))
        newly = movers[~marked[movers]]
        cp._old_level[newly] = lvl
        marked[movers] = True

    def bulk_delete_moves(
        self,
        movers: np.ndarray,
        old_levels: np.ndarray,
        lstar: int,
        src: np.ndarray,
        flat: np.ndarray,
    ) -> None:
        cp = self.cp
        marked = cp._marked
        if flat.size:
            level_arr = cp.plds.state._level_arr
            stamp = cp.plds.state._stamp
            stamp[movers] = True
            w_moves = stamp[flat]
            stamp[movers] = False
            lw = level_arr[flat]  # pre-move levels
            old_src = level_arr[src]
            below = lw < old_src - 1
            # mover → marked non-mover strictly below ℓ(v) − 1 …
            pair = ~w_moves & marked[flat] & below
            # … and mover–mover pairs, once per edge (src < flat row): the
            # later-processed endpoint sees the earlier one at lstar, or the
            # earlier one saw the later one already marked below the bound.
            pair |= (
                w_moves
                & (src < flat)
                & ((lstar < lw - 1) | (marked[flat] & below))
            )
            if pair.any():
                self._pair_chunks.append((src[pair], flat[pair]))
        fresh = ~marked[movers]
        newly = movers[fresh]
        cp._old_level[newly] = old_levels[fresh]
        marked[movers] = True

    # -- phase end: union, telemetry, unmark ----------------------------
    def batch_end(self) -> None:
        cp = self.cp
        marked = cp._marked
        uf = cp._uf
        # Batch-edge partner pairs: both endpoints marked by phase end.
        edges = self._edges
        if edges:
            earr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            both = marked[earr[:, 0]] & marked[earr[:, 1]]
            if both.any():
                self._pair_chunks.append((earr[both, 0], earr[both, 1]))
        if self._pairs_scalar:
            sarr = np.asarray(self._pairs_scalar, dtype=np.int64).reshape(-1, 2)
            self._pair_chunks.append((sarr[:, 0], sarr[:, 1]))
        if self._pair_chunks:
            a = np.concatenate([x for x, _ in self._pair_chunks])
            b = np.concatenate([x for _, x in self._pair_chunks])
            # Dedup before the union: rounds re-derive the same dependency
            # edge many times (and mover–mover rows twice per round), and
            # union cost scales with the pair count, not the edge count.
            key = np.unique(np.minimum(a, b) * np.int64(marked.shape[0]) + np.maximum(a, b))
            uf.union_pairs(key // marked.shape[0], key % marked.shape[0])
            if _REC.enabled:
                # One grouped event per phase-end union (the object engine
                # emits one per CAS link): root=-1, merged=deduped pair count.
                _REC.record(_EV.DAG_MERGE, -1, int(key.size))
        marked_idx = np.flatnonzero(marked)
        roots = uf.find_many(marked_idx)
        cp.last_batch_marked = int(marked_idx.size)
        cp.last_batch_dags = int(np.unique(roots).size)
        cp.last_batch_dag_map = {
            int(v): int(r) for v, r in zip(marked_idx, roots)
        }
        if _OBS.enabled:
            _BATCHES.inc()
            _MARKED.inc(cp.last_batch_marked)
            _DAGS.inc(cp.last_batch_dags)
        if _REC.enabled:
            _REC.record(
                _EV.BATCH_END,
                cp.batch_number,
                cp.last_batch_marked,
                cp.last_batch_dags,
                cp.plds.last_batch_moves,
            )
        # Same executor accounting as DescriptorTable.unmark_all's three
        # parfor rounds (classify / clear roots / clear rest).
        executor = cp.plds.executor
        size = int(marked_idx.size)
        _noop_round(executor, size)
        _noop_round(executor, size)
        _noop_round(executor, size)
        # Reader-visible unmark, roots first: a walker that reaches a
        # cleared root falls back to the live level, exactly like check_DAG.
        is_root = uf.parent[marked_idx] == marked_idx
        marked[marked_idx[is_root]] = False
        marked[marked_idx[~is_root]] = False
        # Reset the forest to singletons for the next phase (unions only
        # ever touch marked vertices).
        uf.parent[marked_idx] = marked_idx
        self._pair_chunks.clear()
        self._pairs_scalar.clear()
        self._edges = ()
        cp._publish_epoch()


class FrontierCPLDS(CPLDS):
    """CPLDS running entirely on the frontier pipeline.

    Constructed by ``engines.create(..., backend="columnar-frontier")``.
    Public surface, protocol guarantees and work counters are identical to
    :class:`~repro.core.cplds.CPLDS`; the inherited (empty)
    ``DescriptorTable`` keeps checkpointing and introspection tooling
    working unchanged.
    """

    def __init__(
        self,
        num_vertices: int,
        params=None,
        executor: Executor | None = None,
        max_read_retries: int = 10_000_000,
        backend: str = "columnar-frontier",
    ) -> None:
        super().__init__(
            num_vertices,
            params=params,
            executor=executor,
            max_read_retries=max_read_retries,
            backend=backend,
        )
        self._marked = np.zeros(num_vertices, dtype=bool)
        self._old_level = np.zeros(num_vertices, dtype=np.int64)
        self._uf = VectorizedUnionFind(num_vertices)
        self.plds.hooks = FrontierMarkingHooks(self)

    # ------------------------------------------------------------------
    # Reads: the sandwich over the parent array
    # ------------------------------------------------------------------
    def read(self, v: Vertex) -> float:
        """Algorithm 4 against the array marking state.

        ``v`` counts as marked iff walking its parent chain reaches a node
        that is both marked and a root — the array transcription of
        ``check_DAG`` (an unmarked node on the path means the DAG's root
        was already cleared, roots being unmarked first).
        """
        level = self.plds.state.level
        marked = self._marked
        parent = self._uf.parent
        old_level = self._old_level
        estimates = self.params.estimate_table
        retries = 0
        while True:
            b1 = self.batch_number
            l1 = level[v]
            node = v
            in_dag = False
            while marked[node]:
                p = int(parent[node])
                if p == node:
                    in_dag = True
                    break
                node = p
            l2 = level[v]
            b2 = self.batch_number
            if b1 == b2:
                if in_dag:
                    if _OBS.enabled:
                        _READS_DESCRIPTOR.inc()
                        _STALENESS.observe(1)
                    return estimates[int(old_level[v])]
                if l1 == l2:
                    if _OBS.enabled:
                        _READS_LIVE.inc()
                        _STALENESS.observe(0)
                    return estimates[l1]
            retries += 1
            if _OBS.enabled:
                _READ_RETRIES.inc()
            if _REC.enabled:
                _REC.record(_EV.READ_RETRY, v, b1, b2, retries)
            if retries > self.max_read_retries:
                raise ReproError(
                    f"read({v}) exceeded {self.max_read_retries} retries; "
                    "the update stream is outpacing the reader"
                )

    def read_verbose(self, v: Vertex) -> ReadResult:
        level = self.plds.state.level
        marked = self._marked
        parent = self._uf.parent
        params = self.params
        retries = 0
        result = None
        while result is None:
            b1 = self.batch_number
            l1 = level[v]
            node = v
            in_dag = False
            while marked[node]:
                p = int(parent[node])
                if p == node:
                    in_dag = True
                    break
                node = p
            l2 = level[v]
            b2 = self.batch_number
            if b1 == b2:
                if in_dag:
                    old = int(self._old_level[v])
                    result = ReadResult(
                        estimate=params.coreness_estimate(old),
                        level=old,
                        from_descriptor=True,
                        retries=retries,
                        batch=b1,
                    )
                    break
                if l1 == l2:
                    result = ReadResult(
                        estimate=params.coreness_estimate(l1),
                        level=l1,
                        from_descriptor=False,
                        retries=retries,
                        batch=b1,
                    )
                    break
            retries += 1
            if _REC.enabled:
                _REC.record(_EV.READ_RETRY, v, b1, b2, retries)
            if retries > self.max_read_retries:
                raise ReproError(
                    f"read({v}) exceeded {self.max_read_retries} retries; "
                    "the update stream is outpacing the reader"
                )
        if _OBS.enabled:
            _READS_VERBOSE.inc()
            if result.from_descriptor:
                _READS_DESCRIPTOR.inc()
                _STALENESS.observe(1)
            else:
                _READS_LIVE.inc()
                _STALENESS.observe(0)
            if retries:
                _READ_RETRIES.inc(retries)
                _RETRY_HIST.observe(retries)
        if _REC.enabled:
            _REC.record(
                _EV.READ_OK,
                v,
                result.batch,
                1 if result.from_descriptor else 0,
                retries,
            )
        return result

    # ------------------------------------------------------------------
    # Recovery / state management
    # ------------------------------------------------------------------
    def _reset_marking(self) -> None:
        self._marked[:] = False
        parent = self._uf.parent
        parent[:] = np.arange(len(parent), dtype=np.int64)
        hooks = self._frontier_hooks()
        if hooks is not None:
            hooks._pair_chunks.clear()
            hooks._pairs_scalar.clear()
            hooks._edges = ()

    def _frontier_hooks(self) -> FrontierMarkingHooks | None:
        hooks = self.plds.hooks
        return hooks if isinstance(hooks, FrontierMarkingHooks) else None

    def restore_state(self, snap: dict) -> None:
        self._reset_marking()
        super().restore_state(snap)

    def rebuild(self) -> None:
        self._reset_marking()
        super().rebuild()

    def check_invariants(self) -> None:
        super().check_invariants()
        if self._marked.any():
            leaked = np.flatnonzero(self._marked)[:10].tolist()
            raise AssertionError(f"marked flags leaked past batch end: {leaked}")
