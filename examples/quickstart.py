#!/usr/bin/env python3
"""Quickstart: maintain an approximate k-core decomposition under updates.

Builds a CPLDS over a small social-style graph, streams edges in as batches,
reads coreness estimates (the linearizable read path), deletes some edges,
and compares every estimate against the exact decomposition.

Run:  python examples/quickstart.py
"""

from repro.core import CPLDS
from repro.exact import core_decomposition
from repro.graph import generators
from repro.lds.coreness import approximation_factor


def main() -> None:
    n = 500
    edges = generators.chung_lu(n, 2500, exponent=2.3, seed=42)

    # One structure, sized for the vertex universe.  Defaults are the
    # paper's parameters (delta=0.2, lambda=9 -> 2.8-approximation).
    kcore = CPLDS(n)

    # Stream the graph in as update batches (insertions here; deletions and
    # mixed batches work the same way).
    batch_size = 500
    for i in range(0, len(edges), batch_size):
        applied = kcore.insert_batch(edges[i : i + batch_size])
        print(
            f"batch {kcore.batch_number}: applied {applied} edges, "
            f"{kcore.last_batch_marked} vertices moved in "
            f"{kcore.last_batch_dags} dependency DAGs"
        )

    # Reads are linearizable and lock-free; they may be called from any
    # thread, concurrently with update batches.
    print("\ncoreness estimates for the first 10 vertices:")
    for v in range(10):
        print(f"  vertex {v:3d}: k^ = {kcore.read(v):8.3f}")

    # Delete a third of the edges and re-check.
    kcore.delete_batch(edges[::3])
    print(f"\nafter deleting {len(edges[::3])} edges:")
    for v in range(10):
        print(f"  vertex {v:3d}: k^ = {kcore.read(v):8.3f}")

    # Every estimate stays within the theoretical (2+epsilon) bound of the
    # exact coreness.
    exact = core_decomposition(kcore.graph)
    bound = kcore.params.theoretical_approximation_factor()
    worst = max(
        (
            approximation_factor(kcore.read(v), int(exact[v]))
            for v in range(n)
            if exact[v] >= 1
        ),
        default=1.0,
    )
    print(f"\nworst error vs exact coreness: {worst:.3f} (bound: {bound:.2f})")
    assert worst <= bound + 1e-9
    print("quickstart OK")


if __name__ == "__main__":
    main()
