#!/usr/bin/env python3
"""Social-network monitoring: low-latency influence queries under churn.

The paper motivates asynchronous reads with social-network workloads: the
user-facing read path must stay responsive while follow/unfollow churn is
applied in throughput-oriented batches.  This example simulates exactly that:

* a preferential-attachment "follower graph" with celebrity hubs,
* an update thread applying batches of follows (insertions) and unfollows
  (deletions),
* dashboard reader threads continuously asking "how embedded is this user?"
  (their coreness estimate) — concurrently with the in-flight batches,

and prints the latency profile of all three strategies on the same stream:
the CPLDS, the blocking SyncReads baseline, and the unsafe NonSync baseline.

Run:  python examples/social_network_monitor.py
"""

from repro.core import CPLDS, NonSyncKCore, SyncReadsKCore
from repro.graph import generators
from repro.harness.stats import LatencyStats
from repro.runtime.threads import run_concurrent_session
from repro.workloads import BatchStream


def build_stream() -> BatchStream:
    n = 2000
    follows = generators.preferential_attachment(n, 5, seed=7)
    # Half the follow edges later churn away as unfollows.
    return BatchStream.insert_then_delete(
        "social", n, follows, batch_size=1500, delete_fraction=0.4,
        shuffle_seed=1,
    )


def main() -> None:
    implementations = {
        "CPLDS (this paper)": lambda n: CPLDS(n),
        "SyncReads (blocking)": lambda n: SyncReadsKCore(n),
        "NonSync (unsafe)": lambda n: NonSyncKCore(n),
    }

    print(f"{'strategy':22s}  {'reads':>8s}  {'mean':>12s}  {'p99':>12s}  {'p99.99':>12s}")
    summaries = {}
    for label, factory in implementations.items():
        stream = build_stream()
        impl = factory(stream.num_vertices)
        session = run_concurrent_session(
            impl, stream, num_readers=2, reader_seed=3, name=label
        )
        latencies = session.read_latencies(in_flight_only=True)
        if not latencies:
            print(f"{label:22s}  (no in-flight reads captured)")
            continue
        stats = LatencyStats.from_samples(latencies).scaled(1e6)  # -> us
        summaries[label] = stats
        print(
            f"{label:22s}  {stats.count:8d}  {stats.mean:10.1f}us  "
            f"{stats.p99:10.1f}us  {stats.p9999:10.1f}us"
        )

    cp = summaries.get("CPLDS (this paper)")
    sync = summaries.get("SyncReads (blocking)")
    nosync = summaries.get("NonSync (unsafe)")
    if cp and sync:
        print(
            f"\nCPLDS answers influence queries {sync.mean / cp.mean:,.0f}x "
            "faster than the blocking baseline"
        )
    if cp and nosync:
        print(
            f"... at only {cp.mean / nosync.mean:.2f}x the cost of the "
            "non-linearizable one, with correctness guaranteed."
        )


if __name__ == "__main__":
    main()
