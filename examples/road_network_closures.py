#!/usr/bin/env python3
"""Road-network resilience: track core structure under closures/reopenings.

Road networks are the paper's low-coreness regime (Table 1's *ctr*/*usa*
rows, largest k = 3).  Coreness here separates the grid's well-connected
interior (2-core and the rare 3-core pockets formed by diagonal connectors)
from dead-end roads (1-core) — a cheap structural health signal.

This example applies alternating *closure* (deletion) and *reopening*
(insertion) batches to a grid road network and reports how the coreness
histogram shifts, using exact decomposition as the audit at each step.

Run:  python examples/road_network_closures.py
"""

from collections import Counter

import numpy as np

from repro.core import CPLDS
from repro.exact import core_decomposition
from repro.graph import generators


def coreness_histogram(kcore: CPLDS, n: int) -> Counter:
    """Histogram of *estimated* coreness values across all vertices."""
    return Counter(round(kcore.read(v), 2) for v in range(n))


def main() -> None:
    rows = cols = 40
    n = rows * cols
    roads = generators.grid_road(rows, cols, diagonal_fraction=0.08, seed=11)
    print(f"road network: {n} junctions, {len(roads)} road segments")

    kcore = CPLDS(n)
    kcore.insert_batch(roads)
    print("initial estimated-coreness histogram:", dict(coreness_histogram(kcore, n)))
    exact = core_decomposition(kcore.graph)
    print(f"exact max coreness (audit): {exact.max()}\n")

    rng = np.random.default_rng(5)
    closed: list[tuple[int, int]] = []
    for step in range(6):
        if step % 2 == 0:
            # Close a random 10% of currently open segments.
            open_edges = list(kcore.graph.edges())
            picks = rng.choice(len(open_edges), size=len(open_edges) // 10, replace=False)
            batch = [open_edges[i] for i in picks]
            kcore.delete_batch(batch)
            closed.extend(batch)
            action = f"closed {len(batch)} segments"
        else:
            # Reopen everything previously closed.
            batch, closed = closed, []
            kcore.insert_batch(batch)
            action = f"reopened {len(batch)} segments"

        hist = coreness_histogram(kcore, n)
        exact = core_decomposition(kcore.graph)
        isolated = sum(1 for v in range(n) if kcore.graph.degree(v) == 0)
        print(
            f"step {step}: {action:26s} histogram={dict(sorted(hist.items()))} "
            f"exact max k={exact.max()} isolated junctions={isolated}"
        )

    kcore.check_invariants()
    print("\nall LDS invariants hold after the closure/reopening churn")


if __name__ == "__main__":
    main()
