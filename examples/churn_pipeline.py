#!/usr/bin/env python3
"""End-to-end churn pipeline: mixed batches, derived views, checkpointing.

A production-shaped tour of the library beyond the core read/update path:

1. drive a CPLDS with a *sliding-window churn stream* (edges arrive, live
   for a few batches, then depart — the steady-state follow/unfollow shape),
2. after every batch, consume the decomposition through the §9 extension
   views — the O(α) out-degree orientation and the approximate densest
   subgraph,
3. checkpoint the structure mid-stream, restore it, and show the restored
   replica answers identically and keeps ingesting.

Run:  python examples/churn_pipeline.py
"""

import os
import tempfile

from repro.core import CPLDS
from repro.extensions import LowOutDegreeOrientation, densest_subgraph_estimate
from repro.graph import generators
from repro.persist import load_cplds, save_cplds
from repro.workloads import MixedStreamGenerator


def main() -> None:
    n = 600
    edges = generators.community_overlay(
        n, num_communities=3, community_size=25, background_edges=1200, seed=21
    )
    stream = MixedStreamGenerator(edges, batch_size=400, window=3, seed=21)

    kcore = CPLDS(n)
    orientation = LowOutDegreeOrientation(kcore)
    checkpoint = os.path.join(tempfile.gettempdir(), "repro_churn.npz")

    print(f"{'batch':>5s}  {'+ins':>5s}  {'-del':>5s}  {'edges':>6s}  "
          f"{'max out-deg':>11s}  {'densest':>8s}")
    for i, batch in enumerate(stream, start=1):
        ins, dels = kcore.apply_batch(
            insertions=batch.insertions, deletions=batch.deletions
        )
        dense = densest_subgraph_estimate(kcore)
        print(
            f"{i:5d}  {ins:5d}  {dels:5d}  {kcore.graph.num_edges:6d}  "
            f"{orientation.max_out_degree():11d}  {dense.density:8.2f}"
        )
        if i == 3:
            save_cplds(kcore, checkpoint)
            print(f"      ... checkpointed to {checkpoint}")

    # Restore the mid-stream checkpoint and verify replica equivalence.
    replica = load_cplds(checkpoint)
    print("\nrestored replica: "
          f"{replica.graph.num_edges} edges at batch {replica.batch_number}")
    sample = range(0, n, max(1, n // 8))
    print("replica reads (v: estimate):",
          {v: replica.read(v) for v in sample})
    replica.insert_batch(edges[:50])
    replica.check_invariants()
    print("replica accepted a fresh batch after restore — pipeline OK")
    os.unlink(checkpoint)


if __name__ == "__main__":
    main()
