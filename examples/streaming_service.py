#!/usr/bin/env python3
"""A miniature coreness service: concurrent producers, paced trace, SLOs.

The deployment shape the paper's introduction describes, end to end:

* producer threads submit follow/unfollow updates to a
  :class:`BatchCoordinator`, which forms batches by size/time policy and
  applies them on its own update thread;
* a timestamped trace is replayed at accelerated speed and every update's
  **visibility lag** (arrival → readable) is measured — the freshness SLO;
* reader threads keep querying coreness estimates throughout, never blocked
  by the ingestion path.

Run:  python examples/streaming_service.py
"""

import threading

from repro.core import CPLDS
from repro.graph import generators
from repro.runtime.replay import replay_trace, synthesize_trace
from repro.workloads import UniformReadGenerator


def main() -> None:
    n = 1000
    edges = generators.preferential_attachment(n, 3, seed=13)
    # A rate the pure-Python update path sustains with headroom; scale it up
    # to watch the visibility-lag SLO degrade gracefully under overload.
    rate = 1500.0
    trace = synthesize_trace(edges, rate=rate, delete_fraction=0.25, seed=13)
    print(f"trace: {len(trace)} events over "
          f"{trace[-1].at:.2f} trace-seconds ({rate:,.0f} updates/sec)")

    kcore = CPLDS(n)

    # Dashboard readers run for the duration of the replay.
    stop = threading.Event()
    read_counts = [0, 0]

    def dashboard(idx):
        gen = UniformReadGenerator(n, seed=idx)
        while not stop.is_set():
            kcore.read(gen.next())
            read_counts[idx] += 1

    readers = [
        threading.Thread(target=dashboard, args=(i,), daemon=True)
        for i in range(2)
    ]
    for r in readers:
        r.start()

    report = replay_trace(
        kcore, trace, speed=1.0, max_batch=256, max_delay=0.02
    )
    stop.set()
    for r in readers:
        r.join(5.0)

    lag = report.lag_stats.scaled(1e3)  # -> milliseconds
    print(f"\nreplayed {report.events} events in {report.duration:.2f}s "
          f"({report.throughput:,.0f} updates/s) across {report.batches} batches")
    print(f"visibility lag: mean={lag.mean:.2f}ms  p99={lag.p99:.2f}ms  "
          f"max={lag.max:.2f}ms")
    print(f"dashboard reads served concurrently: {sum(read_counts):,}")
    kcore.check_invariants()
    print("structure healthy after the full stream — service OK")


if __name__ == "__main__":
    main()
