#!/usr/bin/env python3
"""Why the dependency DAG exists: watch NonSync and the strawman fail.

Reproduces the paper's Section 4 motivation interactively:

1. NonSync reads concurrent with a cascading insertion batch return
   *intermediate* levels — values that never existed at any batch boundary
   (the checker's rule A; the unbounded-error problem of §6.3).
2. The naive per-vertex-descriptor strawman avoids intermediate values but
   produces *new-old inversions* inside one causal dependency chain (rule C).
3. The CPLDS, under the same adversarial schedules, produces a history with
   zero violations.

Run:  python examples/linearizability_demo.py
"""

from repro.core import CPLDS, NaiveMarkedKCore, NonSyncKCore
from repro.runtime.executor import SequentialExecutor
from repro.runtime.inject import InjectionProbe, ProbeExecutor, attach_probe
from repro.verify import LinearizabilityChecker, RecordedKCore


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


def show(label: str, violations) -> None:
    print(f"{label}: {len(violations)} violation(s)")
    for v in violations[:3]:
        print(f"   [rule {v.rule}] {v.message}")
    if len(violations) > 3:
        print(f"   ... and {len(violations) - 3} more")
    print()


def demo_nonsync() -> None:
    n = 10
    impl = NonSyncKCore(n)
    rec = RecordedKCore(impl)

    def read_everything(_tag):
        for v in range(n):
            rec.read(v)

    attach_probe(impl, InjectionProbe(read_everything))
    rec.insert_batch(clique(n))  # one cascading batch
    show("NonSync under a cascading batch", LinearizabilityChecker(rec.history).violations())


def demo_naive() -> None:
    n = 8
    impl = NaiveMarkedKCore(n)
    rec = RecordedKCore(impl)
    for e in clique(n)[:13]:
        rec.insert_batch([e])
    before = impl.levels()

    def read_chain(_v):
        for u in range(4):
            rec.read(u)

    impl.on_unmark_step = read_chain
    rec.insert_batch([(2, 3)])  # a single edge whose cascade moves 0..3
    after = impl.levels()
    changed = [v for v in range(n) if before[v] != after[v]]
    # One updated edge => one causal DAG over everything that moved.
    rec.history.batches[-1].dag_of.update({v: changed[0] for v in changed})
    show(
        "Naive strawman during its unmark sequence",
        LinearizabilityChecker(rec.history).violations(),
    )


def demo_cplds() -> None:
    n = 10
    impl = CPLDS(n)
    rec = RecordedKCore(impl)

    def read_everything(_tag):
        for v in range(n):
            rec.read(v)

    attach_probe(impl, InjectionProbe(read_everything))
    # Interleave reads between *individual* unmark steps too — the
    # root-first unmark ordering is what keeps this safe.
    impl.plds.executor = ProbeExecutor(
        SequentialExecutor(), read_everything, per_item=True
    )
    rec.insert_batch(clique(n))
    rec.delete_batch(clique(n)[::2])
    violations = LinearizabilityChecker(rec.history).violations()
    show("CPLDS under the same adversarial schedules", violations)
    assert not violations


def main() -> None:
    demo_nonsync()
    demo_naive()
    demo_cplds()
    print("CPLDS history admits a valid linearization — as Theorem 6.1 promises.")


if __name__ == "__main__":
    main()
