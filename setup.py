"""Legacy setup shim.

Kept because this offline environment lacks the ``wheel`` package that modern
``pip install -e .`` requires; ``python setup.py develop`` installs the same
editable package without it.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
