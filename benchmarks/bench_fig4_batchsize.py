"""Fig 4: read latency across insertion batch sizes.

Shape checks: SyncReads latency grows with the batch size (reads wait for
ever-longer batches), while CPLDS and NonSync stay roughly flat — the paper's
"at least five/seven orders of magnitude" separation grows with batch size.
"""

from repro.harness import experiments as E
from repro.harness import report as R

BATCH_SIZES = (500, 1000, 2000, 4000)


def test_fig4_latency_vs_batch_size(benchmark, config, emit):
    cfg = config.with_(datasets=config.datasets[:2])
    rows = benchmark.pedantic(
        E.fig4, args=(cfg, BATCH_SIZES), rounds=1, iterations=1
    )
    emit("Fig 4: read latency vs insertion batch size", R.render_fig4(rows))

    for dataset in cfg.datasets:
        sync = {
            r.batch_size: r.stats.mean
            for r in rows
            if r.dataset == dataset and r.impl == "syncreads"
        }
        cplds = {
            r.batch_size: r.stats.mean
            for r in rows
            if r.dataset == dataset and r.impl == "cplds"
        }
        if len(sync) >= 2:
            small, large = min(sync), max(sync)
            assert sync[large] > sync[small], (
                f"{dataset}: SyncReads latency did not grow with batch size"
            )
        if cplds and sync:
            # At the largest batch size the separation is widest.
            big = max(sync)
            if big in cplds:
                assert sync[big] > 20 * cplds[big]
