"""Fig 3: read latency (avg / p99 / p99.99) under insertion & deletion batches.

Shape checks (the paper's findings at reproduction scale):

* CPLDS read latency is orders of magnitude below SyncReads (paper: up to
  4.05e5x on 10^6-edge batches; the factor scales with batch duration);
* CPLDS stays within a small constant factor of NonSync (paper: <= 3.21x).
"""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig3_read_latency(benchmark, backend_config, emit):
    config = backend_config
    rows = benchmark.pedantic(E.fig3, args=(config,), rounds=1, iterations=1)
    emit(
        f"Fig 3: read latency by implementation [{config.backend}]",
        R.render_fig3(rows),
    )

    by = {(r.dataset, r.impl, r.phase): r.stats for r in rows}
    checked_sync = checked_nonsync = 0
    for (dataset, impl, phase), stats in by.items():
        if impl != "cplds":
            continue
        sync = by.get((dataset, "syncreads", phase))
        if sync is not None:
            assert sync.mean > 20 * stats.mean, (
                f"{dataset}/{phase}: SyncReads mean {sync.mean} not ≫ "
                f"CPLDS mean {stats.mean}"
            )
            checked_sync += 1
        nonsync = by.get((dataset, "nonsync", phase))
        if nonsync is not None:
            assert stats.mean <= 12 * nonsync.mean, (
                f"{dataset}/{phase}: CPLDS read overhead vs NonSync "
                f"exceeded 12x"
            )
            checked_nonsync += 1
    assert checked_sync >= 1, "no CPLDS-vs-SyncReads pair measured"
    assert checked_nonsync >= 1, "no CPLDS-vs-NonSync pair measured"


def test_cplds_read_kernel(benchmark, config):
    """Microbenchmark of a single linearizable read on a quiescent CPLDS."""
    from repro.graph import datasets as ds

    n, edges = ds.DATASETS[config.datasets[0]].build_edges()
    impl = E.make_impl("cplds", n, config)
    impl.insert_batch(edges)
    est = benchmark(impl.read, 0)
    assert est >= 1.0
