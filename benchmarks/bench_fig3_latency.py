"""Fig 3: read latency (avg / p99 / p99.99) under insertion & deletion batches.

Shape checks (the paper's findings at reproduction scale):

* CPLDS read latency is orders of magnitude below SyncReads (paper: up to
  4.05e5x on 10^6-edge batches; the factor scales with batch duration);
* CPLDS stays within a small constant factor of NonSync (paper: <= 3.21x).

De-noising: each phase's warmup batches are trimmed
(``warmup_fraction=0.1``; see :func:`repro.harness.stats.trim_warmup` for
why) and the whole driver is repeated ``_TRIALS`` times, with the shape
assertions made on the *median* per-(dataset, impl, phase) mean — one
perturbed trial (GC pause, scheduler interference) cannot flip the gate.
"""

from repro.harness import experiments as E
from repro.harness import report as R
from repro.harness.stats import median_of_trials

#: Repeated-trial count for the medianized shape checks.
_TRIALS = 3


def test_fig3_read_latency(benchmark, backend_config, emit):
    config = backend_config.with_(warmup_fraction=0.1)
    trials: list[list[E.LatencyRow]] = []

    def run_once():
        rows = E.fig3(config)
        trials.append(rows)
        return rows

    benchmark.pedantic(run_once, rounds=_TRIALS, iterations=1)
    emit(
        f"Fig 3: read latency by implementation [{config.backend}] "
        f"(median of {_TRIALS} trials, warmup trimmed)",
        R.render_fig3(trials[0]),
    )

    # Median of per-trial means for every (dataset, impl, phase) present
    # in all trials — the de-noised aggregate the shape checks run on.
    per_key: dict[tuple, list[float]] = {}
    for rows in trials:
        for r in rows:
            per_key.setdefault((r.dataset, r.impl, r.phase), []).append(
                r.stats.mean
            )
    by = {
        key: median_of_trials(means)
        for key, means in per_key.items()
        if len(means) == _TRIALS
    }
    checked_sync = checked_nonsync = 0
    for (dataset, impl, phase), mean in by.items():
        if impl != "cplds":
            continue
        sync = by.get((dataset, "syncreads", phase))
        if sync is not None:
            assert sync > 20 * mean, (
                f"{dataset}/{phase}: SyncReads median mean {sync} not ≫ "
                f"CPLDS median mean {mean}"
            )
            checked_sync += 1
        nonsync = by.get((dataset, "nonsync", phase))
        if nonsync is not None:
            assert mean <= 12 * nonsync, (
                f"{dataset}/{phase}: CPLDS read overhead vs NonSync "
                f"exceeded 12x"
            )
            checked_nonsync += 1
    assert checked_sync >= 1, "no CPLDS-vs-SyncReads pair measured"
    assert checked_nonsync >= 1, "no CPLDS-vs-NonSync pair measured"


def test_cplds_read_kernel(benchmark, config):
    """Microbenchmark of a single linearizable read on a quiescent CPLDS."""
    from repro.graph import datasets as ds

    n, edges = ds.DATASETS[config.datasets[0]].build_edges()
    impl = E.make_impl("cplds", n, config)
    impl.insert_batch(edges)
    est = benchmark(impl.read, 0)
    assert est >= 1.0
