"""Micro-benchmark: the cost of disabled (and enabled) instrumentation.

The observability layer's core promise is that a *disabled* registry costs
one branch on the hot paths (``if REGISTRY.enabled:``).  This bench
quantifies that promise two ways:

* ``test_disabled_guard_cost`` — the raw per-call price of the guard
  pattern against an unguarded baseline loop;
* ``test_insert_batch_overhead`` — an end-to-end CPLDS insertion batch
  with observability off vs on (off must be within a few percent of the
  pre-instrumentation baseline; the CI acceptance bound is ≤2% on the
  Fig 5 quick config).

The flight recorder (``repro.obs.flightrec``) makes the same promise
with the same pattern (``if RECORDER.enabled:``), pinned here too:

* ``test_recorder_disabled_guard_within_2x_of_registry`` — the
  recorder's disabled guard must stay within 2x of the registry's
  (~2–3 ns/call), and a disabled recorder must record nothing;
* ``test_recorder_enabled_batch_overhead`` — recorder + staleness
  accounting enabled end to end.  The acceptance target is ≤3% over the
  obs-enabled baseline on the Fig 5 quick config (measured offline; the
  precise ratio is emitted); the in-test assertion is a loose 1.5x so a
  noisy CI runner cannot flake it.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.cplds import CPLDS
from repro.obs import flightrec
from repro.obs.flightrec import EventType

_N_CALLS = 200_000


def _bare_loop(n: int) -> int:
    acc = 0
    for _ in range(n):
        acc += 1
    return acc


def _guarded_loop(n: int) -> int:
    reg = obs.REGISTRY
    counter = reg.counter("bench_guard_total")
    acc = 0
    for _ in range(n):
        if reg.enabled:
            counter.inc()
        acc += 1
    return acc


def test_disabled_guard_cost(benchmark, emit):
    obs.disable()
    obs.reset()

    t0 = time.perf_counter()
    _bare_loop(_N_CALLS)
    bare = time.perf_counter() - t0

    guarded = benchmark.pedantic(
        lambda: _guarded_loop(_N_CALLS), rounds=3, iterations=1
    )
    t0 = time.perf_counter()
    _guarded_loop(_N_CALLS)
    guarded = time.perf_counter() - t0

    per_call_ns = (guarded - bare) / _N_CALLS * 1e9
    emit(
        "obs disabled-guard cost",
        f"bare loop      {bare * 1e3:8.2f} ms\n"
        f"guarded loop   {guarded * 1e3:8.2f} ms\n"
        f"guard cost     {per_call_ns:8.1f} ns/call",
    )
    assert obs.REGISTRY.counter_value("bench_guard_total") == 0


def _recorder_guarded_loop(n: int) -> int:
    rec = flightrec.RECORDER
    acc = 0
    for _ in range(n):
        if rec.enabled:
            rec.record(EventType.NOTE, 1)
        acc += 1
    return acc


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` runs — the standard noise
    filter for sub-ns-per-iteration measurements."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_recorder_disabled_guard_within_2x_of_registry(benchmark, emit):
    obs.disable()
    obs.reset()
    rec = flightrec.RECORDER
    was = rec.enabled
    rec.disable()
    rec.clear()
    try:
        benchmark.pedantic(
            lambda: _recorder_guarded_loop(_N_CALLS), rounds=3, iterations=1
        )
        bare = _best_of(lambda: _bare_loop(_N_CALLS))
        reg_loop = _best_of(lambda: _guarded_loop(_N_CALLS))
        rec_loop = _best_of(lambda: _recorder_guarded_loop(_N_CALLS))
        reg_ns = max((reg_loop - bare) / _N_CALLS * 1e9, 0.0)
        rec_ns = max((rec_loop - bare) / _N_CALLS * 1e9, 0.0)
        emit(
            "flight-recorder disabled-guard cost vs registry",
            f"registry guard {reg_ns:8.1f} ns/call\n"
            f"recorder guard {rec_ns:8.1f} ns/call",
        )
        # +2 ns absolute slack: the difference of two ~ns quantities is
        # noise-dominated on a loaded runner.
        assert rec_ns <= 2.0 * reg_ns + 2.0, (
            f"recorder guard {rec_ns:.1f} ns/call exceeds 2x the "
            f"registry's {reg_ns:.1f} ns/call"
        )
        assert rec.total == 0 and rec.events() == []
    finally:
        rec.enabled = was


def _clique_batch(k: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(k) for v in range(u + 1, k)]


def test_insert_batch_overhead(benchmark, emit):
    batch = _clique_batch(40)
    n = 64

    def run_once(enabled: bool) -> float:
        if enabled:
            obs.enable()
        else:
            obs.disable()
        obs.reset()
        best = float("inf")
        for _ in range(3):
            cp = CPLDS(n)
            t0 = time.perf_counter()
            cp.insert_batch(batch)
            best = min(best, time.perf_counter() - t0)
        return best

    off = benchmark.pedantic(lambda: run_once(False), rounds=1, iterations=1)
    on = run_once(True)
    obs.disable()
    obs.reset()
    emit(
        "obs end-to-end overhead (one 40-clique insert batch)",
        f"disabled  {off * 1e3:8.2f} ms\n"
        f"enabled   {on * 1e3:8.2f} ms\n"
        f"enabled/disabled = {on / off:5.3f}x",
    )
    # Enabled instrumentation is allowed real cost, but not pathological.
    assert on < off * 3.0


def test_recorder_enabled_batch_overhead(benchmark, emit):
    """Recorder + staleness accounting on top of an enabled registry.

    Acceptance target: ≤3% over the obs-enabled baseline on the Fig 5
    quick config (the emitted ratio is what the target is checked
    against offline); the assertion is a CI-safe 1.5x.
    """
    batch = _clique_batch(40)
    n = 64
    rec = flightrec.RECORDER
    was = rec.enabled

    def run_once(record: bool) -> float:
        obs.enable()
        obs.reset()
        rec.clear()
        rec.enabled = record
        best = float("inf")
        for _ in range(5):
            cp = CPLDS(n)
            t0 = time.perf_counter()
            cp.insert_batch(batch)
            for v in range(n):
                cp.read(v)
            best = min(best, time.perf_counter() - t0)
        return best

    try:
        base = benchmark.pedantic(
            lambda: run_once(False), rounds=1, iterations=1
        )
        base = run_once(False)
        with_rec = run_once(True)
        assert rec.total > 0, "recorder saw no events while enabled"
    finally:
        rec.enabled = was
        rec.clear()
        obs.disable()
        obs.reset()
    emit(
        "flight-recorder enabled overhead (40-clique batch + reads, obs on)",
        f"recorder off {base * 1e3:8.2f} ms\n"
        f"recorder on  {with_rec * 1e3:8.2f} ms\n"
        f"on/off = {with_rec / base:5.3f}x  (target ≤ 1.03x offline)",
    )
    assert with_rec < base * 1.5
