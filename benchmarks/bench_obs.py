"""Micro-benchmark: the cost of disabled (and enabled) instrumentation.

The observability layer's core promise is that a *disabled* registry costs
one branch on the hot paths (``if REGISTRY.enabled:``).  This bench
quantifies that promise two ways:

* ``test_disabled_guard_cost`` — the raw per-call price of the guard
  pattern against an unguarded baseline loop;
* ``test_insert_batch_overhead`` — an end-to-end CPLDS insertion batch
  with observability off vs on (off must be within a few percent of the
  pre-instrumentation baseline; the CI acceptance bound is ≤2% on the
  Fig 5 quick config).
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.cplds import CPLDS

_N_CALLS = 200_000


def _bare_loop(n: int) -> int:
    acc = 0
    for _ in range(n):
        acc += 1
    return acc


def _guarded_loop(n: int) -> int:
    reg = obs.REGISTRY
    counter = reg.counter("bench_guard_total")
    acc = 0
    for _ in range(n):
        if reg.enabled:
            counter.inc()
        acc += 1
    return acc


def test_disabled_guard_cost(benchmark, emit):
    obs.disable()
    obs.reset()

    t0 = time.perf_counter()
    _bare_loop(_N_CALLS)
    bare = time.perf_counter() - t0

    guarded = benchmark.pedantic(
        lambda: _guarded_loop(_N_CALLS), rounds=3, iterations=1
    )
    t0 = time.perf_counter()
    _guarded_loop(_N_CALLS)
    guarded = time.perf_counter() - t0

    per_call_ns = (guarded - bare) / _N_CALLS * 1e9
    emit(
        "obs disabled-guard cost",
        f"bare loop      {bare * 1e3:8.2f} ms\n"
        f"guarded loop   {guarded * 1e3:8.2f} ms\n"
        f"guard cost     {per_call_ns:8.1f} ns/call",
    )
    assert obs.REGISTRY.counter_value("bench_guard_total") == 0


def _clique_batch(k: int) -> list[tuple[int, int]]:
    return [(u, v) for u in range(k) for v in range(u + 1, k)]


def test_insert_batch_overhead(benchmark, emit):
    batch = _clique_batch(40)
    n = 64

    def run_once(enabled: bool) -> float:
        if enabled:
            obs.enable()
        else:
            obs.disable()
        obs.reset()
        best = float("inf")
        for _ in range(3):
            cp = CPLDS(n)
            t0 = time.perf_counter()
            cp.insert_batch(batch)
            best = min(best, time.perf_counter() - t0)
        return best

    off = benchmark.pedantic(lambda: run_once(False), rounds=1, iterations=1)
    on = run_once(True)
    obs.disable()
    obs.reset()
    emit(
        "obs end-to-end overhead (one 40-clique insert batch)",
        f"disabled  {off * 1e3:8.2f} ms\n"
        f"enabled   {on * 1e3:8.2f} ms\n"
        f"enabled/disabled = {on / off:5.3f}x",
    )
    # Enabled instrumentation is allowed real cost, but not pathological.
    assert on < off * 3.0
