"""Baseline quality/cost comparison: every coreness computation in the repo.

One table putting the whole algorithmic cast side by side on the same graph:

* exact bucket peeling (static, the ground truth),
* h-index iteration (static, exact, local/parallelisable),
* exact dynamic traversal (incremental),
* the CPLDS (2+ε)-approximate dynamic structure (batched, concurrent reads).

Not a paper figure — it is the sanity table a reviewer asks for: how much
accuracy does the approximation give up, and what does each paradigm cost.
"""

import time

import numpy as np

from repro.core import CPLDS
from repro.exact import DynamicExactKCore, core_decomposition, hindex_coreness
from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness.report import format_table
from repro.lds import LDSParams
from repro.lds.coreness import approximation_factor


def test_all_coreness_algorithms(benchmark, config, emit):
    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    edges = edges[:6000]

    def measure():
        rows = []
        # Static exact: peeling.
        from repro.graph import DynamicGraph

        g = DynamicGraph(n, edges)
        t0 = time.perf_counter()
        exact = core_decomposition(g)
        rows.append(("peeling (static exact)", time.perf_counter() - t0, 1.0))

        # Static exact: h-index iteration.
        t0 = time.perf_counter()
        hvals = hindex_coreness(g)
        t_h = time.perf_counter() - t0
        assert np.array_equal(hvals, exact)
        rows.append(("h-index (static exact)", t_h, 1.0))

        # Incremental exact.
        dyn = DynamicExactKCore(n)
        t0 = time.perf_counter()
        dyn.insert_batch(edges)
        rows.append(
            ("traversal (dynamic exact)", time.perf_counter() - t0, 1.0)
        )

        # Approximate batched.
        cp = CPLDS(n, params=LDSParams(n, levels_per_group=20))
        t0 = time.perf_counter()
        for i in range(0, len(edges), config.batch_size):
            cp.insert_batch(edges[i : i + config.batch_size])
        t_cp = time.perf_counter() - t0
        worst = max(
            (
                approximation_factor(cp.read(v), int(exact[v]))
                for v in range(n)
                if exact[v] >= 1
            ),
            default=1.0,
        )
        rows.append(("CPLDS (dynamic approx)", t_cp, worst))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"Baseline comparison on {name} ({len(edges)} edges)",
        format_table(["algorithm", "time (s)", "worst error"], rows),
    )
    worst = {r[0]: r[2] for r in rows}
    assert worst["CPLDS (dynamic approx)"] <= 2.81
    for label, _, err in rows[:3]:
        assert err == 1.0, f"{label} should be exact"
