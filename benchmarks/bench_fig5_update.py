"""Fig 5: average and maximum batch update times.

Shape checks: NonSync has the lowest update times (its update path is the
bare PLDS); the CPLDS pays a bounded marking overhead on top (paper: at most
1.48x; we allow more slack for Python constant factors and GIL reader
contention, see EXPERIMENTS.md).
"""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig5_update_times(benchmark, backend_config, emit):
    config = backend_config
    rows = benchmark.pedantic(E.fig5, args=(config,), rounds=1, iterations=1)
    emit(
        f"Fig 5: batch update time [{config.backend}]", R.render_fig5(rows)
    )

    by = {(r.dataset, r.impl, r.phase): r for r in rows}
    checked = 0
    for (dataset, impl, phase), row in by.items():
        if impl != "cplds":
            continue
        base = by.get((dataset, "nonsync", phase))
        if base is None:
            continue
        assert base.mean <= row.mean * 1.25, (
            f"{dataset}/{phase}: NonSync updates unexpectedly slower than "
            "CPLDS (marking overhead cannot be negative)"
        )
        assert row.mean <= 4.0 * base.mean, (
            f"{dataset}/{phase}: CPLDS marking overhead "
            f"{row.mean / base.mean:.2f}x exceeds the expected band"
        )
        checked += 1
    assert checked >= 1


def test_batch_insert_kernel(benchmark, config):
    """Microbenchmark of one CPLDS insertion batch (fresh structure each
    round, via pedantic setup)."""
    from repro.graph import datasets as ds

    n, edges = ds.DATASETS[config.datasets[0]].build_edges()
    batch = edges[: config.batch_size]

    def setup():
        return (E.make_impl("cplds", n, config),), {}

    def run(impl):
        impl.insert_batch(batch)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
