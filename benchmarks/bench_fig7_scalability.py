"""Fig 7: read/write throughput scalability (virtual-time machine).

Shape checks (see DESIGN.md for why this figure runs on the modeled machine
rather than the GIL-bound wall clock):

* read throughput grows with reader count for CPLDS and NonSync;
* NonSync read throughput >= CPLDS (paper: up to 2.21x — no DAG traversal);
* write throughput grows with update cores, saturating at the batch span;
* NonSync write throughput >= CPLDS (no marking), and SyncReads pays for its
  synchronous reads in the paper's throughput accounting.
"""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig7_scalability(benchmark, backend_config, emit):
    cfg = backend_config.with_(datasets=backend_config.datasets[:2])
    rows = benchmark.pedantic(E.fig7, args=(cfg,), rounds=1, iterations=1)
    emit(
        f"Fig 7: throughput scalability (virtual ticks) [{cfg.backend}]",
        R.render_fig7(rows),
    )

    def series(dataset, impl, direction, attr):
        pts = sorted(
            (r.count, getattr(r, attr))
            for r in rows
            if r.dataset == dataset and r.impl == impl and r.direction == direction
        )
        return [v for _, v in pts]

    for dataset in cfg.datasets:
        # Read-side scaling.
        for impl in ("cplds", "nonsync"):
            reads = series(dataset, impl, "readers", "read_throughput")
            assert reads == sorted(reads), f"{dataset}/{impl}: read tput not monotone"
            assert reads[-1] > 2 * reads[0]
        cp = series(dataset, "cplds", "readers", "read_throughput")
        ns = series(dataset, "nonsync", "readers", "read_throughput")
        for c, n in zip(cp, ns):
            assert n >= c, f"{dataset}: NonSync read tput fell below CPLDS"
            assert n <= 4 * c, f"{dataset}: read tput gap implausibly large"

        # Write-side scaling.
        for impl in ("cplds", "nonsync"):
            writes = series(dataset, impl, "writers", "write_throughput")
            assert writes == sorted(writes)
            assert writes[-1] > 1.5 * writes[0]
        cpw = series(dataset, "cplds", "writers", "write_throughput")
        nsw = series(dataset, "nonsync", "writers", "write_throughput")
        srw = series(dataset, "syncreads", "writers", "write_throughput")
        for c, n in zip(cpw, nsw):
            assert n >= c, f"{dataset}: NonSync write tput fell below CPLDS"
        for s, n in zip(srw, nsw):
            assert s <= n, f"{dataset}: SyncReads write tput above NonSync"
