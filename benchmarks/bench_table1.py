"""Table 1: graph sizes and largest k for every dataset stand-in.

Regenerates the paper's Table 1 rows side-by-side with the synthetic
stand-ins' actual statistics, and benchmarks the exact peeling kernel that
computes the "largest value of k" column.
"""

from repro.exact import core_decomposition
from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness import report as R


def test_table1_rows(benchmark, config, emit):
    rows = benchmark.pedantic(
        E.table1, args=(config.datasets,), rounds=1, iterations=1
    )
    emit("Table 1 (paper vs stand-in)", R.render_table1(rows))
    assert len(rows) == len(config.datasets)
    for row in rows:
        assert row.standin_vertices > 0
        assert row.standin_edges > 0
        # The stand-in preserves the regime: road networks stay at k=3,
        # everything else has a nontrivial core hierarchy.
        if row.name in ("ctr", "usa"):
            assert row.standin_max_k == 3
        else:
            assert row.standin_max_k >= 4


def test_exact_peeling_kernel(benchmark):
    """pytest-benchmark timing of the Table 1 compute kernel itself."""
    graph = ds.load("dblp")
    cores = benchmark(core_decomposition, graph)
    assert int(cores.max()) > 0
