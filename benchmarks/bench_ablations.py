"""Ablations of the design choices DESIGN.md calls out.

* **Group height (the paper's -opt flag)**: shallower groups trade
  approximation error for update speed — the reason the paper runs with
  ``-opt 20`` and its deletion errors can exceed 2.8.
* **Path compression in check_DAG**: the read-side optimization of §5.2;
  without it, repeated reads of deep dependency chains re-traverse every hop.
* **Marking cost decomposition**: what the CPLDS update overhead (Fig 5's
  CPLDS-vs-NonSync gap) is actually spent on.
"""

import pytest

from repro.core import CPLDS, NonSyncKCore
from repro.core.marking import DescriptorTable
from repro.exact import core_decomposition
from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness.report import format_table
from repro.lds import LDSParams
from repro.lds.coreness import approximation_factor


def test_ablation_group_height(benchmark, config, emit):
    """Error vs update-work tradeoff across the -opt sweep."""
    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()

    def sweep():
        rows = []
        for height in (5, 10, 20, 40, None):
            params = LDSParams(n, levels_per_group=height)
            impl = CPLDS(n, params=params)
            moves = 0
            for i in range(0, len(edges), config.batch_size):
                impl.insert_batch(edges[i : i + config.batch_size])
                moves += impl.plds.last_batch_moves
            exact = core_decomposition(impl.graph)
            worst = max(
                (
                    approximation_factor(impl.read(v), int(exact[v]))
                    for v in range(n)
                    if exact[v] >= 1
                ),
                default=1.0,
            )
            rows.append(
                (
                    "theory" if height is None else height,
                    params.num_levels,
                    moves,
                    worst,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Ablation: group height (-opt) on {name}",
        format_table(["levels/group", "K", "total moves", "max error"], rows),
    )
    # Shallower groups => fewer moves; error bounded by 2.8 at every height
    # for insertions (the theory bound is height-independent).
    moves = [r[2] for r in rows]
    assert moves == sorted(moves), "moves should increase with group height"
    for r in rows:
        assert r[3] <= 2.81


def test_ablation_threaded_decision_rounds(benchmark, config, emit):
    """Sequential vs thread-pool executor on the read-only decision rounds.

    An honest negative result under the GIL: the threaded executor cannot
    speed Python bytecode up, and the chunking overhead shows.  This is
    precisely the measurement motivating the DESIGN.md substitution (the
    paper's 30-core scaling is reproduced in the virtual-time machine, not
    on the wall clock).
    """
    import time

    from repro.runtime.executor import SequentialExecutor, ThreadedExecutor

    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    edges = edges[:6000]

    def measure():
        out = []
        for label, make_ex in (
            ("sequential", SequentialExecutor),
            ("2 threads", lambda: ThreadedExecutor(2)),
            ("4 threads", lambda: ThreadedExecutor(4)),
        ):
            ex = make_ex()
            impl = CPLDS(n, params=LDSParams(n, levels_per_group=20), executor=ex)
            t0 = time.perf_counter()
            for i in range(0, len(edges), config.batch_size):
                impl.insert_batch(edges[i : i + config.batch_size])
            elapsed = time.perf_counter() - t0
            out.append((label, elapsed, ex.stats.rounds, ex.stats.items))
            if hasattr(ex, "shutdown"):
                ex.shutdown()
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"Ablation: executor substrate on {name} (GIL negative result)",
        format_table(["executor", "total insert (s)", "rounds", "items"], rows),
    )
    # Same logical work regardless of executor.
    assert len({(r[2], r[3]) for r in rows}) == 1


def test_ablation_path_compression(benchmark, emit):
    """check_DAG with vs without compression on a deep descriptor chain."""
    depth = 200

    class NoCompressTable(DescriptorTable):
        __slots__ = ()

        @staticmethod
        def _compress(trail, target):
            pass

    def build(compress: bool) -> tuple[DescriptorTable, object]:
        table = DescriptorTable(depth) if compress else NoCompressTable(depth)
        table.mark(0, old_level=0, related=[], batch=1)
        for v in range(1, depth):
            table.mark(v, old_level=0, related=[], batch=1)
            # Build an explicit chain v -> v-1 (bypassing the normal merge,
            # which would collapse it immediately).
            table.slots[v].parent = v - 1
        return table, table.slots[depth - 1]

    table_c, leaf_c = build(compress=True)
    table_n, leaf_n = build(compress=False)

    import timeit

    # First read pays the full traversal either way; subsequent reads only
    # benefit under compression.
    t_compressed = timeit.timeit(lambda: table_c.check_dag(leaf_c), number=2000)
    t_plain = timeit.timeit(lambda: table_n.check_dag(leaf_n), number=2000)
    emit(
        "Ablation: read-side path compression",
        format_table(
            ["variant", "2000 reads of a depth-200 chain (s)"],
            [("with compression", t_compressed), ("without", t_plain)],
        ),
    )
    assert t_compressed < t_plain, "compression should pay for itself"

    def kernel():
        table_c.check_dag(leaf_c)

    benchmark(kernel)


def test_ablation_sim_cost_sensitivity(benchmark, config, emit):
    """Fig 7 robustness: the modeled shapes hold across cost-model choices.

    The virtual-time machine's absolute numbers depend on the tick costs;
    the *claims* (NonSync ≥ CPLDS read throughput by a small factor, write
    scaling with cores) must not.  Sweep the descriptor-check cost across
    an order of magnitude and check the invariants at each point.
    """
    from repro.runtime.sim import SimSession
    from repro.runtime.simcost import CostModel
    from repro.workloads import BatchStream

    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    edges = edges[:4000]

    def stream():
        return BatchStream.insert_then_delete(name, n, edges, 800)

    def sweep():
        rows = []
        for read_dag in (0.2, 1.0, 2.0):
            cost = CostModel(read_dag=read_dag)
            cp = SimSession(
                CPLDS(n, params=LDSParams(n, levels_per_group=20)),
                "cplds", num_readers=8, cost=cost,
            ).run(stream())
            nsn = SimSession(
                NonSyncKCore(n, params=LDSParams(n, levels_per_group=20)),
                "nonsync", num_readers=8, cost=cost,
            ).run(stream())
            ratio = nsn.read_throughput() / cp.read_throughput()
            rows.append(
                (read_dag, round(cp.read_throughput(), 3),
                 round(nsn.read_throughput(), 3), round(ratio, 3))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation: Fig 7 cost-model sensitivity (descriptor-check cost)",
        format_table(
            ["read_dag cost", "CPLDS rtput", "NonSync rtput", "ratio"], rows
        ),
    )
    for read_dag, cp_t, ns_t, ratio in rows:
        assert ns_t >= cp_t, "NonSync read throughput fell below CPLDS"
        # ratio = (read_base + read_dag) / read_base up to per-batch
        # flooring of reads-per-interval.
        assert ratio <= (1.0 + read_dag) * 1.05, (
            "throughput gap exceeded the modeled cost ratio"
        )
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios), "gap should grow with the DAG cost"


def test_ablation_exact_vs_approximate(benchmark, config, emit):
    """Exact traversal-based maintenance vs the approximate batch structure.

    The related-work motivation for approximate maintenance: the exact
    traversal algorithm pays per-edge subcore searches (which blow up on
    graphs with large same-coreness regions), while the PLDS amortises the
    whole batch over one level sweep and gives up only a (2+ε) factor.
    """
    import time

    from repro.exact import DynamicExactKCore

    # One dataset per core-depth regime: exact maintenance wins while
    # subcores stay small, and loses increasingly as cores deepen.
    REGIMES = [("dblp", None), ("brain", None), ("lj", 9000)]

    def measure():
        out = []
        for name, cap in REGIMES:
            n, edges = ds.DATASETS[name].build_edges()
            if cap is not None:
                edges = edges[:cap]
            exact = DynamicExactKCore(n)
            t0 = time.perf_counter()
            exact.insert_batch(edges)
            t_exact = time.perf_counter() - t0
            approx = CPLDS(n, params=LDSParams(n, levels_per_group=20))
            t0 = time.perf_counter()
            for i in range(0, len(edges), config.batch_size):
                approx.insert_batch(edges[i : i + config.batch_size])
            t_approx = time.perf_counter() - t0
            worst = 1.0
            cores = exact.corenesses()
            for v in range(n):
                if cores[v] >= 1:
                    worst = max(
                        worst,
                        approximation_factor(approx.read(v), int(cores[v])),
                    )
            out.append(
                (name, len(edges), t_exact, t_approx, t_exact / t_approx, worst)
            )
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation: exact (traversal) vs approximate (CPLDS) insertion cost",
        format_table(
            [
                "dataset", "edges", "exact (s)", "approx (s)",
                "exact/approx", "worst CPLDS error",
            ],
            rows,
        ),
    )
    ratios = {r[0]: r[4] for r in rows}
    errors = [r[5] for r in rows]
    # The crossover: approximate maintenance pulls ahead as cores deepen.
    assert ratios["brain"] > ratios["dblp"]
    for err in errors:
        assert err <= 2.81


def test_ablation_marking_overhead(benchmark, config, emit):
    """Decompose the CPLDS-vs-NonSync update gap (Fig 5's overhead)."""
    import time

    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()

    def measure():
        out = []
        for kind in ("nonsync", "cplds"):
            impl = (
                NonSyncKCore(n, params=LDSParams(n, levels_per_group=20))
                if kind == "nonsync"
                else CPLDS(n, params=LDSParams(n, levels_per_group=20))
            )
            t0 = time.perf_counter()
            for i in range(0, len(edges), config.batch_size):
                impl.insert_batch(edges[i : i + config.batch_size])
            elapsed = time.perf_counter() - t0
            marked = getattr(impl, "last_batch_marked", 0)
            out.append((kind, elapsed, marked))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"Ablation: marking overhead on {name}",
        format_table(["impl", "total insert time (s)", "marked (last batch)"], rows),
    )
    times = {r[0]: r[1] for r in rows}
    overhead = times["cplds"] / times["nonsync"]
    print(f"\nCPLDS marking overhead: {overhead:.2f}x (paper: <= 1.48x in C++)")
    assert overhead < 4.0
