"""Shared configuration for the reproduction benches.

Scale is controlled by the ``REPRO_BENCH_CONFIG`` environment variable:

* ``quick`` (default) — a few datasets, one trial; every figure regenerates
  in well under a couple of minutes.
* ``full`` — all ten Table 1 stand-ins, three trials (the full reproduction
  sweep; budget ~20–40 minutes).

Every bench prints its rendered table, so ``pytest benchmarks/
--benchmark-only -s`` produces a textual version of the paper's evaluation
section.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import experiments as E


def _select_config() -> E.ExperimentConfig:
    choice = os.environ.get("REPRO_BENCH_CONFIG", "quick").lower()
    if choice == "full":
        return E.FULL
    if choice == "quick":
        return E.QUICK
    raise ValueError(f"unknown REPRO_BENCH_CONFIG {choice!r}")


@pytest.fixture(scope="session")
def config() -> E.ExperimentConfig:
    return _select_config()


@pytest.fixture(scope="session", params=("object", "columnar", "columnar-frontier"))
def backend(request) -> str:
    """Level-store backend axis (Fig 3/5/7 run once per backend)."""
    return request.param


@pytest.fixture(scope="session")
def backend_config(config, backend) -> E.ExperimentConfig:
    return config.with_(backend=backend)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered experiment table under a banner."""

    def _emit(title: str, body: str) -> None:
        print(f"\n=== {title} ===\n{body}\n")

    return _emit
