"""Benches for the §9 extension surfaces and skewed-read workloads.

Not figures from the paper — these cover the conclusion's "apply our data
structure to other graph problems" directions and the TAO-style skewed read
mix the introduction motivates, so the extension code paths have tracked
performance too.
"""

from repro.core import CPLDS
from repro.extensions import (
    LowOutDegreeOrientation,
    VertexUpdatableKCore,
    densest_subgraph_estimate,
    peeling_densest,
)
from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness.report import format_table
from repro.workloads import ZipfReadGenerator


def _loaded_cplds(config):
    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    impl = E.make_impl("cplds", n, config)
    for i in range(0, len(edges), config.batch_size):
        impl.insert_batch(edges[i : i + config.batch_size])
    return impl


def test_orientation_query_kernel(benchmark, config, emit):
    impl = _loaded_cplds(config)
    orientation = LowOutDegreeOrientation(impl)
    benchmark(orientation.out_degree, 0)
    orientation.check()
    emit(
        "Extension: low out-degree orientation",
        format_table(
            ["quantity", "value"],
            [
                ("max out-degree", orientation.max_out_degree()),
                ("invariant-1 bound at level of v0",
                 round(orientation.theoretical_out_degree_bound(0), 2)),
            ],
        ),
    )


def test_densest_subgraph_estimate(benchmark, config, emit):
    impl = _loaded_cplds(config)
    result = benchmark.pedantic(
        densest_subgraph_estimate, args=(impl,), rounds=3, iterations=1
    )
    ref = peeling_densest(impl.graph)
    emit(
        "Extension: densest subgraph",
        format_table(
            ["method", "density", "|S|"],
            [
                ("LDS level-suffix", round(result.density, 3), result.size),
                ("peeling 2-approx", round(ref.density, 3), ref.size),
            ],
        ),
    )
    assert result.density >= ref.density / 6.0


def test_vertex_batch_updates(benchmark, config):
    """Throughput of vertex-granularity batches (footnote 1)."""
    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    adj = {v: [] for v in range(n)}
    for u, v in edges:
        adj[max(u, v)].append(min(u, v))
    batch = [(v, adj[v]) for v in range(n)]

    def setup():
        return (VertexUpdatableKCore(n),), {}

    def run(ku):
        ku.insert_vertices(batch)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)


def test_zipf_read_mix(benchmark, config, emit):
    """Skewed (Zipf) reads against a loaded structure — the hot-vertex
    pattern of the social read path the paper motivates with."""
    impl = _loaded_cplds(config)
    gen = ZipfReadGenerator(impl.graph.num_vertices, s=1.2, seed=7)
    picks = gen.take(2000)

    def read_sweep():
        for v in picks:
            impl.read(v)

    benchmark(read_sweep)
    emit(
        "Extension: Zipf read mix",
        format_table(
            ["quantity", "value"],
            [("reads per sweep", len(picks)),
             ("distinct hot vertices", len(set(picks)))],
        ),
    )
