"""Fig 6: approximation error of concurrent reads vs the 2.8 bound.

Shape checks:

* CPLDS max error stays at or below the theoretical insertion bound (2.8
  with the paper's δ=0.2, λ=9);
* NonSync's max error exceeds CPLDS's (its reads can observe mid-cascade
  levels), and — per §6.3 — grows without bound as the per-batch core jump
  deepens, demonstrated by the flash-crowd sweep (paper: up to 52.7x; the
  reachable factor scales with the stand-ins' core depth, see
  EXPERIMENTS.md).
"""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig6_read_error(benchmark, config, emit):
    cfg = config if "brain" in config.datasets else config.with_(
        datasets=("brain",) + config.datasets
    )
    rows = benchmark.pedantic(E.fig6, args=(cfg,), rounds=1, iterations=1)
    emit("Fig 6: read approximation error", R.render_fig6(rows))

    by = {(r.dataset, r.impl, r.phase): r for r in rows}
    insertion_ok = 0
    for (dataset, impl, phase), row in by.items():
        if impl == "cplds" and phase == "insert":
            assert row.max_error <= row.theoretical_bound + 1e-9, (
                f"{dataset}: CPLDS insertion error {row.max_error} exceeds "
                f"the {row.theoretical_bound} bound"
            )
            insertion_ok += 1
    assert insertion_ok >= 1

    # On at least one dataset, NonSync must do worse than CPLDS.
    worse = [
        (d, p)
        for (d, impl, p), row in by.items()
        if impl == "nonsync"
        and (d, "cplds", p) in by
        and row.max_error > by[(d, "cplds", p)].max_error + 1e-9
    ]
    assert worse, "NonSync never exceeded CPLDS error on any dataset/phase"


def test_fig6_flash_unbounded_error(benchmark, emit):
    rows = benchmark.pedantic(
        E.fig6_flash, kwargs={"clique_sizes": (40, 80, 120)},
        rounds=1, iterations=1,
    )
    emit("Fig 6 (supplement): §6.3 flash-crowd error growth",
         R.render_fig6_flash(rows))

    ns = {r.clique_size: r.max_error for r in rows if r.impl == "nonsync"}
    cp = {r.clique_size: r.max_error for r in rows if r.impl == "cplds"}
    sizes = sorted(ns)
    # NonSync error grows with the core jump; CPLDS stays within the bound.
    assert ns[sizes[-1]] > ns[sizes[0]]
    assert ns[sizes[-1]] > 5.0
    for size in sizes:
        assert cp[size] <= 2.81
    gain = max(ns[s] / cp[s] for s in sizes)
    print(f"\nmax-error improvement of CPLDS over NonSync: {gain:.1f}x "
          "(grows with core depth; paper reached 52.7x at coreness ~1200)")
