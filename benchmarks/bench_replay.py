"""Service-level bench: ingestion throughput and visibility lag.

Not a paper figure — this measures the deployment-shaped question the
paper's motivation implies: at what update rate does the (pure-Python)
pipeline keep visibility lag bounded, and how does the batch-formation
policy trade throughput against freshness?
"""

from repro.core import CPLDS
from repro.graph import datasets as ds
from repro.harness import experiments as E
from repro.harness.report import format_table
from repro.runtime.replay import replay_trace, synthesize_trace


def test_visibility_lag_vs_batch_policy(benchmark, config, emit):
    name = config.datasets[0]
    n, edges = ds.DATASETS[name].build_edges()
    edges = edges[:3000]
    trace = synthesize_trace(edges, rate=2000.0, delete_fraction=0.0, seed=1)

    def sweep():
        rows = []
        for max_batch, max_delay in ((64, 0.002), (256, 0.01), (1024, 0.05)):
            impl = E.make_impl("cplds", n, config)
            report = replay_trace(
                impl, trace, speed=2.0, max_batch=max_batch, max_delay=max_delay
            )
            lag = report.lag_stats.scaled(1e3)
            rows.append(
                (
                    f"{max_batch}/{int(max_delay * 1e3)}ms",
                    report.batches,
                    round(report.throughput),
                    round(lag.mean, 2),
                    round(lag.p99, 2),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Replay: visibility lag vs batch policy on {name} "
        f"({len(trace)} events @ 4k/s replayed)",
        format_table(
            ["batch/delay", "batches", "events/s", "lag mean (ms)", "lag p99 (ms)"],
            rows,
        ),
    )
    # Larger windows => fewer batches.
    batches = [r[1] for r in rows]
    assert batches == sorted(batches, reverse=True)
    # Every policy applied the full trace.
    assert all(r[2] > 0 for r in rows)
