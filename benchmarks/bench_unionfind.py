"""Union-find strategy bench: the ConnectIt design-space slice.

The CPLDS's dependency-DAG merging is a union-find workload (many unions
during marking, many finds during reads); this bench measures the find
strategies' pointer-chase work on DAG-shaped workloads so the choice of
full path compression (what the paper's implementation uses via ConnectIt)
is justified by data in this repository too.

It also measures where :class:`repro.unionfind.vectorized.VectorizedUnionFind`
(whole-batch ``union_pairs`` over a numpy parent forest, used by the
``columnar-frontier`` engine) overtakes pairwise
:class:`~repro.unionfind.sequential.SequentialUnionFind` unions.  Measured on
random pairs over n=4096 (this container, CPython 3.12): the scalar loop wins
below ~64 pairs per batch, the two tie near ~100, and the array path wins
beyond ~128 pairs (1.3x at 1024 pairs) — which is why the frontier engine
buffers a whole batch's DAG-merge pairs, dedups them, and unions once at
batch end instead of unioning per move.
"""

import time

import numpy as np

from repro.harness.report import format_table
from repro.unionfind.sequential import SequentialUnionFind
from repro.unionfind.variants import FIND_STRATEGIES, VariantUnionFind
from repro.unionfind.vectorized import VectorizedUnionFind


def dag_workload(n=4096, unions=6000, finds=40000, seed=0):
    """Union/find mix shaped like a batch's marking phase + reader traffic."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(unions):
        a, b = rng.integers(0, n, size=2)
        ops.append(("u", int(a), int(b)))
    for _ in range(finds):
        ops.append(("f", int(rng.integers(0, n)), 0))
    rng.shuffle(ops)
    return n, ops


def run(strategy, n, ops):
    uf = VariantUnionFind(n, find_strategy=strategy)
    for kind, a, b in ops:
        if kind == "u":
            uf.union(a, b)
        else:
            uf.find(a)
    return uf.pointer_hops


def test_find_strategy_work(benchmark, emit):
    n, ops = dag_workload()
    rows = []
    for strategy in FIND_STRATEGIES:
        hops = run(strategy, n, ops)
        rows.append((strategy, hops))
    emit(
        "Union-find find-strategy pointer-chase work "
        f"({len(ops)} mixed ops, n={n})",
        format_table(["strategy", "pointer hops"], rows),
    )
    hops = dict(rows)
    # All write-performing strategies beat the naive one...
    for strategy in ("compress", "split", "halve"):
        assert hops[strategy] < hops["naive"]
    # ...and results agree regardless of strategy (semantic check).
    reps = {}
    for strategy in FIND_STRATEGIES:
        uf = VariantUnionFind(n, find_strategy=strategy)
        for kind, a, b in ops:
            if kind == "u":
                uf.union(a, b)
        reps[strategy] = [uf.find(x) for x in range(n)]
    assert len({tuple(v) for v in reps.values()}) == 1

    def kernel():
        run("compress", n, ops)

    benchmark(kernel)


def test_vectorized_crossover(benchmark, emit):
    """Sequential pairwise unions vs whole-batch ``union_pairs``.

    Reproduces the crossover documented in the module docstring: the scalar
    loop wins tiny batches, the vectorized forest wins once a batch carries
    more than ~128 merge pairs (the regime every CPLDS batch-end union of a
    non-trivial batch is in).
    """
    n = 4096
    rng = np.random.default_rng(0)
    rows = []
    timings = {}
    for pairs in (8, 64, 512, 4096):
        a = rng.integers(0, n, size=pairs)
        b = rng.integers(0, n, size=pairs)
        reps = max(3, 8192 // pairs)

        seq = min(
            _timed_sequential(n, a, b) for _ in range(reps)
        )
        vec = min(
            _timed_vectorized(n, a, b) for _ in range(reps)
        )
        timings[pairs] = (seq, vec)
        rows.append((pairs, f"{seq * 1e6:.1f}", f"{vec * 1e6:.1f}", f"{seq / vec:.2f}"))

        # Same components, same min-id representatives, either way.
        suf = SequentialUnionFind(n)
        for x, y in zip(a.tolist(), b.tolist()):
            suf.union(x, y)
        vuf = VectorizedUnionFind(n)
        vuf.union_pairs(a, b)
        want = [suf.find(x) for x in range(n)]
        got = vuf.find_many(np.arange(n, dtype=np.int64)).tolist()
        assert got == want

    emit(
        f"Union-find batch crossover (n={n}, random pairs)",
        format_table(["pairs", "sequential us", "vectorized us", "seq/vec"], rows),
    )
    # The crossover claim, asserted loosely (timing, so generous margins):
    # vectorized must win the largest batch; the scalar loop must win the
    # smallest one.
    seq, vec = timings[4096]
    assert vec < seq
    seq, vec = timings[8]
    assert seq < vec

    a = rng.integers(0, n, size=4096)
    b = rng.integers(0, n, size=4096)
    benchmark(lambda: _timed_vectorized(n, a, b))


def _timed_sequential(n, a, b):
    uf = SequentialUnionFind(n)
    t0 = time.perf_counter()
    for x, y in zip(a.tolist(), b.tolist()):
        uf.union(x, y)
    return time.perf_counter() - t0


def _timed_vectorized(n, a, b):
    uf = VectorizedUnionFind(n)
    t0 = time.perf_counter()
    uf.union_pairs(a, b)
    return time.perf_counter() - t0
