"""Union-find strategy bench: the ConnectIt design-space slice.

The CPLDS's dependency-DAG merging is a union-find workload (many unions
during marking, many finds during reads); this bench measures the find
strategies' pointer-chase work on DAG-shaped workloads so the choice of
full path compression (what the paper's implementation uses via ConnectIt)
is justified by data in this repository too.
"""

import numpy as np

from repro.harness.report import format_table
from repro.unionfind.variants import FIND_STRATEGIES, VariantUnionFind


def dag_workload(n=4096, unions=6000, finds=40000, seed=0):
    """Union/find mix shaped like a batch's marking phase + reader traffic."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(unions):
        a, b = rng.integers(0, n, size=2)
        ops.append(("u", int(a), int(b)))
    for _ in range(finds):
        ops.append(("f", int(rng.integers(0, n)), 0))
    rng.shuffle(ops)
    return n, ops


def run(strategy, n, ops):
    uf = VariantUnionFind(n, find_strategy=strategy)
    for kind, a, b in ops:
        if kind == "u":
            uf.union(a, b)
        else:
            uf.find(a)
    return uf.pointer_hops


def test_find_strategy_work(benchmark, emit):
    n, ops = dag_workload()
    rows = []
    for strategy in FIND_STRATEGIES:
        hops = run(strategy, n, ops)
        rows.append((strategy, hops))
    emit(
        "Union-find find-strategy pointer-chase work "
        f"({len(ops)} mixed ops, n={n})",
        format_table(["strategy", "pointer hops"], rows),
    )
    hops = dict(rows)
    # All write-performing strategies beat the naive one...
    for strategy in ("compress", "split", "halve"):
        assert hops[strategy] < hops["naive"]
    # ...and results agree regardless of strategy (semantic check).
    reps = {}
    for strategy in FIND_STRATEGIES:
        uf = VariantUnionFind(n, find_strategy=strategy)
        for kind, a, b in ops:
            if kind == "u":
                uf.union(a, b)
        reps[strategy] = [uf.find(x) for x in range(n)]
    assert len({tuple(v) for v in reps.values()}) == 1

    def kernel():
        run("compress", n, ops)

    benchmark(kernel)
