# Convenience targets for the reproduction. See docs/reproduce.md.

PYTHON ?= python

# Canonical checked-in benchmark artifact (must match
# repro.harness.bench_json.BENCH_ARTIFACT, the CLI default).
BENCH_ARTIFACT ?= BENCH_pr9.json

# Every target runs against the in-tree sources, no install required.
export PYTHONPATH = src

.PHONY: install test lint chaos scenarios scenarios-smoke bench bench-full bench-json bench-baseline bench-gate reproduce reproduce-full examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

# Mirrors the CI lint job; ruff/mypy are skipped with a notice when absent.
lint:
	$(PYTHON) -m compileall -q src
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks examples; \
	else echo "ruff not installed; skipped (CI runs it)"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy src/repro/obs src/repro/engines src/repro/reads src/repro/workloads/scenarios; \
	else echo "mypy not installed; skipped (CI runs it)"; fi

chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -m chaos -q

# Full scenario catalog on every store backend (what nightly CI runs).
scenarios:
	$(PYTHON) -m repro.workloads.scenarios --catalog --backend all --strict --table -

# The fast CI subset: 3 specs, truncated, every backend, strict gating.
scenarios-smoke:
	$(PYTHON) -m repro.workloads.scenarios --catalog \
		--only fig5-batch-updates,staleness-slo,bipartite-churn \
		--backend all --smoke --strict --table -

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
	$(PYTHON) -m repro.harness.bench_json -o $(BENCH_ARTIFACT)

bench-full:
	REPRO_BENCH_CONFIG=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -s
	$(PYTHON) -m repro.harness.bench_json --full -o $(BENCH_ARTIFACT)

bench-json:
	$(PYTHON) -m repro.harness.bench_json -o $(BENCH_ARTIFACT)

# Refresh the checked-in bench-gate baseline (commit the result).
bench-baseline:
	$(PYTHON) -m repro.harness.bench_json -o $(BENCH_ARTIFACT)

# What CI's bench-gate job runs: fresh candidate vs checked-in baseline.
bench-gate:
	$(PYTHON) -m repro.harness.bench_json -o /tmp/bench_candidate.json
	$(PYTHON) -m repro.harness.bench_gate --baseline $(BENCH_ARTIFACT) --candidate /tmp/bench_candidate.json

reproduce:
	$(PYTHON) -m repro.harness.run_all

reproduce-full:
	$(PYTHON) -m repro.harness.run_all --full

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/linearizability_demo.py
	$(PYTHON) examples/road_network_closures.py
	$(PYTHON) examples/churn_pipeline.py
	$(PYTHON) examples/social_network_monitor.py
	$(PYTHON) examples/streaming_service.py

clean:
	rm -rf .pytest_cache build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
