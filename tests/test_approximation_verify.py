"""Tests for the BoundaryOracle and read-error scoring (Fig 6 machinery)."""

import pytest

from repro.verify.approximation import BoundaryOracle, ErrorStats, read_error


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


class TestBoundaryOracle:
    def test_boundaries_accumulate(self):
        o = BoundaryOracle(4)
        assert o.num_boundaries == 1
        o.push_batch("insert", [(0, 1), (1, 2), (0, 2)])
        o.push_batch("delete", [(0, 1)])
        assert o.num_boundaries == 3
        assert o.coreness_at(0, 0) == 0
        assert o.coreness_at(1, 0) == 2
        assert o.coreness_at(2, 0) == 1

    def test_initial_edges(self):
        o = BoundaryOracle(3, initial_edges=[(0, 1), (1, 2), (0, 2)])
        assert o.coreness_at(0, 1) == 2

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            BoundaryOracle(2).push_batch("upsert", [])

    def test_cores_at_returns_array(self):
        o = BoundaryOracle(5)
        o.push_batch("insert", clique(5))
        assert o.cores_at(1).tolist() == [4] * 5


class TestReadError:
    def test_exact_read_scores_one(self):
        o = BoundaryOracle(5)
        o.push_batch("insert", clique(5))
        assert read_error(o, batch=1, v=0, estimate=4.0) == 1.0

    def test_min_of_two_boundaries(self):
        # Before: coreness 0; after: coreness 4.  Estimate 2 is 2x off the
        # after-boundary and 2x off the (coreless) before-boundary.
        o = BoundaryOracle(5)
        o.push_batch("insert", clique(5))
        assert read_error(o, batch=1, v=0, estimate=2.0) == pytest.approx(2.0)

    def test_boundary_clamping(self):
        o = BoundaryOracle(5)
        o.push_batch("insert", clique(5))
        # Claimed batch past the recorded history clamps to the last boundary.
        assert read_error(o, batch=99, v=0, estimate=4.0) == 1.0
        assert read_error(o, batch=0, v=0, estimate=1.0) == 1.0

    def test_mid_jump_estimate_penalized_both_ways(self):
        """The §6.3 scenario: before k=0, after k=9; a mid-level estimate of
        3 is 3x away from both boundaries."""
        o = BoundaryOracle(10)
        o.push_batch("insert", clique(10))
        err = read_error(o, batch=1, v=0, estimate=3.0)
        assert err == pytest.approx(3.0)


class TestErrorStats:
    def test_accumulation(self):
        s = ErrorStats()
        for e in (1.0, 2.0, 6.0):
            s.add(e)
        assert s.count == 3
        assert s.mean == pytest.approx(3.0)
        assert s.worst == 6.0

    def test_empty_mean_neutral(self):
        assert ErrorStats().mean == 1.0

    def test_merge(self):
        a, b = ErrorStats(), ErrorStats()
        a.add(2.0)
        b.add(4.0)
        m = a.merge(b)
        assert m.count == 2
        assert m.worst == 4.0
