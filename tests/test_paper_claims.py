"""The paper's named claims, one executable check each (the claims ledger).

Each test quotes the claim it verifies (section in parentheses) and checks
it at test scale.  Heavier, statistics-grade versions of the performance
claims live in ``benchmarks/``; this file is the quick, deterministic
ledger a reviewer can run in seconds.
"""

import pytest

from repro.core import CPLDS, NonSyncKCore
from repro.exact import core_decomposition
from repro.graph import generators as gen
from repro.lds import LDS, LDSParams
from repro.lds.coreness import approximation_factor
from repro.runtime.inject import InjectionProbe, attach_probe
from repro.runtime.stepping import InterleavedScheduler
from repro.verify import LinearizabilityChecker, RecordedKCore
from repro.workloads import BatchStream
from repro.workloads.adversarial import clique_edges


class TestSection3Claims:
    def test_lds_maintains_2_plus_eps_approximation(self):
        """(§3.1) "maintains a (2+ε)-approximate coreness value for each
        vertex in the graph for any constant ε > 0"."""
        n = 80
        lds = LDS(n)
        lds.insert_edges(gen.chung_lu(n, 320, seed=1))
        exact = core_decomposition(lds.graph)
        bound = lds.params.theoretical_approximation_factor()
        for v in range(n):
            if exact[v] >= 1:
                assert approximation_factor(
                    lds.coreness_estimate(v), int(exact[v])
                ) <= bound + 1e-9

    def test_insertions_only_violate_invariant_1(self):
        """(§3.1) "inserting more edges into the graph may only cause
        vertices to violate the first invariant, but not the second"."""
        n = 30
        lds = LDS(n)
        lds.insert_edges(gen.erdos_renyi(n, 90, seed=2))
        state = lds.state
        # Apply a fresh insertion *without* rebalancing and check only
        # Invariant 1 can now fail.
        for u, v in gen.erdos_renyi(n, 30, seed=3):
            if lds.graph.insert_edge(u, v):
                state.on_edge_inserted(u, v)
        for w in range(n):
            assert state.satisfies_invariant2(w), (
                "an insertion broke Invariant 2"
            )

    def test_deletions_only_violate_invariant_2(self):
        """(§3.1) symmetric claim for deletions."""
        n = 30
        lds = LDS(n)
        edges = gen.erdos_renyi(n, 120, seed=4)
        lds.insert_edges(edges)
        state = lds.state
        for u, v in edges[::3]:
            if lds.graph.delete_edge(u, v):
                state.on_edge_deleted(u, v)
        for w in range(n):
            assert state.satisfies_invariant1(w), (
                "a deletion broke Invariant 1"
            )

    def test_insertion_phase_visits_each_level_once(self):
        """(§3.2) "after vertices move up from level ℓ, no future step in
        the current batch moves a vertex up from level ℓ"."""
        from repro.lds.plds import PLDS, UpdateHooks

        moves_from = []

        class Spy(UpdateHooks):
            def before_move(self, v, old, new, phase):
                moves_from.append(old)

        plds = PLDS(12, hooks=Spy())
        plds.batch_insert(clique_edges(12))
        # All moves out of a level are contiguous in the move sequence.
        seen_done = set()
        prev = None
        for lvl in moves_from:
            if lvl != prev:
                assert lvl not in seen_done, f"level {lvl} revisited"
                if prev is not None:
                    seen_done.add(prev)
                prev = lvl


class TestSection5Claims:
    def test_descriptor_published_before_level_change(self):
        """(§5.2) marking happens before the move: a reader that sees a
        moved (non-pre-batch) live level must find the vertex marked."""
        n = 10
        cp = CPLDS(n)
        cp.insert_batch(clique_edges(10)[:20])
        pre = cp.levels()
        bad = []

        def on_point(_tag):
            for v in range(n):
                lvl = cp.plds.state.level[v]
                if lvl != pre[v] and cp.descriptors.get(v) is None:
                    bad.append((v, lvl))

        attach_probe(cp, InjectionProbe(on_point))
        cp.insert_batch(clique_edges(10)[20:])
        assert not bad, f"unmarked vertices observed off their old level: {bad}"

    def test_old_level_is_pre_batch_level(self):
        """(§5.2) "populate its old_level field with v's current level,
        before v moves" — and it never changes within the batch."""
        n = 10
        cp = CPLDS(n)
        cp.insert_batch(clique_edges(10)[:20])
        pre = cp.levels()
        mismatches = []

        def on_point(_tag):
            for v in range(n):
                d = cp.descriptors.get(v)
                if d is not None and d.old_level != pre[v]:
                    mismatches.append(v)

        attach_probe(cp, InjectionProbe(on_point))
        cp.insert_batch(clique_edges(10)[20:])
        assert not mismatches

    def test_lemma_6_3_no_edge_crosses_dags(self):
        """(Lemma 6.3) an updated edge whose endpoints both move stays
        inside one DAG."""
        n = 12
        cp = CPLDS(n)
        edges = clique_edges(n)
        cp.insert_batch(edges[:30])
        batch = edges[30:]
        cp.insert_batch(batch)
        dag = cp.last_batch_dag_map
        for u, v in batch:
            if u in dag and v in dag:
                assert dag[u] == dag[v]


class TestSection6Claims:
    def test_theorem_6_1_linearizable(self):
        """(Theorem 6.1) "Our algorithm is linearizable" — adversarial
        deterministic schedule, zero violations."""
        n = 10
        cp = CPLDS(n)
        rec = RecordedKCore(cp)

        def on_point(_tag):
            for v in range(n):
                rec.read(v)

        attach_probe(cp, InjectionProbe(on_point, at_begin=True, at_end=True))
        rec.insert_batch(clique_edges(n))
        rec.delete_batch(clique_edges(n)[::2])
        assert LinearizabilityChecker(rec.history).violations() == []

    def test_theorem_6_1_reads_lock_free(self):
        """(§6.2) reads retry only when an update progressed (batch number
        advanced or live level changed)."""
        n = 12
        stream = BatchStream.insert_then_delete(
            "claims", n, clique_edges(n), 12
        )
        sched = InterleavedScheduler(CPLDS(n), num_readers=6, seed=1)
        for r in sched.run(stream):
            assert len(r.retry_causes) == r.retries
            assert set(r.retry_causes) <= {"batch", "level"}

    def test_6_3_unsynchronized_error_grows_with_jump(self):
        """(§6.3) "the error could be unbounded": NonSync's worst error
        grows with the per-batch group jump; CPLDS's does not."""
        from repro.harness.experiments import fig6_flash

        rows = fig6_flash(clique_sizes=(20, 50), sample_stride=5)
        ns = {r.clique_size: r.max_error for r in rows if r.impl == "nonsync"}
        cp = {r.clique_size: r.max_error for r in rows if r.impl == "cplds"}
        assert ns[50] > ns[20] > 1.5
        assert all(err <= 2.81 for err in cp.values())


class TestSection7Claims:
    def test_update_overhead_factor(self):
        """(§7/abstract) "adding asynchronous reads only increases the
        update time by a factor of at most 1.48" — same order here (the
        Python trigger scan costs relatively more; see EXPERIMENTS.md)."""
        import time

        n = 400
        edges = gen.chung_lu(n, 2000, seed=7)
        params = LDSParams(n, levels_per_group=20)
        t = {}
        for kind, impl in (
            ("nonsync", NonSyncKCore(n, params=params)),
            ("cplds", CPLDS(n, params=params)),
        ):
            t0 = time.perf_counter()
            for i in range(0, len(edges), 500):
                impl.insert_batch(edges[i : i + 500])
            t[kind] = time.perf_counter() - t0
        assert t["cplds"] <= 3.0 * t["nonsync"]

    def test_read_overhead_factor(self):
        """(§7/abstract) "our read latency overhead is only up to a
        3.21-factor greater" than NonSync (quiescent microbenchmark)."""
        import time

        n = 300
        edges = gen.chung_lu(n, 1500, seed=8)
        params = LDSParams(n, levels_per_group=20)
        cp = CPLDS(n, params=params)
        ns = NonSyncKCore(n, params=params)
        cp.insert_batch(edges)
        ns.insert_batch(edges)
        reps = 20_000

        def timed(impl):
            t0 = time.perf_counter()
            for v in range(reps):
                impl.read(v % n)
            return time.perf_counter() - t0

        timed(ns)  # warm
        ratio = timed(cp) / timed(ns)
        assert ratio <= 3.5, f"read overhead {ratio:.2f}x out of band"
