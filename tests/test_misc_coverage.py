"""Targeted tests for less-travelled paths across modules."""

import pytest

from repro.core import CPLDS
from repro.core.marking import DescriptorTable
from repro.graph import generators as gen
from repro.harness import experiments as E
from repro.runtime.sim import SimSession, ceil_div
from repro.workloads import BatchStream


class TestMarkingEdgeCases:
    def test_find_root_on_unmarked_rejected(self):
        t = DescriptorTable(3)
        with pytest.raises(ValueError, match="unmarked"):
            t._find_root(0)

    def test_dag_members_skips_cleared_slots(self):
        t = DescriptorTable(4)
        t.mark(0, old_level=0, related=[], batch=1)
        t.mark(1, old_level=0, related=[0], batch=1)
        t.slots[1] = None  # simulate a partial unmark
        assert t.dag_members() == {0: [0]}

    def test_merge_empty_related_returns_none(self):
        t = DescriptorTable(2)
        assert t._merge_dags([]) is None

    def test_add_dependencies_empty_is_noop(self):
        t = DescriptorTable(2)
        t.mark(0, old_level=0, related=[], batch=1)
        t.add_dependencies(0, [])
        assert t.get(0).is_root()


class TestExperimentConfig:
    def test_with_override(self):
        cfg = E.QUICK.with_(trials=7)
        assert cfg.trials == 7
        assert E.QUICK.trials != 7  # frozen original untouched

    def test_make_impl_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown engine"):
            E.make_impl("quantum", 4, E.QUICK)

    def test_full_config_covers_all_datasets(self):
        from repro.graph import datasets as ds

        assert set(E.FULL.datasets) == set(ds.names())


class TestSimExtras:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_zero_readers_session(self):
        edges = gen.erdos_renyi(30, 60, seed=1)
        stream = BatchStream.insert_only("s", 30, edges, 30)
        res = SimSession(CPLDS(30), "cplds", num_readers=0).run(stream)
        assert res.total_reads == 0
        assert res.read_throughput() == 0.0

    def test_read_latency_sample_cap(self):
        edges = gen.erdos_renyi(60, 400, seed=2)
        stream = BatchStream.insert_only("s", 60, edges, 100)
        res = SimSession(CPLDS(60), "cplds", num_readers=15).run(stream)
        # Samples are capped per batch, counts are not.
        assert res.total_reads >= len(res.read_latencies)


class TestPersistExtras:
    def test_save_without_verify_allows_wounded(self, tmp_path):
        from repro.persist import save_cplds

        cp = CPLDS(6)
        cp.insert_batch([(0, 1), (1, 2)])
        # Corrupt a level to fake a wounded-but-unmarked structure.
        cp.plds.state.level[0] = 5
        save_cplds(cp, tmp_path / "wounded.npz", verify=False)
        assert (tmp_path / "wounded.npz").exists()

    def test_load_rejects_invalid_levels(self, tmp_path):
        from repro.errors import CheckpointCorruptError
        from repro.persist import load_cplds, save_cplds

        cp = CPLDS(6)
        cp.insert_batch([(0, 1), (1, 2)])
        cp.plds.state.level[0] = 5
        save_cplds(cp, tmp_path / "wounded.npz", verify=False)
        # An archive that decodes to an invalid LDS state is corrupt, with
        # the typed error recovery code dispatches on.
        with pytest.raises(CheckpointCorruptError):
            load_cplds(tmp_path / "wounded.npz")


class TestBatchStreamExtras:
    def test_only_on_empty_kind(self):
        stream = BatchStream.insert_only("s", 5, [(0, 1)], 1)
        assert len(stream.only("delete")) == 0

    def test_stream_name_propagates(self):
        stream = BatchStream.insert_only("myname", 5, [(0, 1)], 1)
        assert stream.only("insert").name == "myname:insert"
