"""Unit tests for the dynamic-graph substrate."""

import pytest

from repro.errors import EdgeStateError, SelfLoopError, VertexOutOfRange
from repro.graph import DynamicGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DynamicGraph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_initial_edges(self):
        g = DynamicGraph(3, edges=[(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 1)

    def test_duplicate_initial_edges_collapsed(self):
        g = DynamicGraph(3, edges=[(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraph(-1)


class TestInsertion:
    def test_insert_batch_returns_new_count(self):
        g = DynamicGraph(5)
        assert g.insert_batch([(0, 1), (1, 2), (0, 1)]) == 2
        assert g.num_edges == 2

    def test_insert_existing_is_noop(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        assert g.insert_batch([(1, 0)]) == 0
        assert g.num_edges == 1

    def test_insert_existing_strict_raises(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        with pytest.raises(EdgeStateError):
            g.insert_batch([(0, 1)], strict=True)

    def test_self_loop_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(SelfLoopError):
            g.insert_batch([(1, 1)])

    def test_out_of_range_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(VertexOutOfRange):
            g.insert_batch([(0, 3)])
        with pytest.raises(VertexOutOfRange):
            g.insert_batch([(-1, 0)])

    def test_insert_edge_single(self):
        g = DynamicGraph(3)
        assert g.insert_edge(0, 2) is True
        assert g.insert_edge(2, 0) is False

    def test_adjacency_is_symmetric(self):
        g = DynamicGraph(4)
        g.insert_batch([(0, 3), (3, 1)])
        assert 3 in g.neighbors(0)
        assert 0 in g.neighbors(3)
        assert 1 in g.neighbors(3)


class TestDeletion:
    def test_delete_batch(self):
        g = DynamicGraph(4, edges=[(0, 1), (1, 2), (2, 3)])
        assert g.delete_batch([(1, 0), (3, 2)]) == 2
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_delete_absent_is_noop(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        assert g.delete_batch([(1, 2)]) == 0
        assert g.num_edges == 1

    def test_delete_absent_strict_raises(self):
        g = DynamicGraph(3)
        with pytest.raises(EdgeStateError):
            g.delete_batch([(0, 1)], strict=True)

    def test_delete_then_reinsert(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        g.delete_edge(0, 1)
        assert g.num_edges == 0
        g.insert_edge(0, 1)
        assert g.num_edges == 1

    def test_duplicate_deletes_in_batch_counted_once(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        assert g.delete_batch([(0, 1), (1, 0)]) == 1
        assert g.num_edges == 0


class TestViewsAndHelpers:
    def test_neighbors_returns_copy(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        view = g.neighbors(0)
        g.insert_edge(0, 2)
        assert view == frozenset({1})

    def test_edges_iterates_canonical(self):
        g = DynamicGraph(4, edges=[(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_filter_new_edges(self):
        g = DynamicGraph(4, edges=[(0, 1)])
        assert g.filter_new_edges([(1, 0), (2, 3), (3, 2)]) == [(2, 3)]

    def test_filter_present_edges(self):
        g = DynamicGraph(4, edges=[(0, 1), (2, 3)])
        assert g.filter_present_edges([(1, 0), (1, 2)]) == [(0, 1)]

    def test_copy_is_independent(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        h = g.copy()
        h.insert_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_contains_and_len(self):
        g = DynamicGraph(3, edges=[(0, 1)])
        assert (0, 1) in g
        assert (1, 2) not in g
        assert len(g) == 3

    def test_degree(self):
        g = DynamicGraph(4, edges=[(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
