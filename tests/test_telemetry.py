"""Tests for the per-batch telemetry collector."""

import pytest

from repro.core import CPLDS, NonSyncKCore
from repro.graph import generators as gen
from repro.harness.telemetry import TelemetryCollector


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


class TestTelemetry:
    def test_records_per_batch(self):
        cp = CPLDS(10)
        tele = TelemetryCollector.attach(cp)
        cp.insert_batch(clique(10)[:20])
        cp.insert_batch(clique(10)[20:])
        cp.delete_batch(clique(10)[:10])
        assert [r.kind for r in tele.records] == ["insert", "insert", "delete"]
        assert [r.index for r in tele.records] == [1, 2, 3]

    def test_counts_match_impl_telemetry(self):
        cp = CPLDS(10)
        tele = TelemetryCollector.attach(cp)
        cp.insert_batch(clique(10))
        rec = tele.records[-1]
        assert rec.edges == 45
        assert rec.moves == cp.plds.last_batch_moves
        assert rec.marked == cp.last_batch_marked
        assert rec.dags == cp.last_batch_dags
        assert rec.duration > 0

    def test_works_on_baselines_without_marking(self):
        ns = NonSyncKCore(8)
        tele = TelemetryCollector.attach(ns)
        ns.insert_batch(clique(8))
        assert tele.records[-1].marked == 0
        assert tele.records[-1].moves > 0

    def test_render_and_totals(self):
        cp = CPLDS(12)
        tele = TelemetryCollector.attach(cp)
        edges = gen.erdos_renyi(12, 40, seed=1)
        cp.insert_batch(edges)
        cp.delete_batch(edges)
        text = tele.render()
        assert "moves" in text and "insert" in text and "delete" in text
        totals = tele.totals()
        assert totals["batches"] == 2
        assert totals["edges"] == 2 * len(edges)

    def test_render_tail(self):
        cp = CPLDS(6)
        tele = TelemetryCollector.attach(cp)
        for e in clique(6)[:4]:
            cp.insert_batch([e])
        tail = tele.render(last=2)
        assert tail.count("insert") == 2

    def test_worst_batch(self):
        cp = CPLDS(10)
        tele = TelemetryCollector.attach(cp)
        assert tele.worst_batch() is None
        cp.insert_batch(clique(10))
        cp.insert_batch([])
        worst = tele.worst_batch()
        assert worst is not None
        assert worst.index == 1

    def test_structure_still_correct_with_telemetry(self):
        cp = CPLDS(20)
        TelemetryCollector.attach(cp)
        edges = gen.chung_lu(20, 70, seed=2)
        cp.insert_batch(edges)
        cp.check_invariants()
