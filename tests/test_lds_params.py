"""Unit tests for LDSParams: group arithmetic, thresholds, coreness formula."""

import math

import pytest

from repro.lds import LDSParams


class TestConstruction:
    def test_defaults_match_paper(self):
        p = LDSParams(1000)
        assert p.delta == 0.2
        assert p.lam == 9.0
        assert abs(p.theoretical_approximation_factor() - 2.8) < 1e-9

    def test_group_count_is_log_base_1_plus_delta(self):
        p = LDSParams(1000, delta=0.2)
        expected = math.ceil(math.log(1000) / math.log(1.2))
        assert p.num_groups == expected

    def test_group_height_default_is_4_log(self):
        p = LDSParams(1000, delta=0.2)
        assert p.group_height == 4 * math.ceil(math.log(1000) / math.log(1.2))

    def test_group_height_override(self):
        p = LDSParams(1000, levels_per_group=20)
        assert p.group_height == 20
        assert p.num_levels == 20 * p.num_groups

    def test_tiny_n_still_valid(self):
        p = LDSParams(0)
        assert p.num_levels >= 1
        p = LDSParams(1)
        assert p.num_groups >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vertices": -1},
            {"num_vertices": 10, "delta": 0.0},
            {"num_vertices": 10, "delta": -1.0},
            {"num_vertices": 10, "lam": 0.0},
            {"num_vertices": 10, "levels_per_group": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LDSParams(**kwargs)


class TestGroupArithmetic:
    def test_group_of_level(self):
        p = LDSParams(100, levels_per_group=10)
        assert p.group_of_level(0) == 0
        assert p.group_of_level(9) == 0
        assert p.group_of_level(10) == 1
        assert p.group_of_level(p.max_level) == p.num_groups - 1

    def test_group_of_level_out_of_range(self):
        p = LDSParams(100, levels_per_group=10)
        with pytest.raises(ValueError):
            p.group_of_level(-1)
        with pytest.raises(ValueError):
            p.group_of_level(p.num_levels)

    def test_max_level(self):
        p = LDSParams(100, levels_per_group=5)
        assert p.max_level == p.num_levels - 1


class TestThresholds:
    def test_upper_threshold_formula(self):
        p = LDSParams(100, delta=0.2, lam=9.0, levels_per_group=10)
        # Group 0: (2 + 3/9) * 1.2^0
        assert p.upper_threshold(0) == pytest.approx(2 + 1 / 3)
        # Group 2: (2 + 3/9) * 1.2^2
        assert p.upper_threshold(25) == pytest.approx((2 + 1 / 3) * 1.2**2)

    def test_lower_threshold_uses_group_of_level_below(self):
        p = LDSParams(100, delta=0.2, levels_per_group=10)
        # Level 10's lower bound uses group of level 9, which is group 0.
        assert p.lower_threshold(10) == pytest.approx(1.0)
        # Level 11's lower bound uses group of level 10 = group 1.
        assert p.lower_threshold(11) == pytest.approx(1.2)

    def test_lower_threshold_level_zero_is_trivial(self):
        p = LDSParams(100)
        assert p.lower_threshold(0) == 0.0

    def test_thresholds_monotone_in_level(self):
        p = LDSParams(500, levels_per_group=8)
        uppers = [p.upper_threshold(l) for l in range(p.num_levels)]
        lowers = [p.lower_threshold(l) for l in range(1, p.num_levels)]
        assert uppers == sorted(uppers)
        assert lowers == sorted(lowers)

    def test_upper_always_exceeds_lower_same_level(self):
        p = LDSParams(500, levels_per_group=8)
        for lvl in range(1, p.num_levels):
            assert p.upper_threshold(lvl) > p.lower_threshold(lvl)


class TestCorenessEstimate:
    def test_level_zero_estimates_one(self):
        p = LDSParams(1000)
        assert p.coreness_estimate(0) == 1.0

    def test_estimate_is_geometric_in_group(self):
        p = LDSParams(1000, delta=0.2, levels_per_group=10)
        # Levels 0..8 -> exponent 0; level 9 starts exponent floor(10/10)-1=0;
        # the first level with exponent 1 is level 19 ((19+1)//10 - 1 == 1).
        assert p.coreness_estimate(8) == 1.0
        assert p.coreness_estimate(19) == pytest.approx(1.2)
        assert p.coreness_estimate(29) == pytest.approx(1.44)

    def test_estimate_monotone_in_level(self):
        p = LDSParams(200, levels_per_group=6)
        ests = [p.coreness_estimate(l) for l in range(p.num_levels)]
        assert ests == sorted(ests)

    def test_estimate_never_below_one(self):
        p = LDSParams(50, levels_per_group=3)
        assert all(
            p.coreness_estimate(l) >= 1.0 for l in range(p.num_levels)
        )
