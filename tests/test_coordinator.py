"""Tests for the multi-producer batch coordinator."""

import threading

import pytest

from repro.core import CPLDS
from repro.errors import ReproError
from repro.runtime.coordinator import BatchCoordinator


class TestBasics:
    def test_single_update_applies(self):
        cp = CPLDS(4)
        with BatchCoordinator(cp, max_delay=0.005) as coord:
            t = coord.submit_insert(0, 1)
            assert t.wait(5.0)
            assert t.applied_in_batch is not None
        assert cp.graph.has_edge(0, 1)

    def test_read_passthrough(self):
        cp = CPLDS(4)
        with BatchCoordinator(cp) as coord:
            coord.submit_insert(0, 1).wait(5.0)
            assert coord.read(0) == cp.read(0)

    def test_flush_waits_for_everything(self):
        cp = CPLDS(10)
        with BatchCoordinator(cp, max_batch=4, max_delay=0.5) as coord:
            tickets = [coord.submit_insert(i, i + 1) for i in range(8)]
            coord.flush()
            assert all(t.done for t in tickets)
        assert cp.graph.num_edges == 8

    def test_insert_then_delete_same_edge_in_window(self):
        """Last op per edge wins within one batch."""
        cp = CPLDS(4)
        with BatchCoordinator(cp, max_batch=16, max_delay=0.2) as coord:
            coord.submit_insert(0, 1)
            t = coord.submit_delete(0, 1)
            t.wait(5.0)
            coord.flush()
        assert not cp.graph.has_edge(0, 1)

    def test_size_triggered_batches(self):
        cp = CPLDS(64)
        with BatchCoordinator(cp, max_batch=8, max_delay=10.0) as coord:
            for i in range(32):
                coord.submit_insert(i, i + 1)
            coord.flush()
            assert coord.batches_applied >= 4
            assert coord.updates_applied == 32

    def test_invalid_params(self):
        cp = CPLDS(2)
        with pytest.raises(ValueError):
            BatchCoordinator(cp, max_batch=0)
        with pytest.raises(ValueError):
            BatchCoordinator(cp, max_delay=0.0)


class TestLifecycle:
    def test_close_idempotent(self):
        coord = BatchCoordinator(CPLDS(2))
        coord.close()
        coord.close()

    def test_submit_after_close_rejected(self):
        coord = BatchCoordinator(CPLDS(2))
        coord.close()
        with pytest.raises(ReproError):
            coord.submit_insert(0, 1)

    def test_context_manager_flushes(self):
        cp = CPLDS(4)
        with BatchCoordinator(cp) as coord:
            coord.submit_insert(0, 1)
        assert cp.graph.has_edge(0, 1)


class TestConcurrentProducers:
    def test_many_producers(self):
        n = 200
        cp = CPLDS(n)
        edges = [(i, (i + 1) % n) for i in range(n)]
        with BatchCoordinator(cp, max_batch=32, max_delay=0.002) as coord:
            def producer(chunk):
                for u, v in chunk:
                    coord.submit_insert(u, v)

            threads = [
                threading.Thread(target=producer, args=(edges[k::4],))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            coord.flush()
        assert cp.graph.num_edges == n
        cp.check_invariants()

    def test_reads_concurrent_with_ingestion(self):
        n = 100
        cp = CPLDS(n)
        stop = threading.Event()
        estimates = []

        def reader():
            while not stop.is_set():
                estimates.append(cp.read(0))

        rt = threading.Thread(target=reader, daemon=True)
        rt.start()
        with BatchCoordinator(cp, max_batch=16, max_delay=0.001) as coord:
            for u in range(1, 40):
                coord.submit_insert(0, u)
            coord.flush()
        stop.set()
        rt.join(5.0)
        assert estimates
        assert cp.graph.degree(0) == 39

    def test_read_your_writes_via_ticket(self):
        cp = CPLDS(4)
        with BatchCoordinator(cp, max_delay=0.002) as coord:
            t1 = coord.submit_insert(0, 1)
            t2 = coord.submit_insert(1, 2)
            t3 = coord.submit_insert(0, 2)
            for t in (t1, t2, t3):
                assert t.wait(5.0)
            # After our tickets complete, our writes are visible.
            assert cp.graph.has_edge(0, 1)
            assert cp.graph.has_edge(1, 2)
            assert cp.graph.has_edge(0, 2)
            assert coord.read(0) >= 1.0


class TestTypedFailures:
    """Satellite guarantees: submit-after-close, wait timeout, and a died
    update thread all surface as typed errors — tickets never strand."""

    def test_submit_after_close_is_coordinator_closed_error(self):
        from repro.errors import CoordinatorClosedError

        coord = BatchCoordinator(CPLDS(2))
        coord.close()
        with pytest.raises(CoordinatorClosedError):
            coord.submit_insert(0, 1)
        with pytest.raises(CoordinatorClosedError):
            coord.submit_delete(0, 1)

    def test_wait_timeout_raises_typed(self):
        from repro.errors import TicketTimeoutError
        from repro.runtime.coordinator import UpdateTicket

        ticket = UpdateTicket("+", (0, 1))  # never completed
        with pytest.raises(TicketTimeoutError):
            ticket.wait(timeout=0.01)
        assert isinstance(TicketTimeoutError("x"), TimeoutError)

    def test_close_drains_pending_tickets_typed(self):
        from repro.errors import CoordinatorClosedError

        coord = BatchCoordinator(CPLDS(8), max_batch=1024, max_delay=60.0)
        tickets = [coord.submit_insert(u, u + 1) for u in range(5)]
        coord.close()
        # close() flushes: tickets either applied or failed typed — not hung.
        for t in tickets:
            try:
                assert t.wait(timeout=5.0)
            except CoordinatorClosedError:
                pass

    def test_died_thread_fails_tickets_typed(self):
        from repro.errors import CoordinatorDiedError
        from repro.lds.plds import UpdateHooks
        from repro.runtime.inject import HookChain

        class AlwaysDie(UpdateHooks):
            def batch_begin(self, kind, edges):
                raise RuntimeError("boom")

        cp = CPLDS(8)
        cp.plds.hooks = HookChain(cp.plds.hooks, AlwaysDie())
        coord = BatchCoordinator(cp, max_batch=4, max_delay=0.001)
        tickets = [coord.submit_insert(u, u + 1) for u in range(3)]
        results = []
        for t in tickets:
            try:
                results.append(t.wait(timeout=10.0))
            except CoordinatorDiedError as exc:
                results.append(exc)
        assert all(isinstance(r, CoordinatorDiedError) for r in results)
        # Post-death submissions are refused with the same typed error, and
        # close() re-raises the cause of death instead of hiding it.
        with pytest.raises(CoordinatorDiedError):
            coord.submit_insert(5, 6)
        with pytest.raises(CoordinatorDiedError):
            coord.close()
