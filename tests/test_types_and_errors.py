"""Tests for the vocabulary types, protocols, and exception hierarchy."""

import pytest

from repro import errors
from repro.core import CPLDS, NonSyncKCore, SyncReadsKCore
from repro.types import (
    BatchUpdatable,
    CorenessReader,
    canonical_edge,
    canonicalize_batch,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_self_pair_unchanged(self):
        assert canonical_edge(2, 2) == (2, 2)


class TestCanonicalizeBatch:
    def test_dedup_preserves_first_seen_order(self):
        batch = [(3, 1), (0, 2), (1, 3), (2, 0), (4, 5)]
        assert canonicalize_batch(batch) == [(1, 3), (0, 2), (4, 5)]

    def test_empty(self):
        assert canonicalize_batch([]) == []

    def test_generator_input(self):
        assert canonicalize_batch((e for e in [(1, 0)])) == [(0, 1)]


class TestProtocols:
    @pytest.mark.parametrize("factory", [CPLDS, NonSyncKCore, SyncReadsKCore])
    def test_implementations_satisfy_reader_protocol(self, factory):
        impl = factory(4)
        assert isinstance(impl, CorenessReader)

    @pytest.mark.parametrize("factory", [CPLDS, NonSyncKCore, SyncReadsKCore])
    def test_implementations_satisfy_updatable_protocol(self, factory):
        impl = factory(4)
        assert isinstance(impl, BatchUpdatable)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GraphError", "VertexOutOfRange", "SelfLoopError",
            "EdgeStateError", "LDSError", "InvariantViolation",
            "BatchInProgressError", "HistoryError", "NotLinearizable",
            "SimulationError", "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_vertex_out_of_range_carries_context(self):
        exc = errors.VertexOutOfRange(7, 5)
        assert exc.vertex == 7
        assert exc.num_vertices == 5
        assert "7" in str(exc) and "5" in str(exc)

    def test_self_loop_carries_vertex(self):
        exc = errors.SelfLoopError(3)
        assert exc.vertex == 3

    def test_invariant_violation_carries_vertex(self):
        exc = errors.InvariantViolation("boom", vertex=9)
        assert exc.vertex == 9

    def test_graph_errors_are_graph_errors(self):
        assert issubclass(errors.SelfLoopError, errors.GraphError)
        assert issubclass(errors.EdgeStateError, errors.GraphError)

    def test_catchall(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("nope")
