"""Unit tests for the multi-version epoch-snapshot read tier.

Covers the store's retention/pin/staleness mechanics, snapshot bulk
queries against quiescent engine reads on every backend, the wiring
through ``engines.create`` and the coordinator, and the supervisor's
degraded-read + recovery re-seeding paths.  The threaded rule-E histories
live in ``tests/test_threaded_linearizability.py``; the crash-with-pins
schedules in ``tests/test_chaos.py``.
"""

import numpy as np
import pytest

from repro import engines
from repro.core import CPLDS
from repro.errors import EpochUnavailableError
from repro.lds.store import BACKENDS
from repro.obs import REGISTRY
from repro.reads import EpochSnapshotStore, attach_epoch_store
from repro.runtime.coordinator import BatchCoordinator
from repro.runtime.inject import HookChain
from repro.runtime.supervisor import HealthState, SupervisedCPLDS
from repro.runtime.chaos import ChaosHooks

EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (1, 5)]


def engine_with_store(backend="object", n=8, **store_kw):
    store = EpochSnapshotStore(**store_kw)
    eng = engines.create("cplds", n, backend=backend, epoch_store=store)
    return eng, store


class TestSnapshotQueries:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bulk_reads_match_quiescent_engine(self, backend):
        eng, store = engine_with_store(backend)
        eng.insert_batch(EDGES)
        snap = store.newest()
        assert snap.epoch == eng.batch_number == 1
        n = snap.num_vertices
        assert list(snap.levels) == list(eng.levels())
        assert [snap.estimate(v) for v in range(n)] == [
            eng.read(v) for v in range(n)
        ]
        np.testing.assert_array_equal(
            snap.coreness_many(), [eng.read(v) for v in range(n)]
        )
        np.testing.assert_array_equal(
            snap.levels_many([3, 1, 4]), [snap.level(3), snap.level(1), snap.level(4)]
        )
        assert snap.subgraph_coreness([5, 0]) == {
            5: eng.read(5), 0: eng.read(0)
        }

    def test_top_k_is_deterministic_desc_then_vertex(self):
        eng, store = engine_with_store("columnar")
        eng.insert_batch(EDGES)
        snap = store.newest()
        top = snap.top_k(4)
        assert len(top) == 4
        ests = [e for _, e in top]
        assert ests == sorted(ests, reverse=True)
        # Ties broken by ascending vertex id.
        for (v1, e1), (v2, e2) in zip(top, top[1:]):
            if e1 == e2:
                assert v1 < v2
        assert snap.top_k(0) == []

    def test_level_histogram_counts_every_vertex(self):
        eng, store = engine_with_store("columnar-frontier")
        eng.insert_batch(EDGES)
        snap = store.newest()
        hist = snap.level_histogram()
        assert hist.sum() == snap.num_vertices
        assert len(hist) == eng.params.num_levels
        for lvl in snap.levels:
            assert hist[lvl] >= 1

    def test_snapshot_levels_are_frozen(self):
        eng, store = engine_with_store()
        eng.insert_batch(EDGES)
        snap = store.newest()
        with pytest.raises(ValueError):
            snap.levels[0] = 99


class TestStoreRetention:
    def test_window_evicts_oldest_unpinned(self):
        eng, store = engine_with_store(window=2)
        for k in range(4):
            eng.insert_batch([EDGES[k]])
        assert store.retained_epochs() == (3, 4)
        assert store.latest_epoch == 4
        assert store.evicted_total >= 3  # seed epoch 0 plus epochs 1, 2

    def test_pin_blocks_eviction_until_release(self):
        eng, store = engine_with_store(window=2)
        eng.insert_batch([EDGES[0]])
        pin = store.pin(1)
        for k in range(1, 4):
            eng.insert_batch([EDGES[k]])
        assert 1 in store.retained_epochs()  # pinned epoch survives
        before = list(pin.levels_many(range(8)))
        pin.release()
        assert 1 not in store.retained_epochs()  # release enables eviction
        assert store.retained_epochs() == (3, 4)
        assert pin.released
        with pytest.raises(EpochUnavailableError):
            pin.coreness_many()
        assert before  # the pre-release read went through

    def test_publish_cadence_skips_epochs(self):
        eng, store = engine_with_store(publish_every=2, window=8)
        for k in range(5):
            eng.insert_batch([EDGES[k]])
        # Seed epoch 0 plus the even epochs; odd epochs never published.
        assert store.retained_epochs() == (0, 2, 4)
        assert not store.accepts(3)
        assert store.accepts(4)

    def test_pin_unknown_epoch_raises(self):
        eng, store = engine_with_store(window=1)
        eng.insert_batch(EDGES)
        with pytest.raises(EpochUnavailableError):
            store.pin(0)  # evicted by window=1
        with pytest.raises(EpochUnavailableError):
            store.pin(7)  # never published
        with pytest.raises(EpochUnavailableError):
            EpochSnapshotStore().pin()  # nothing published yet


class TestStalenessPolicy:
    def test_over_budget_pin_is_force_advanced(self):
        eng, store = engine_with_store(window=8, max_staleness=2)
        eng.insert_batch([EDGES[0]])
        pin = store.pin()  # epoch 1
        eng.insert_batch([EDGES[1]])
        eng.insert_batch([EDGES[2]])
        assert pin.advanced == 0  # staleness 2 == budget: still pinned
        eng.insert_batch([EDGES[3]])  # staleness 3 > budget
        assert pin.epoch == 4
        assert pin.advanced == 1
        np.testing.assert_array_equal(
            pin.levels_many(range(8)), store.newest().levels
        )

    def test_within_budget_pin_reads_bit_identical(self):
        eng, store = engine_with_store(window=8, max_staleness=None)
        eng.insert_batch(EDGES[:4])
        pin = store.pin()
        before = pin.coreness_many(range(8)).tolist()
        eng.insert_batch(EDGES[4:])
        eng.delete_batch(EDGES[:2])
        assert pin.advanced == 0
        assert pin.coreness_many(range(8)).tolist() == before

    def test_reseed_drops_rolled_back_epochs_and_advances_pins(self):
        eng, store = engine_with_store(window=8)
        eng.insert_batch(EDGES[:3])
        eng.insert_batch(EDGES[3:6])
        pin_old = store.pin(1)
        pin_new = store.pin(2)
        # Roll history back to epoch 1 (as a recovery would).
        store.reseed(1, eng.plds.state.snapshot_levels(), params=eng.params)
        assert store.latest_epoch == 1
        assert 2 not in store.retained_epochs()
        # The rolled-back pin advances at its next read; the surviving
        # pin keeps serving its (still retained) epoch.
        pin_new.level(0)
        assert pin_new.advanced == 1 and pin_new.epoch == 1
        pin_old.level(0)
        assert pin_old.advanced == 0 and pin_old.epoch == 1


class TestWiring:
    def test_attach_requires_the_epoch_seam(self):
        store = EpochSnapshotStore()
        baseline = engines.create("nonsync", 8)
        with pytest.raises(TypeError):
            attach_epoch_store(baseline, store)
        with pytest.raises(TypeError):
            engines.create("nonsync", 8, epoch_store=EpochSnapshotStore())

    def test_attach_seeds_current_state(self):
        eng = engines.create("cplds", 8, backend="columnar")
        eng.insert_batch(EDGES)
        store = EpochSnapshotStore()
        attach_epoch_store(eng, store)
        assert store.latest_epoch == eng.batch_number
        assert list(store.newest().levels) == list(eng.levels())

    def test_obs_counters_account_pins_and_reads(self):
        from repro import obs

        was = obs.enabled()
        obs.reset()
        obs.enable()
        try:
            eng, store = engine_with_store()
            eng.insert_batch(EDGES)
            with store.pin() as pin:
                pin.coreness_many()
                pin.top_k(3)
            assert REGISTRY.counter_value("epoch_pins_total") == 1
            assert REGISTRY.counter_value("epoch_reads_total") == 2
            hist = REGISTRY._histograms.get(("epoch_read_staleness_epochs", ()))
            assert hist is not None and hist.count == 2
        finally:
            REGISTRY.enabled = was
            obs.reset()


class TestCoordinatorFrontDoor:
    def test_epoch_store_and_tickets(self):
        store = EpochSnapshotStore()
        impl = CPLDS(8)
        with BatchCoordinator(
            impl, max_batch=4, max_delay=0.005, epoch_store=store
        ) as co:
            assert co.epoch_store is store
            tickets = [co.submit_insert(u, v) for u, v in EDGES]
            for t in tickets:
                t.wait(10.0)
            co.flush()
            assert co.current_epoch == impl.batch_number > 0
            ticket = co.read_ticketed(2)
            assert ticket.stable
            assert ticket.epoch == co.current_epoch
            assert ticket.estimate == impl.read(2)
            with co.pin_epoch() as pin:
                assert pin.epoch == co.current_epoch
                assert pin.estimate(2) == ticket.estimate

    def test_pin_epoch_without_store_raises(self):
        with BatchCoordinator(CPLDS(4), max_delay=0.005) as co:
            assert co.epoch_store is None
            with pytest.raises(ValueError):
                co.pin_epoch()


class TestSupervisorReadTier:
    def test_degraded_reads_serve_newest_epoch(self):
        service = SupervisedCPLDS(CPLDS(8))
        service.apply_batch(insertions=EDGES)
        healthy = [service.read(v) for v in range(8)]
        service._set_health(HealthState.RECOVERING)
        for v in range(8):
            tagged = service.read_tagged(v)
            assert tagged.stale
            assert tagged.estimate == healthy[v]
            assert tagged.batch == service.epoch_store.latest_epoch

    def test_recovery_reseeds_and_keeps_publishing(self):
        service = SupervisedCPLDS(CPLDS(8), backoff_base=0.0)
        hooks = ChaosHooks()

        def attach(impl):
            impl.plds.hooks = HookChain(impl.plds.hooks, hooks)

        attach(service.impl)
        service.post_restore = attach
        service.apply_batch(insertions=EDGES[:4])
        pin = service.pin_epoch()
        before = pin.coreness_many(range(8)).tolist()
        hooks.arm_crash(0, times=1)  # next batch fails once, then retries
        outcome = service.apply_batch(insertions=EDGES[4:])
        assert outcome.fully_applied
        assert service.health is HealthState.HEALTHY
        # The pre-crash pin survived recovery bit-identically, and the
        # retried batch published a fresh epoch into the same store.
        assert pin.coreness_many(range(8)).tolist() == before
        assert service.epoch_store.latest_epoch == service.impl.batch_number
        assert service.impl.epoch_store is service.epoch_store

    def test_reopen_after_crash_reseeds_store(self, tmp_path):
        service = SupervisedCPLDS(CPLDS(8), journal_dir=tmp_path)
        service.apply_batch(insertions=EDGES)
        expected = [service.read(v) for v in range(8)]
        service._journal.close()  # simulated process death
        reopened, report = SupervisedCPLDS.open(tmp_path)
        try:
            store = reopened.epoch_store
            assert store.latest_epoch == reopened.impl.batch_number
            with reopened.pin_epoch() as pin:
                assert pin.coreness_many(range(8)).tolist() == expected
            reopened._set_health(HealthState.RECOVERING)
            assert reopened.read_tagged(0).estimate == expected[0]
        finally:
            reopened.close()
