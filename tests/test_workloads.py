"""Tests for batch streams and read generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BatchStream,
    UniformReadGenerator,
    ZipfReadGenerator,
    split_into_batches,
)


EDGES = [(i, i + 1) for i in range(20)]


class TestSplitIntoBatches:
    def test_exact_split(self):
        batches = split_into_batches(EDGES, 5)
        assert [len(b) for b in batches] == [5, 5, 5, 5]
        assert all(b.kind == "insert" for b in batches)

    def test_ragged_tail(self):
        batches = split_into_batches(EDGES, 7)
        assert [len(b) for b in batches] == [7, 7, 6]

    def test_shuffle_deterministic(self):
        a = split_into_batches(EDGES, 5, shuffle_seed=3)
        b = split_into_batches(EDGES, 5, shuffle_seed=3)
        assert a == b
        c = split_into_batches(EDGES, 5, shuffle_seed=4)
        assert a != c

    def test_shuffle_preserves_multiset(self):
        batches = split_into_batches(EDGES, 5, shuffle_seed=1)
        flat = sorted(e for b in batches for e in b.edges)
        assert flat == sorted(EDGES)

    def test_invalid_batch_size(self):
        with pytest.raises(WorkloadError):
            split_into_batches(EDGES, 0)


class TestBatchStream:
    def test_insert_only(self):
        s = BatchStream.insert_only("t", 21, EDGES, 6)
        assert s.total_edges == 20
        assert set(s.kinds()) == {"insert"}

    def test_insert_then_delete_shape(self):
        s = BatchStream.insert_then_delete("t", 21, EDGES, 6, delete_fraction=0.5)
        kinds = s.kinds()
        assert kinds[: kinds.index("delete")].count("insert") == len(
            [k for k in kinds if k == "insert"]
        )
        deleted = sum(len(b) for b in s.batches if b.kind == "delete")
        assert deleted == 10

    def test_deletes_are_previously_inserted_edges(self):
        s = BatchStream.insert_then_delete("t", 21, EDGES, 4, delete_fraction=1.0)
        inserted = {e for b in s.batches if b.kind == "insert" for e in b.edges}
        for b in s.batches:
            if b.kind == "delete":
                assert set(b.edges) <= inserted

    def test_invalid_delete_fraction(self):
        with pytest.raises(WorkloadError):
            BatchStream.insert_then_delete("t", 21, EDGES, 4, delete_fraction=1.5)

    def test_only_filter(self):
        s = BatchStream.insert_then_delete("t", 21, EDGES, 4)
        ins = s.only("insert")
        assert set(ins.kinds()) == {"insert"}
        assert ins.num_vertices == 21

    def test_len_and_iter(self):
        s = BatchStream.insert_only("t", 21, EDGES, 5)
        assert len(s) == 4
        assert sum(len(b) for b in s) == 20


class TestUniformReadGenerator:
    def test_range_and_determinism(self):
        g1 = UniformReadGenerator(50, seed=1)
        g2 = UniformReadGenerator(50, seed=1)
        a = g1.take(100)
        assert a == g2.take(100)
        assert all(0 <= v < 50 for v in a)

    def test_buffer_refill(self):
        g = UniformReadGenerator(10, seed=2, buffer_size=8)
        vals = g.take(25)
        assert len(vals) == 25

    def test_covers_vertex_space(self):
        g = UniformReadGenerator(10, seed=3)
        assert set(g.take(500)) == set(range(10))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UniformReadGenerator(0)


class TestZipfReadGenerator:
    def test_skew_toward_low_ids(self):
        g = ZipfReadGenerator(100, s=1.3, seed=4)
        picks = g.take(2000)
        low = sum(1 for v in picks if v < 10)
        high = sum(1 for v in picks if v >= 90)
        assert low > 5 * max(high, 1)

    def test_range(self):
        g = ZipfReadGenerator(20, seed=5)
        assert all(0 <= v < 20 for v in g.take(200))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfReadGenerator(0)
        with pytest.raises(ValueError):
            ZipfReadGenerator(10, s=0.0)
