"""Documentation hygiene: every module and public class is documented."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro


def all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return sorted(out)


MODULES = all_modules()


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"
    assert len(module.__doc__.strip()) > 40, f"{name} docstring too thin"


@pytest.mark.parametrize("name", MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-export; documented at its definition site
        if inspect.isclass(attr) or inspect.isfunction(attr):
            if not (attr.__doc__ and attr.__doc__.strip()):
                undocumented.append(attr_name)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_no_orphaned_bytecode_directories():
    """No source directory survives as a bytecode ghost.

    A directory under ``src`` whose only contents are ``__pycache__``
    is the fossil of a deleted package (stale ``.pyc`` files can even
    keep the dead package importable).  Every directory that holds a
    ``__pycache__`` must still hold at least one ``.py`` file.
    """
    src = pathlib.Path(repro.__file__).resolve().parent.parent
    ghosts = [
        str(cache.parent.relative_to(src))
        for cache in src.rglob("__pycache__")
        if not any(cache.parent.glob("*.py"))
    ]
    assert not ghosts, f"orphaned __pycache__ remnants (delete them): {ghosts}"


def test_expected_package_layout():
    expected = {
        "repro.core", "repro.lds", "repro.graph", "repro.exact",
        "repro.unionfind", "repro.runtime", "repro.verify",
        "repro.workloads", "repro.harness", "repro.extensions",
    }
    packages = {m for m in MODULES if m.count(".") == 1}
    assert expected <= packages
