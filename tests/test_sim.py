"""Tests for the virtual-time machine and its cost model."""

import pytest

from repro.core import CPLDS, NonSyncKCore, SyncReadsKCore
from repro.graph import generators as gen
from repro.runtime.simcost import BatchLedger, CostModel
from repro.runtime.sim import (
    SimSession,
    sweep_reader_scalability,
    sweep_writer_scalability,
)
from repro.workloads import BatchStream


def make_stream(n=120, m=600, batch=150, seed=3):
    edges = gen.chung_lu(n, m, seed=seed)
    return BatchStream.insert_then_delete("sim", n, edges, batch)


class TestCostModel:
    def test_read_costs(self):
        c = CostModel()
        assert c.read_cost("cplds") == c.read_base + c.read_dag
        assert c.read_cost("nonsync") == c.read_base
        assert c.read_cost("syncreads") == c.read_base

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            CostModel().read_cost("wat")


class TestBatchLedger:
    def test_brents_law_single_round(self):
        ledger = BatchLedger(edges=10, decision_rounds=[8], move_rounds=[4])
        c = CostModel(edge_apply=1, decision=1, move=3)
        # 1 core: 10 + 8 + 12 = 30; 4 cores: ceil(10/4)+ceil(8/4)+ceil(4/4)*3
        assert ledger.virtual_duration(1, c) == 30
        assert ledger.virtual_duration(4, c) == 3 + 2 + 3

    def test_more_cores_never_slower(self):
        ledger = BatchLedger(
            edges=100, decision_rounds=[50, 20, 7], move_rounds=[30, 12], marked=25
        )
        c = CostModel()
        durations = [ledger.virtual_duration(w, c) for w in (1, 2, 4, 8, 16)]
        assert durations == sorted(durations, reverse=True)

    def test_span_floor(self):
        """With unbounded cores, duration approaches one tick per round."""
        ledger = BatchLedger(edges=5, decision_rounds=[100] * 10)
        c = CostModel()
        assert ledger.virtual_duration(10_000, c) == pytest.approx(11.0)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            BatchLedger().virtual_duration(0, CostModel())


class TestSimSession:
    def test_ledgers_populated(self):
        res = SimSession(CPLDS(120), "cplds").run(make_stream())
        assert res.batches
        assert res.total_edges == make_stream().total_edges
        assert all(b.duration > 0 for b in res.batches)
        assert any(b.ledger.move_rounds for b in res.batches)

    def test_cplds_counts_marks(self):
        res = SimSession(CPLDS(120), "cplds").run(make_stream())
        assert any(b.ledger.marked > 0 for b in res.batches)

    def test_nonsync_has_no_marks(self):
        res = SimSession(NonSyncKCore(120), "nonsync").run(make_stream())
        assert all(b.ledger.marked == 0 for b in res.batches)

    def test_deterministic(self):
        r1 = SimSession(CPLDS(120), "cplds").run(make_stream())
        r2 = SimSession(CPLDS(120), "cplds").run(make_stream())
        assert r1.total_write_time == r2.total_write_time
        assert r1.total_reads == r2.total_reads

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SimSession(CPLDS(10), "bogus")

    def test_syncreads_latency_includes_waiting(self):
        sync = SimSession(SyncReadsKCore(120), "syncreads").run(make_stream())
        nonsync = SimSession(NonSyncKCore(120), "nonsync").run(make_stream())
        assert max(sync.read_latencies) > 100 * max(nonsync.read_latencies)


class TestFig7Shapes:
    """The scalability shapes the paper's Fig 7 reports."""

    def test_write_throughput_scales_with_cores(self):
        res = sweep_writer_scalability(
            lambda: CPLDS(120), "cplds", make_stream, [1, 2, 4, 8, 15]
        )
        tputs = [res[w].write_throughput() for w in (1, 2, 4, 8, 15)]
        assert tputs == sorted(tputs)
        assert tputs[-1] > 2 * tputs[0]

    def test_read_throughput_scales_with_readers(self):
        res = sweep_reader_scalability(
            lambda: CPLDS(120), "cplds", make_stream, [1, 2, 4, 8, 15]
        )
        tputs = [res[r].read_throughput() for r in (1, 2, 4, 8, 15)]
        assert tputs == sorted(tputs)

    def test_nonsync_reads_outpace_cplds(self):
        """Paper: NonSync read throughput exceeds CPLDS by a small factor
        (their measurement: up to 2.21x)."""
        cp = sweep_reader_scalability(
            lambda: CPLDS(120), "cplds", make_stream, [8]
        )[8]
        ns = sweep_reader_scalability(
            lambda: NonSyncKCore(120), "nonsync", make_stream, [8]
        )[8]
        ratio = ns.read_throughput() / cp.read_throughput()
        assert 1.0 < ratio <= 4.0

    def test_nonsync_write_throughput_at_least_cplds(self):
        """Paper: NonSync has the lowest update time (no marking)."""
        cp = sweep_writer_scalability(
            lambda: CPLDS(120), "cplds", make_stream, [8]
        )[8]
        ns = sweep_writer_scalability(
            lambda: NonSyncKCore(120), "nonsync", make_stream, [8]
        )[8]
        assert ns.write_throughput() >= cp.write_throughput()

    def test_syncreads_write_throughput_pays_for_reads(self):
        ns = sweep_writer_scalability(
            lambda: NonSyncKCore(120), "nonsync", make_stream, [8]
        )[8]
        sr = sweep_writer_scalability(
            lambda: SyncReadsKCore(120), "syncreads", make_stream, [8]
        )[8]
        assert sr.write_throughput() < ns.write_throughput()
