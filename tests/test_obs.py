"""Tests for the observability layer: registry, tracing, exporters.

Covers the design contracts of ``repro.obs``:

* counters/gauges/histograms are exact under concurrent writers;
* histogram buckets use inclusive (Prometheus ``le``) upper bounds;
* the process-wide registry resets in place — cached handles stay valid;
* spans nest per thread and feed the ``span_<name>_seconds`` histograms;
* disabled instrumentation records nothing (and hands out the null span);
* exporter output is byte-stable (golden files in ``tests/golden/``);
* the built-in hot-path instrumentation reports identical deterministic
  work counters on both level-store backends.
"""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import (
    COUNT_BUCKETS,
    MetricsRegistry,
    NULL_SPAN,
    log_buckets,
)
from repro.obs.export import to_jsonl, to_prometheus, render

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


@pytest.fixture(autouse=True)
def _clean_global_registry():
    """Leave the process-wide registry the way the session started."""
    was = obs.enabled()
    yield
    obs.REGISTRY.enabled = was
    obs.reset()


# ----------------------------------------------------------------------
# Buckets
# ----------------------------------------------------------------------
def test_log_buckets_values():
    assert log_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
    assert log_buckets(1e-6, 10.0, 3) == pytest.approx((1e-6, 1e-5, 1e-4))


@pytest.mark.parametrize(
    "start,factor,count", [(0.0, 2.0, 3), (-1.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)]
)
def test_log_buckets_validation(start, factor, count):
    with pytest.raises(ValueError):
        log_buckets(start, factor, count)


def test_histogram_bucket_edges_inclusive(reg):
    h = reg.histogram("h", (1.0, 2.0, 4.0))
    # x == bound lands in that bucket (le semantics); above all bounds
    # lands in the overflow bucket.
    h.observe(1.0)
    h.observe(2.0)
    h.observe(1.5)
    h.observe(4.0)
    h.observe(4.0001)
    h.observe(0.1)
    assert h.counts == [2, 2, 1, 1]
    assert h.count == 6
    assert h.sum == pytest.approx(1.0 + 2.0 + 1.5 + 4.0 + 4.0001 + 0.1)
    cum = h.cumulative()
    assert cum[-1] == (float("inf"), 6)
    assert [c for _, c in cum] == [2, 4, 5, 6]


def test_histogram_rejects_bad_bounds(reg):
    with pytest.raises(ValueError):
        reg.histogram("bad", ())
    with pytest.raises(ValueError):
        reg.histogram("bad2", (2.0, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("bad3", (1.0, 1.0))


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_counter_rejects_negative(reg):
    c = reg.counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_get_or_create_returns_same_handle(reg):
    assert reg.counter("x") is reg.counter("x")
    assert reg.counter("x", {"a": "1"}) is not reg.counter("x")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_reset_preserves_handles(reg):
    c = reg.counter("c")
    g = reg.gauge("g")
    h = reg.histogram("h", (1.0, 2.0))
    c.inc(5)
    g.set(3)
    h.observe(1.5)
    with reg.span("s"):
        pass
    reg.reset()
    assert c.value == 0 and g.value == 0 and h.count == 0
    assert sum(h.counts) == 0 and h.sum == 0.0
    assert len(reg.spans) == 0
    # The same objects are still wired into the registry.
    assert reg.counter("c") is c
    c.inc()
    assert reg.counter_value("c") == 1


def test_concurrent_writers_exact_totals(reg):
    c = reg.counter("hits")
    g = reg.gauge("depth")
    h = reg.histogram("obs", COUNT_BUCKETS)
    n_threads, per_thread = 8, 2000

    def work():
        for i in range(per_thread):
            c.inc()
            g.add(1)
            h.observe(i % 7 + 1)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = n_threads * per_thread
    assert c.value == total
    assert g.value == total
    assert h.count == total
    assert sum(h.counts) == total


def test_snapshot_format(reg):
    reg.inc("a_total", 2)
    reg.inc("b_total", 1, labels={"kind": "x"})
    reg.set_gauge("g", 7)
    snap = reg.snapshot()
    assert snap["counters"] == {"a_total": 2, "b_total{kind=x}": 1}
    assert snap["gauges"] == {"g": 7}


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_spans_nest_and_feed_histograms(reg):
    with reg.span("outer", edges=3) as outer:
        with reg.span("inner") as inner:
            inner.set(moves=2)
    assert len(reg.spans) == 1
    root = reg.spans[0]
    assert root is outer
    assert root.attrs == {"edges": 3}
    assert [c.name for c in root.children] == ["inner"]
    assert root.children[0].attrs == {"moves": 2}
    assert root.duration >= root.children[0].duration >= 0.0
    # Every finished span feeds its latency histogram.
    assert reg.histogram("span_outer_seconds").count == 1
    assert reg.histogram("span_inner_seconds").count == 1
    # walk() yields depth-annotated nodes.
    assert [(d, s.name) for d, s in root.walk()] == [(0, "outer"), (1, "inner")]


def test_span_disabled_is_null(reg):
    reg.disable()
    sp = reg.span("nothing")
    assert sp is NULL_SPAN
    with sp as s:
        s.set(x=1)
    assert len(reg.spans) == 0
    assert reg.current_span() is NULL_SPAN


def test_spans_bounded(reg):
    small = MetricsRegistry(enabled=True, max_spans=4)
    for i in range(10):
        with small.span(f"s{i}"):
            pass
    assert len(small.spans) == 4
    assert small.spans[0].name == "s6"


def test_disabled_instrumentation_records_nothing():
    obs.disable()
    obs.reset()
    from repro.core.cplds import CPLDS

    cp = CPLDS(8)
    cp.insert_batch([(0, 1), (1, 2), (0, 2), (2, 3)])
    for v in range(4):
        cp.read(v)
    snap = obs.snapshot()
    assert all(v == 0 for v in snap["counters"].values())
    assert len(obs.REGISTRY.spans) == 0


def test_enabled_counters_match_engine_fields():
    obs.enable()
    obs.reset()
    from repro.core.cplds import CPLDS

    cp = CPLDS(16)
    clique = [(u, v) for u in range(12) for v in range(u + 1, 12)]
    cp.insert_batch(clique)
    cp.delete_batch(clique[:20])
    reg = obs.REGISTRY
    assert reg.counter_value("cplds_batches_total") == 2
    assert reg.counter_value("plds_moves_total") > 0
    # The process-wide counters aggregate exactly the engine's own fields
    # (single structure, so totals == the per-batch sums we can recompute).
    span_names = [s.name for s in reg.spans]
    assert span_names == ["cplds.insert_batch", "cplds.delete_batch"]
    insert_span = reg.spans[0]
    assert insert_span.attrs["edges"] == len(clique)
    assert insert_span.attrs["moves"] > 0


# ----------------------------------------------------------------------
# Exporters (golden files)
# ----------------------------------------------------------------------
def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    reg.inc("plds_moves_total", 42)
    reg.inc("columnar_kernel_calls_total", 3, labels={"kernel": "bulk_raise_level"})
    reg.set_gauge("coordinator_queue_depth", 7)
    h = reg.histogram("batch_rounds", (1.0, 2.0, 4.0))
    for x in (1, 2, 2, 3, 9):
        h.observe(x)
    with reg.span("insert_batch", edges=10) as sp:
        with reg.span("insert_phase"):
            pass
        sp.set(moves=5)
    # Pin the only nondeterministic fields so the export is byte-stable.
    root = reg.spans[0]
    root.duration = 0.25
    root.children[0].duration = 0.125
    reg._histograms.clear()  # span timing histograms are timing-dependent
    hh = reg.histogram("batch_rounds", (1.0, 2.0, 4.0))
    for x in (1, 2, 2, 3, 9):
        hh.observe(x)
    return reg


def _check_golden(name: str, text: str):
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        with open(path, "w") as fh:
            fh.write(text)
    with open(path) as fh:
        assert text == fh.read()


def test_prometheus_golden():
    _check_golden("obs_metrics.prom", to_prometheus(_golden_registry()))


def test_jsonl_golden():
    text = to_jsonl(_golden_registry())
    _check_golden("obs_metrics.jsonl", text)
    # And every line is valid JSON with a type tag.
    types = [json.loads(line)["type"] for line in text.splitlines()]
    assert types == ["counter", "counter", "gauge", "histogram", "span"]


def test_prometheus_shape():
    text = to_prometheus(_golden_registry())
    assert "# TYPE batch_rounds histogram" in text
    assert 'batch_rounds_bucket{le="+Inf"} 5' in text
    assert "batch_rounds_count 5" in text
    assert 'columnar_kernel_calls_total{kernel="bulk_raise_level"} 3' in text


def test_render_human():
    text = render(_golden_registry())
    assert "plds_moves_total" in text
    assert "coordinator_queue_depth" in text
    assert "insert_batch" in text and "insert_phase" in text


def test_render_empty():
    assert render(MetricsRegistry()) == "(no metrics recorded)"


# ----------------------------------------------------------------------
# Differential: both backends report identical deterministic counters
# ----------------------------------------------------------------------
DETERMINISTIC_COUNTERS = (
    "plds_moves_total",
    "plds_rounds_total",
    "cplds_batches_total",
    "cplds_marked_total",
    "cplds_dags_total",
    "marking_marks_total",
    "marking_dag_merges_total",
)


def test_backends_report_identical_work_counters():
    import random

    from repro.core.cplds import CPLDS

    random.seed(7)
    n = 120
    edges = set()
    while len(edges) < 420:
        u, v = random.sample(range(n), 2)
        edges.add((min(u, v), max(u, v)))
    stream = sorted(edges)

    per_backend = {}
    obs.enable()
    for backend in ("object", "columnar"):
        obs.reset()
        cp = CPLDS(n, backend=backend)
        cp.insert_batch(stream[:300])
        cp.delete_batch(stream[:80])
        cp.insert_batch(stream[300:])
        per_backend[backend] = {
            name: obs.REGISTRY.counter_value(name)
            for name in DETERMINISTIC_COUNTERS
        }
    assert per_backend["object"] == per_backend["columnar"]
    assert per_backend["object"]["plds_moves_total"] > 0
    assert per_backend["object"]["cplds_batches_total"] == 3


# ----------------------------------------------------------------------
# Thin views: telemetry mirrors into the registry
# ----------------------------------------------------------------------
def test_service_telemetry_mirrors_counters():
    from repro.harness.telemetry import ServiceTelemetry

    obs.enable()
    obs.reset()
    tele = ServiceTelemetry()
    tele.batches_applied += 3
    tele.recoveries += 1
    tele.record_transition("HEALTHY", "RECOVERING")
    reg = obs.REGISTRY
    assert reg.counter_value("service_batches_applied_total") == 3
    assert reg.counter_value("service_recoveries_total") == 1
    assert (
        reg.counter_value(
            "service_health_transitions_total",
            {"from": "HEALTHY", "to": "RECOVERING"},
        )
        == 1
    )
    # The dataclass remains the instance-local source of truth.
    assert tele.batches_applied == 3
    assert tele.transitions == [("HEALTHY", "RECOVERING")]


def test_service_telemetry_disabled_does_not_mirror():
    from repro.harness.telemetry import ServiceTelemetry

    obs.disable()
    obs.reset()
    tele = ServiceTelemetry()
    tele.retries += 5
    assert obs.REGISTRY.counter_value("service_retries_total") == 0
    assert tele.retries == 5


def test_telemetry_collector_feeds_batch_histogram():
    from repro.core.cplds import CPLDS
    from repro.harness.telemetry import TelemetryCollector

    obs.enable()
    obs.reset()
    cp = CPLDS(8)
    tele = TelemetryCollector.attach(cp)
    cp.insert_batch([(0, 1), (1, 2), (0, 2)])
    cp.delete_batch([(0, 1)])
    assert len(tele.records) == 2
    reg = obs.REGISTRY
    assert reg.histogram(
        "telemetry_batch_seconds", labels={"kind": "insert"}
    ).count == 1
    assert reg.histogram(
        "telemetry_batch_seconds", labels={"kind": "delete"}
    ).count == 1


# ----------------------------------------------------------------------
# Hygiene: durations must come from monotonic clocks
# ----------------------------------------------------------------------
def test_no_wall_clock_durations_in_src():
    """``time.time()`` is banned in src/ — it is not monotonic, so every
    duration must use ``perf_counter`` (or ``monotonic`` for deadlines)."""
    src_root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    offenders = []
    for dirpath, _dirs, files in os.walk(src_root):
        for fname in files:
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            with open(path, encoding="utf-8") as fh:
                if "time.time(" in fh.read():
                    offenders.append(os.path.relpath(path, src_root))
    assert not offenders, f"wall-clock time.time() found in: {offenders}"
