"""Tests for latency/throughput statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.stats import (
    LatencyStats,
    ThroughputStats,
    percentile,
    speedup,
    summarize_latencies,
)


class TestPercentile:
    def test_simple(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile(data, 0) == 1

    def test_small_sample_nearest_rank(self):
        assert percentile([3.0], 99.99) == 3.0
        assert percentile([1.0, 2.0], 99) == 2.0

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_monotone_in_pct(self, data):
        ps = [percentile(data, p) for p in (0, 25, 50, 75, 99, 100)]
        assert ps == sorted(ps)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_result_is_a_sample(self, data):
        assert percentile(data, 99.99) in data


class TestLatencyStats:
    def test_from_samples(self):
        s = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.min == 1.0
        assert s.max == 4.0
        assert s.p99 == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])

    def test_scaled(self):
        s = LatencyStats.from_samples([1e-6, 2e-6]).scaled(1e6)
        assert s.mean == pytest.approx(1.5)
        assert s.count == 2

    def test_summarize_alias(self):
        assert summarize_latencies([1.0]) == LatencyStats.from_samples([1.0])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=100))
    def test_ordering_invariants(self, data):
        s = LatencyStats.from_samples(data)
        assert s.min <= s.p50 <= s.p99 <= s.p9999 <= s.max
        assert s.min <= s.mean <= s.max


class TestThroughputAndSpeedup:
    def test_throughput(self):
        t = ThroughputStats(operations=100, duration=2.0)
        assert t.per_second == 50.0

    def test_zero_duration(self):
        assert ThroughputStats(10, 0.0).per_second == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) == float("inf")
