"""Tests for the SyncReads and NonSync baselines."""

import threading
import time

import pytest

from repro.core import NonSyncKCore, SyncReadsKCore
from repro.graph import generators as gen
from repro.runtime.inject import InjectionProbe, attach_probe


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


class TestNonSync:
    def test_read_returns_live_level_estimate(self):
        ns = NonSyncKCore(6)
        ns.insert_batch(clique(6))
        for v in range(6):
            assert ns.read(v) == ns.params.coreness_estimate(ns.plds.level(v))

    def test_reads_never_retry(self):
        ns = NonSyncKCore(6)
        ns.insert_batch(clique(6))
        assert ns.read_verbose(0).retries == 0

    def test_can_observe_intermediate_levels(self):
        """The defining (non-linearizable) behaviour: mid-batch reads see
        levels strictly between the batch boundaries."""
        n = 10
        ns = NonSyncKCore(n)
        pre = ns.levels()
        observed = []

        def on_point(_tag):
            for v in range(n):
                observed.append((v, ns.read_level(v)))

        attach_probe(ns, InjectionProbe(on_point))
        ns.insert_batch(clique(n))
        post = ns.levels()
        intermediate = [
            (v, lvl)
            for v, lvl in observed
            if lvl not in (pre[v], post[v])
        ]
        assert intermediate, "expected at least one intermediate-level read"

    def test_update_path_identical_to_plds(self):
        edges = gen.erdos_renyi(30, 120, seed=4)
        ns = NonSyncKCore(30)
        ns.insert_batch(edges)
        ns.check_invariants()

    def test_batch_number_tracks_batches(self):
        ns = NonSyncKCore(4)
        ns.insert_batch([(0, 1)])
        ns.apply_batch(insertions=[(1, 2)])
        assert ns.batch_number == 2


class TestSyncReads:
    def test_quiescent_read_immediate(self):
        sr = SyncReadsKCore(6)
        sr.insert_batch(clique(6))
        r = sr.read_verbose(0)
        assert r.retries == 0
        assert r.estimate == sr.params.coreness_estimate(sr.plds.level(0))

    def test_concurrent_read_waits_for_batch(self):
        """A read invoked mid-batch must block until the batch completes and
        then return the post-batch value."""
        sr = SyncReadsKCore(10)
        started = threading.Event()
        release = threading.Event()

        class SlowHooks:
            def batch_begin(self, kind, edges):
                pass

            def before_move(self, v, old, new, phase):
                started.set()
                release.wait(timeout=10)

            def round_boundary(self):
                pass

            def batch_end(self):
                pass

        from repro.runtime.inject import HookChain

        sr.plds.hooks = HookChain(sr.plds.hooks, SlowHooks())
        results = {}

        def reader():
            started.wait(timeout=10)
            t0 = time.perf_counter()
            results["value"] = sr.read_verbose(0)
            results["latency"] = time.perf_counter() - t0

        def updater():
            sr.insert_batch(clique(10))

        tu = threading.Thread(target=updater)
        tr = threading.Thread(target=reader)
        tu.start()
        tr.start()
        started.wait(timeout=10)
        time.sleep(0.05)  # let the reader reach the wait
        release.set()
        tu.join(timeout=10)
        tr.join(timeout=10)
        assert results["value"].retries > 0, "read did not wait for the batch"
        # The returned value is the post-batch level.
        assert results["value"].level == sr.plds.level(0)

    def test_drain_returns_when_no_waiters(self):
        sr = SyncReadsKCore(4)
        sr.drain()  # no-op, must not hang

    def test_drain_waits_for_queued_reader(self):
        sr = SyncReadsKCore(8)
        in_read = threading.Event()

        def reader():
            in_read.set()
            sr.read(0)

        # Simulate a batch in progress, then a queued reader, then release.
        with sr._cond:
            sr._in_batch = True
        t = threading.Thread(target=reader)
        t.start()
        in_read.wait(timeout=5)
        time.sleep(0.02)
        with sr._cond:
            sr._in_batch = False
            sr._cond.notify_all()
        sr.drain()
        t.join(timeout=5)
        assert sr._waiting == 0

    def test_update_and_conveniences(self):
        edges = gen.erdos_renyi(20, 60, seed=5)
        sr = SyncReadsKCore(20)
        sr.insert_batch(edges)
        sr.delete_batch(edges[::2])
        sr.check_invariants()
        assert len(sr.levels()) == 20
        assert sr.graph.num_edges == len(edges) - len(edges[::2])


class TestInterchangeability:
    """All three implementations expose the same surface (CorenessReader)."""

    @pytest.mark.parametrize("factory", [NonSyncKCore, SyncReadsKCore])
    def test_same_final_estimates_as_each_other(self, factory):
        from repro.core import CPLDS

        edges = gen.chung_lu(25, 90, seed=6)
        ref = CPLDS(25)
        ref.insert_batch(edges)
        impl = factory(25)
        impl.insert_batch(edges)
        for v in range(25):
            assert impl.read(v) == ref.read(v)
