"""Tests for the exact dynamic k-core baseline (traversal algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VertexOutOfRange
from repro.exact import DynamicExactKCore, core_decomposition
from repro.graph import generators as gen


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


class TestInsertion:
    def test_single_edge(self):
        kc = DynamicExactKCore(3)
        kc.insert_edge(0, 1)
        assert kc.corenesses().tolist() == [1, 1, 0]
        kc.check()

    def test_duplicate_insert_noop(self):
        kc = DynamicExactKCore(3)
        assert kc.insert_edge(0, 1) is True
        assert kc.insert_edge(1, 0) is False

    def test_triangle_promotes_all(self):
        kc = DynamicExactKCore(3)
        kc.insert_batch([(0, 1), (1, 2), (0, 2)])
        assert kc.corenesses().tolist() == [2, 2, 2]
        kc.check()

    def test_clique_incremental(self):
        kc = DynamicExactKCore(7)
        for e in clique(7):
            kc.insert_edge(*e)
            kc.check()
        assert kc.coreness(0) == 6

    def test_pendant_not_promoted(self):
        kc = DynamicExactKCore(5)
        kc.insert_batch(clique(4))
        kc.insert_edge(3, 4)
        assert kc.coreness(4) == 1
        assert kc.coreness(3) == 3
        kc.check()

    def test_joining_two_subcores(self):
        # Two triangles joined by a new edge stay at core 2.
        kc = DynamicExactKCore(6)
        kc.insert_batch([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        kc.insert_edge(2, 3)
        assert kc.corenesses().tolist() == [2, 2, 2, 2, 2, 2]
        kc.check()


class TestDeletion:
    def test_delete_missing_noop(self):
        kc = DynamicExactKCore(3)
        assert kc.delete_edge(0, 1) is False

    def test_break_triangle(self):
        kc = DynamicExactKCore(3)
        kc.insert_batch(clique(3))
        kc.delete_edge(0, 1)
        assert kc.corenesses().tolist() == [1, 1, 1]
        kc.check()

    def test_cascade_through_chain(self):
        # A 4-cycle is a 2-core; removing one edge demotes everyone.
        kc = DynamicExactKCore(4)
        kc.insert_batch([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert kc.coreness(0) == 2
        kc.delete_edge(0, 1)
        assert kc.corenesses().tolist() == [1, 1, 1, 1]
        kc.check()

    def test_deep_clique_teardown(self):
        kc = DynamicExactKCore(6)
        edges = clique(6)
        kc.insert_batch(edges)
        for e in edges:
            kc.delete_edge(*e)
            kc.check()
        assert kc.corenesses().tolist() == [0] * 6

    def test_isolated_vertex_query(self):
        kc = DynamicExactKCore(2)
        assert kc.coreness(1) == 0
        with pytest.raises(VertexOutOfRange):
            kc.coreness(2)


class TestAgainstRecompute:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_insert_stream(self, seed):
        edges = gen.erdos_renyi(30, 120, seed=seed)
        kc = DynamicExactKCore(30)
        for i, e in enumerate(edges):
            kc.insert_edge(*e)
            if i % 20 == 19:
                kc.check()
        kc.check()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_churn(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        kc = DynamicExactKCore(n)
        possible = clique(n)
        for _ in range(150):
            e = possible[int(rng.integers(0, len(possible)))]
            if kc.graph.has_edge(*e):
                kc.delete_edge(*e)
            else:
                kc.insert_edge(*e)
        kc.check()

    def test_read_matches_peeling(self):
        edges = gen.chung_lu(40, 160, seed=9)
        kc = DynamicExactKCore(40)
        kc.insert_batch(edges)
        expected = core_decomposition(kc.graph)
        for v in range(40):
            assert kc.read(v) == float(expected[v])


@st.composite
def churn_scripts(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    ops = draw(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(possible)), max_size=40
        )
    )
    return n, ops


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(churn_scripts())
    def test_always_matches_recompute(self, script):
        n, ops = script
        kc = DynamicExactKCore(n)
        for is_insert, (u, v) in ops:
            if is_insert:
                kc.insert_edge(u, v)
            else:
                kc.delete_edge(u, v)
        kc.check()

    @settings(max_examples=40, deadline=None)
    @given(churn_scripts())
    def test_single_update_changes_coreness_by_at_most_one(self, script):
        n, ops = script
        kc = DynamicExactKCore(n)
        for is_insert, (u, v) in ops:
            before = kc.corenesses().copy()
            changed = (
                kc.insert_edge(u, v) if is_insert else kc.delete_edge(u, v)
            )
            after = kc.corenesses()
            if changed:
                assert np.all(np.abs(after - before) <= 1)
            else:
                assert np.array_equal(after, before)
