"""Integration tests for the experiment drivers (tiny configurations).

These are the shape checks of the reproduction: each driver must produce
rows whose relative ordering matches the paper's findings.  The benches run
the same drivers at larger scale; these keep CI fast.
"""

import pytest

from repro.harness import experiments as E
from repro.harness import report as R

TINY = E.ExperimentConfig(
    datasets=("dblp",),
    batch_size=2500,
    num_readers=1,
    trials=1,
    error_sample_size=40,
    thread_counts=(1, 4, 15),
)


@pytest.fixture(scope="module")
def fig3_rows():
    return E.fig3(TINY)


@pytest.fixture(scope="module")
def fig5_rows():
    return E.fig5(TINY)


class TestTable1:
    def test_rows_cover_requested_datasets(self):
        rows = E.table1(["dblp", "ctr"])
        assert [r.name for r in rows] == ["dblp", "ctr"]
        for r in rows:
            assert r.standin_vertices > 0
            assert r.standin_max_k > 0
            assert r.paper_max_k > 0

    def test_road_standin_matches_paper_max_k(self):
        (row,) = E.table1(["ctr"])
        assert row.standin_max_k == row.paper_max_k == 3

    def test_render(self):
        text = R.render_table1(E.table1(["dblp"]))
        assert "dblp" in text and "standin" in text


class TestFig3Shape:
    def test_all_impls_present(self, fig3_rows):
        assert {r.impl for r in fig3_rows} == {"cplds", "nonsync", "syncreads"}

    def test_cplds_orders_of_magnitude_below_syncreads(self, fig3_rows):
        by = {(r.impl, r.phase): r.stats for r in fig3_rows}
        for phase in ("insert",):
            cp = by.get(("cplds", phase))
            sr = by.get(("syncreads", phase))
            assert cp and sr
            assert sr.mean > 50 * cp.mean

    def test_cplds_within_small_factor_of_nonsync(self, fig3_rows):
        by = {(r.impl, r.phase): r.stats for r in fig3_rows}
        cp = by.get(("cplds", "insert"))
        ns = by.get(("nonsync", "insert"))
        assert cp and ns
        assert cp.mean <= 10 * ns.mean  # paper: <= 3.21; loose for CI noise

    def test_render(self, fig3_rows):
        assert "mean (us)" in R.render_fig3(fig3_rows)


class TestFig4Shape:
    def test_syncreads_latency_grows_with_batch_size(self):
        rows = E.fig4(TINY, batch_sizes=(1000, 4000))
        sr = {
            r.batch_size: r.stats.mean
            for r in rows
            if r.impl == "syncreads"
        }
        assert len(sr) == 2
        assert sr[4000] > sr[1000]

    def test_render(self):
        rows = E.fig4(TINY, batch_sizes=(2500,))
        assert "batch size" in R.render_fig4(rows)


class TestFig5Shape:
    def test_nonsync_fastest_updates(self, fig5_rows):
        by = {(r.impl, r.phase): r for r in fig5_rows}
        cp = by[("cplds", "insert")]
        ns = by[("nonsync", "insert")]
        assert ns.mean <= cp.mean
        # Paper: CPLDS update overhead at most ~1.5x; allow slack for the
        # Python constant factors and GIL noise.
        assert cp.mean <= 3.0 * ns.mean

    def test_max_at_least_mean(self, fig5_rows):
        for r in fig5_rows:
            assert r.max >= r.mean

    def test_render(self, fig5_rows):
        assert "mean batch (ms)" in R.render_fig5(fig5_rows)


class TestFig6Shape:
    def test_cplds_within_bound_nonsync_exceeds(self):
        rows = E.fig6(TINY.with_(datasets=("brain",)))
        by = {(r.impl, r.phase): r for r in rows}
        cp = by[("cplds", "insert")]
        ns = by[("nonsync", "insert")]
        assert cp.max_error <= cp.theoretical_bound + 1e-9
        assert ns.max_error > cp.max_error

    def test_flash_error_grows_with_clique_size(self):
        rows = E.fig6_flash(clique_sizes=(30, 60), sample_stride=6)
        ns = {r.clique_size: r.max_error for r in rows if r.impl == "nonsync"}
        cp = {r.clique_size: r.max_error for r in rows if r.impl == "cplds"}
        assert ns[60] > ns[30] > 2.0
        for size, err in cp.items():
            assert err <= 2.81, f"CPLDS exceeded bound at clique {size}"

    def test_render(self):
        rows = E.fig6_flash(clique_sizes=(20,), sample_stride=5)
        assert "clique size" in R.render_fig6_flash(rows)


class TestFig7Shape:
    def test_throughput_rows_cover_sweeps(self):
        rows = E.fig7(TINY)
        dirs = {(r.impl, r.direction) for r in rows}
        assert len(dirs) == 6  # 3 impls x 2 sweeps

    def test_write_scaling_monotone(self):
        rows = E.fig7(TINY)
        cp = sorted(
            (
                (r.count, r.write_throughput)
                for r in rows
                if r.impl == "cplds" and r.direction == "writers"
            )
        )
        tputs = [t for _, t in cp]
        assert tputs == sorted(tputs)

    def test_render(self):
        rows = E.fig7(TINY.with_(thread_counts=(1, 15)))
        assert "read tput" in R.render_fig7(rows)


class TestHeadline:
    def test_factors_computed(self, fig3_rows, fig5_rows):
        rows6 = E.fig6(TINY.with_(datasets=("brain",)))
        f = E.headline_factors(fig3_rows, fig5_rows, rows6)
        assert f.latency_speedup_vs_syncreads > 10
        assert 0 < f.latency_overhead_vs_nonsync < 10
        assert 1 <= f.update_overhead_vs_nonsync < 4
        assert f.accuracy_gain_vs_nonsync >= 1
        text = R.render_headline(f)
        assert "SyncReads" in text
