"""Tests for the CI perf-regression gate (`repro.harness.bench_gate`).

The gate's contract: deterministic work counters compare exactly (higher =
fail, lower = warn), wall-clock medians only ever warn, and `--warn-only`
(the CI override label's mode) downgrades failures to exit 0.
"""

import copy
import json

import pytest

from repro.harness import bench_gate
from repro.harness.bench_json import WORK_COUNTERS


def _doc(moves=1000, rounds=50, batch_s=0.5, read_s=1e-5) -> dict:
    work = {name: 1 for name in WORK_COUNTERS}
    work["plds_moves_total"] = moves
    work["plds_rounds_total"] = rounds
    backends = {}
    metrics = {}
    for backend in ("object", "columnar"):
        backends[backend] = {
            "fig3": {"cplds_median_read_latency_s": read_s},
            "fig5": {"cplds_median_batch_time_s": batch_s},
            "fig7": {},
        }
        metrics[backend] = {"work": dict(work), "snapshot": {}}
    return {"backends": backends, "metrics": metrics}


def test_identical_documents_pass():
    doc = _doc()
    result = bench_gate.compare(doc, copy.deepcopy(doc))
    assert result.ok
    assert result.failures == []
    assert result.warnings == []


def test_counter_regression_fails():
    base = _doc(moves=1000)
    cand = _doc(moves=1001)
    result = bench_gate.compare(base, cand)
    assert not result.ok
    # Both backends regressed (the fixture shares the work dict shape).
    assert len(result.failures) == 2
    assert "plds_moves_total" in result.failures[0]
    assert "+1" in result.failures[0]


def test_counter_improvement_warns_only():
    result = bench_gate.compare(_doc(moves=1000), _doc(moves=900))
    assert result.ok
    assert len(result.warnings) == 2
    assert "improved" in result.warnings[0]


def test_wall_clock_is_warn_only():
    # 10x slower wall clock: far past tolerance, still passes.
    result = bench_gate.compare(_doc(batch_s=0.5), _doc(batch_s=5.0))
    assert result.ok
    assert any("fig5_batch_time_s" in w for w in result.warnings)


def test_wall_clock_within_tolerance_is_silent():
    result = bench_gate.compare(_doc(batch_s=0.5), _doc(batch_s=0.55))
    assert result.ok and result.warnings == []


def test_missing_metrics_section_fails():
    base = _doc()
    del base["metrics"]
    result = bench_gate.compare(base, _doc())
    assert not result.ok
    assert "regenerate" in result.failures[0]

    cand = _doc()
    del cand["metrics"]["columnar"]["work"]
    result = bench_gate.compare(_doc(), cand)
    assert not result.ok
    assert any("[columnar]" in f for f in result.failures)


def test_missing_counter_fails():
    cand = _doc()
    del cand["metrics"]["object"]["work"]["plds_rounds_total"]
    result = bench_gate.compare(_doc(), cand)
    assert not result.ok
    assert any("plds_rounds_total" in f for f in result.failures)


def test_empty_documents_fail():
    assert not bench_gate.compare({}, {}).ok


@pytest.mark.parametrize(
    "mutate,expected",
    [(lambda d: None, 0), (lambda d: d["metrics"]["object"]["work"].update(plds_moves_total=9999), 1)],
)
def test_cli_exit_codes(tmp_path, capsys, mutate, expected):
    base = _doc()
    cand = _doc()
    mutate(cand)
    bp = tmp_path / "base.json"
    cp = tmp_path / "cand.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cand))
    rc = bench_gate.main(["--baseline", str(bp), "--candidate", str(cp)])
    assert rc == expected
    out = capsys.readouterr().out
    assert ("PASS" in out) == (expected == 0)


def test_cli_warn_only_overrides_failure(tmp_path, capsys):
    base = _doc()
    cand = _doc(moves=2000)
    bp = tmp_path / "base.json"
    cp = tmp_path / "cand.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cand))
    rc = bench_gate.main(
        ["--baseline", str(bp), "--candidate", str(cp), "--warn-only"]
    )
    assert rc == 0
    assert "overridden" in capsys.readouterr().out


def test_checked_in_baseline_has_metrics():
    """The repo's own BENCH_pr6.json must carry the work-counter section
    the CI gate depends on, for every backend."""
    import os

    path = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_pr6.json")
    with open(path) as fh:
        doc = json.load(fh)
    for backend in ("object", "columnar", "columnar-frontier"):
        work = doc["metrics"][backend]["work"]
        for name in WORK_COUNTERS:
            assert isinstance(work[name], int) and work[name] >= 0
    # Work counters are backend-independent by construction.
    assert doc["metrics"]["object"]["work"] == doc["metrics"]["columnar"]["work"]
