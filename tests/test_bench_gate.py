"""Tests for the CI perf-regression gate (`repro.harness.bench_gate`).

The gate's contract: deterministic work counters compare exactly (higher =
fail, lower = warn), wall-clock medians only ever warn, and `--warn-only`
(the CI override label's mode) downgrades failures to exit 0.
"""

import copy
import json

import pytest

from repro.harness import bench_gate
from repro.harness.bench_json import WORK_COUNTERS


def _staleness(p99=1.0, frac=0.05, retries=0.001, slo_status="PASS") -> dict:
    return {
        "reads_live": 950,
        "reads_descriptor": 50,
        "descriptor_read_fraction": frac,
        "retries_total": 1,
        "retries_per_read": retries,
        "staleness_epochs_p50": 0.0,
        "staleness_epochs_p99": p99,
        "staleness_epochs_max": 1.0,
        "slo": {
            "status": slo_status,
            "verdicts": [
                {"name": "staleness-p99", "status": slo_status},
            ],
        },
    }


def _doc(moves=1000, rounds=50, batch_s=0.5, read_s=1e-5, staleness=None) -> dict:
    work = {name: 1 for name in WORK_COUNTERS}
    work["plds_moves_total"] = moves
    work["plds_rounds_total"] = rounds
    backends = {}
    metrics = {}
    for backend in ("object", "columnar"):
        backends[backend] = {
            "fig3": {"cplds_median_read_latency_s": read_s},
            "fig5": {"cplds_median_batch_time_s": batch_s},
            "fig7": {},
        }
        if staleness is not None:
            backends[backend]["staleness"] = copy.deepcopy(staleness)
        metrics[backend] = {"work": dict(work), "snapshot": {}}
    return {"backends": backends, "metrics": metrics}


def test_identical_documents_pass():
    doc = _doc()
    result = bench_gate.compare(doc, copy.deepcopy(doc))
    assert result.ok
    assert result.failures == []
    assert result.warnings == []


def test_counter_regression_fails():
    base = _doc(moves=1000)
    cand = _doc(moves=1001)
    result = bench_gate.compare(base, cand)
    assert not result.ok
    # Both backends regressed (the fixture shares the work dict shape).
    assert len(result.failures) == 2
    assert "plds_moves_total" in result.failures[0]
    assert "+1" in result.failures[0]


def test_counter_improvement_warns_only():
    result = bench_gate.compare(_doc(moves=1000), _doc(moves=900))
    assert result.ok
    assert len(result.warnings) == 2
    assert "improved" in result.warnings[0]


def test_wall_clock_is_warn_only():
    # 10x slower wall clock: far past tolerance, still passes.
    result = bench_gate.compare(_doc(batch_s=0.5), _doc(batch_s=5.0))
    assert result.ok
    assert any("fig5_batch_time_s" in w for w in result.warnings)


def test_wall_clock_within_tolerance_is_silent():
    result = bench_gate.compare(_doc(batch_s=0.5), _doc(batch_s=0.55))
    assert result.ok and result.warnings == []


def test_missing_metrics_section_fails():
    base = _doc()
    del base["metrics"]
    result = bench_gate.compare(base, _doc())
    assert not result.ok
    assert "regenerate" in result.failures[0]

    cand = _doc()
    del cand["metrics"]["columnar"]["work"]
    result = bench_gate.compare(_doc(), cand)
    assert not result.ok
    assert any("[columnar]" in f for f in result.failures)


def test_missing_counter_fails():
    cand = _doc()
    del cand["metrics"]["object"]["work"]["plds_rounds_total"]
    result = bench_gate.compare(_doc(), cand)
    assert not result.ok
    assert any("plds_rounds_total" in f for f in result.failures)


def test_empty_documents_fail():
    assert not bench_gate.compare({}, {}).ok


@pytest.mark.parametrize(
    "mutate,expected",
    [(lambda d: None, 0), (lambda d: d["metrics"]["object"]["work"].update(plds_moves_total=9999), 1)],
)
def test_cli_exit_codes(tmp_path, capsys, mutate, expected):
    base = _doc()
    cand = _doc()
    mutate(cand)
    bp = tmp_path / "base.json"
    cp = tmp_path / "cand.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cand))
    rc = bench_gate.main(["--baseline", str(bp), "--candidate", str(cp)])
    assert rc == expected
    out = capsys.readouterr().out
    assert ("PASS" in out) == (expected == 0)


def test_cli_warn_only_overrides_failure(tmp_path, capsys):
    base = _doc()
    cand = _doc(moves=2000)
    bp = tmp_path / "base.json"
    cp = tmp_path / "cand.json"
    bp.write_text(json.dumps(base))
    cp.write_text(json.dumps(cand))
    rc = bench_gate.main(
        ["--baseline", str(bp), "--candidate", str(cp), "--warn-only"]
    )
    assert rc == 0
    assert "overridden" in capsys.readouterr().out


def test_slo_budget_overrun_warns_only():
    """Spending >1.25x+slack of a staleness budget warns, never fails."""
    base = _doc(staleness=_staleness(p99=1.0))
    cand = _doc(staleness=_staleness(p99=4.0))
    result = bench_gate.compare(base, cand)
    assert result.ok
    assert any("staleness_epochs_p99" in w for w in result.warnings)


def test_slo_budget_within_tolerance_is_silent():
    base = _doc(staleness=_staleness(p99=1.0, frac=0.05, retries=0.001))
    cand = _doc(staleness=_staleness(p99=1.0, frac=0.055, retries=0.002))
    result = bench_gate.compare(base, cand)
    assert result.ok and result.warnings == []


def test_slo_section_missing_from_baseline_is_silent():
    """Old baselines predate the staleness section: nothing to compare."""
    base = _doc()  # no staleness anywhere
    cand = _doc(staleness=_staleness())
    result = bench_gate.compare(base, cand)
    assert result.ok and result.warnings == []


def test_slo_section_lost_by_candidate_warns():
    base = _doc(staleness=_staleness())
    cand = _doc()
    result = bench_gate.compare(base, cand)
    assert result.ok
    assert any("lost the staleness section" in w for w in result.warnings)


def test_slo_fail_verdict_warns():
    base = _doc(staleness=_staleness())
    cand = _doc(staleness=_staleness(slo_status="FAIL"))
    result = bench_gate.compare(base, cand)
    assert result.ok
    assert any("SLO report is FAIL" in w for w in result.warnings)
    assert any("staleness-p99" in w for w in result.warnings)


def test_slo_none_valued_fields_are_skipped():
    """None percentiles (no histogram data on one side) never warn."""
    stale = _staleness()
    stale["staleness_epochs_p99"] = None
    result = bench_gate.compare(
        _doc(staleness=_staleness()), _doc(staleness=stale)
    )
    assert result.ok and result.warnings == []


def test_checked_in_baseline_has_metrics():
    """The repo's checked-in baseline (BENCH_ARTIFACT) must carry the
    work-counter section the CI gate depends on, for every backend."""
    import os

    from repro.harness.bench_json import BENCH_ARTIFACT

    path = os.path.join(os.path.dirname(__file__), os.pardir, BENCH_ARTIFACT)
    with open(path) as fh:
        doc = json.load(fh)
    for backend in ("object", "columnar", "columnar-frontier"):
        work = doc["metrics"][backend]["work"]
        for name in WORK_COUNTERS:
            assert isinstance(work[name], int) and work[name] >= 0
    # Work counters are backend-independent by construction.
    assert doc["metrics"]["object"]["work"] == doc["metrics"]["columnar"]["work"]
    # Every backend carries the staleness accounting the SLO budgets read.
    for backend in ("object", "columnar", "columnar-frontier"):
        stale = doc["backends"][backend]["staleness"]
        assert stale["reads_live"] + stale["reads_descriptor"] > 0
        assert stale["slo"]["status"] in ("PASS", "WARN", "FAIL")
