"""Tests for the text report rendering."""

from repro.harness.report import _fmt, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows have the same width.
        assert len(set(len(l) for l in lines)) == 1

    def test_headers_and_separator(self):
        text = format_table(["x"], [(1,)])
        lines = text.splitlines()
        assert lines[0].strip() == "x"
        assert set(lines[1].strip()) == {"-"}

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_mixed_types(self):
        text = format_table(["n", "f", "s"], [(1, 2.5, "hi")])
        assert "2.500" in text
        assert "hi" in text


class TestFmt:
    def test_small_float(self):
        assert _fmt(0.0001234) == "1.234e-04"

    def test_large_float(self):
        assert _fmt(1234567.0) == "1.235e+06"

    def test_mid_float(self):
        assert _fmt(3.14159) == "3.142"

    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_int_passthrough(self):
        assert _fmt(42) == "42"

    def test_string_passthrough(self):
        assert _fmt("abc") == "abc"


class TestRunAllCli:
    def test_build_config_validates_datasets(self):
        import argparse

        import pytest

        from repro.harness.run_all import build_config

        ns = argparse.Namespace(
            full=False, datasets=["nope"], trials=None,
            batch_size=None, readers=None,
        )
        with pytest.raises(SystemExit):
            build_config(ns)

    def test_build_config_overrides(self):
        import argparse

        from repro.harness.run_all import build_config

        ns = argparse.Namespace(
            full=True, datasets=["dblp"], trials=2,
            batch_size=500, readers=3,
        )
        cfg = build_config(ns)
        assert cfg.datasets == ("dblp",)
        assert cfg.trials == 2
        assert cfg.batch_size == 500
        assert cfg.num_readers == 3

    def test_skip_everything_runs_fast(self, capsys):
        from repro.harness.run_all import main

        rc = main(
            [
                "--datasets", "dblp",
                "--skip", "table1", "fig3", "fig4", "fig5", "fig6", "fig7",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total reproduction time" in out
