"""Tests for the atomic primitives and both union-find variants."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unionfind import (
    AtomicCell,
    AtomicCounter,
    ConcurrentUnionFind,
    SequentialUnionFind,
)


class TestAtomicCell:
    def test_load_store(self):
        c = AtomicCell(1)
        assert c.load() == 1
        c.store(2)
        assert c.load() == 2

    def test_compare_exchange_success_and_failure(self):
        c = AtomicCell("a")
        assert c.compare_exchange("a", "b") is True
        assert c.compare_exchange("a", "c") is False
        assert c.load() == "b"

    def test_swap(self):
        c = AtomicCell(10)
        assert c.swap(20) == 10
        assert c.load() == 20

    def test_concurrent_cas_only_one_winner(self):
        c = AtomicCell(0)
        wins = []
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            if c.compare_exchange(0, i + 1):
                wins.append(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestAtomicCounter:
    def test_fetch_add(self):
        c = AtomicCounter(5)
        assert c.fetch_add(2) == 5
        assert c.load() == 7

    def test_add_returns_new_value(self):
        c = AtomicCounter()
        assert c.add(3) == 3

    def test_concurrent_increments_all_counted(self):
        c = AtomicCounter()

        def worker():
            for _ in range(1000):
                c.fetch_add()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.load() == 4000


class TestSequentialUnionFind:
    def test_initial_singletons(self):
        uf = SequentialUnionFind(4)
        assert uf.num_sets == 4
        assert [uf.find(i) for i in range(4)] == [0, 1, 2, 3]

    def test_union_returns_min_id_root(self):
        uf = SequentialUnionFind(5)
        assert uf.union(4, 2) == 2
        assert uf.union(2, 1) == 1
        assert uf.find(4) == 1

    def test_union_idempotent(self):
        uf = SequentialUnionFind(3)
        uf.union(0, 1)
        assert uf.union(1, 0) == 0
        assert uf.num_sets == 2

    def test_same_set(self):
        uf = SequentialUnionFind(4)
        uf.union(0, 3)
        assert uf.same_set(0, 3)
        assert not uf.same_set(1, 3)

    def test_sets_listing(self):
        uf = SequentialUnionFind(4)
        uf.union(1, 2)
        assert uf.sets() == {0: [0], 1: [1, 2], 3: [3]}

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SequentialUnionFind(-1)


class TestConcurrentUnionFind:
    def test_matches_sequential_semantics(self):
        cu = ConcurrentUnionFind(6)
        su = SequentialUnionFind(6)
        for a, b in [(0, 5), (1, 2), (5, 2), (3, 4)]:
            assert cu.union(a, b) == su.union(a, b)
        for x in range(6):
            assert cu.find(x) == su.find(x)

    def test_roots_listing(self):
        cu = ConcurrentUnionFind(5)
        cu.union(0, 1)
        cu.union(2, 3)
        assert sorted(cu.roots()) == [0, 2, 4]

    def test_concurrent_unions_converge(self):
        n = 64
        cu = ConcurrentUnionFind(n)
        pairs = [(i % n, (i * 7 + 3) % n) for i in range(n * 4)]
        barrier = threading.Barrier(4)

        def worker(offset):
            barrier.wait()
            for a, b in pairs[offset::4]:
                cu.union(a, b)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Compare against a sequential run of the same union set.
        su = SequentialUnionFind(n)
        for a, b in pairs:
            su.union(a, b)
        assert [cu.find(x) for x in range(n)] == [su.find(x) for x in range(n)]

    def test_concurrent_finds_during_unions_terminate(self):
        n = 128
        cu = ConcurrentUnionFind(n)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    for x in range(n):
                        r = cu.find(x)
                        assert 0 <= r <= x
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        for i in range(n - 1):
            cu.union(i, i + 1)
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert all(cu.find(x) == 0 for x in range(n))


class TestUnionFindProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=1, max_value=24),
        st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23)), max_size=60
        ),
    )
    def test_concurrent_equals_sequential_on_any_script(self, n, ops):
        ops = [(a % n, b % n) for a, b in ops]
        cu = ConcurrentUnionFind(n)
        su = SequentialUnionFind(n)
        for a, b in ops:
            cu.union(a, b)
            su.union(a, b)
        assert [cu.find(x) for x in range(n)] == [su.find(x) for x in range(n)]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40)
    )
    def test_representative_is_set_minimum(self, ops):
        uf = SequentialUnionFind(16)
        for a, b in ops:
            uf.union(a, b)
        for root, members in uf.sets().items():
            assert root == min(members)
