"""Tests for the write-ahead batch journal (scan, commit filtering,
torn-tail tolerance, mid-stream corruption, reopen, compaction)."""

import os

import pytest

from repro.core import CPLDS
from repro.errors import JournalCorruptError, PersistError
from repro.lds import LDSParams
from repro.persist import BatchJournal, cplds_from_snapshot


def make_journal(path, n=8):
    return BatchJournal.create(
        path, num_vertices=n, params=LDSParams(n)
    )


class TestRoundTrip:
    def test_committed_batches_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with make_journal(path) as j:
            s1 = j.append_batch([(0, 1), (1, 2)], [])
            j.commit(s1)
            s2 = j.append_batch([(2, 3)], [(0, 1)])
            j.commit(s2)
        contents = BatchJournal.scan(path)
        recs = contents.committed_batches()
        assert [r.seq for r in recs] == [s1, s2]
        assert recs[0].insertions == ((0, 1), (1, 2))
        assert recs[1].deletions == ((0, 1),)
        assert not contents.torn_tail

    def test_uncommitted_batch_not_replayable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with make_journal(path) as j:
            s1 = j.append_batch([(0, 1)], [])
            j.commit(s1)
            j.append_batch([(1, 2)], [])  # write-ahead, never committed
        recs = BatchJournal.scan(path).committed_batches()
        assert [r.seq for r in recs] == [s1]

    def test_genesis_carries_params(self, tmp_path):
        path = tmp_path / "j.jsonl"
        params = LDSParams(9, delta=0.5, lam=1.0)
        BatchJournal.create(path, num_vertices=9, params=params).close()
        genesis = BatchJournal.scan(path).genesis
        assert genesis["num_vertices"] == 9
        assert genesis["delta"] == 0.5

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path).close()
        with pytest.raises(PersistError):
            make_journal(path)

    def test_checkpoint_notes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with make_journal(path) as j:
            s = j.append_batch([(0, 1)], [])
            j.commit(s)
            j.note_checkpoint(s, "checkpoint-00000001.npz")
        notes = BatchJournal.scan(path).checkpoint_notes()
        assert notes == [(s, "checkpoint-00000001.npz")]


class TestDamage:
    def _journal_with_batches(self, path, count=3):
        with make_journal(path) as j:
            for i in range(count):
                seq = j.append_batch([(i, i + 1)], [])
                j.commit(seq)
        return path

    def test_torn_tail_tolerated(self, tmp_path):
        path = self._journal_with_batches(tmp_path / "j.jsonl")
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)  # tear the final record
        contents = BatchJournal.scan(path)
        assert contents.torn_tail
        # The final commit marker was torn off: batch 3 is uncommitted.
        assert [r.seq for r in contents.committed_batches()] == [1, 2]

    def test_mid_stream_corruption_raises(self, tmp_path):
        path = self._journal_with_batches(tmp_path / "j.jsonl")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"xxxx corrupted\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError):
            BatchJournal.scan(path)

    def test_corrupt_genesis_raises(self, tmp_path):
        path = self._journal_with_batches(tmp_path / "j.jsonl")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"not a genesis record\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError):
            BatchJournal.scan(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalCorruptError):
            BatchJournal.scan(path)

    def test_reopen_truncates_torn_tail(self, tmp_path):
        # A torn record must be chopped before appending, otherwise new
        # records land after the damage and the next scan sees mid-stream
        # corruption (found by the chaos harness).
        path = self._journal_with_batches(tmp_path / "j.jsonl")
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)
        with BatchJournal.open(path) as j:
            seq = j.append_batch([(5, 6)], [])
            j.commit(seq)
        contents = BatchJournal.scan(path)  # must not raise
        assert not contents.torn_tail
        assert seq in {r.seq for r in contents.committed_batches()}

    def test_reopen_never_reuses_sequence_numbers(self, tmp_path):
        path = self._journal_with_batches(tmp_path / "j.jsonl", count=3)
        with BatchJournal.open(path) as j:
            assert j.append_batch([(6, 7)], []) == 4


class TestCompaction:
    def test_compacted_journal_restores_alone(self, tmp_path):
        cp = CPLDS(8)
        cp.insert_batch([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = tmp_path / "j.jsonl"
        j = BatchJournal.compact(path, cplds=cp, seq=5)
        s = j.append_batch([(3, 4)], [])
        j.commit(s)
        assert s == 6
        j.close()
        contents = BatchJournal.scan(path)
        assert contents.floor() == 5
        restored = cplds_from_snapshot(
            contents.genesis, contents.latest_snapshot()
        )
        assert restored.levels() == cp.levels()
        assert sorted(restored.graph.edges()) == sorted(cp.graph.edges())
        # Only the post-snapshot suffix remains as batch records.
        assert [r.seq for r in contents.committed_batches()] == [6]

    def test_floor_zero_without_snapshot(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path).close()
        contents = BatchJournal.scan(path)
        assert contents.floor() == 0
        assert contents.latest_snapshot() is None

    def test_compaction_replaces_old_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with make_journal(path) as j:
            for i in range(4):
                j.commit(j.append_batch([(i, i + 1)], []))
        cp = CPLDS(8)
        cp.insert_batch([(0, 1)])
        BatchJournal.compact(path, cplds=cp, seq=4).close()
        contents = BatchJournal.scan(path)
        assert contents.committed_batches() == []
        assert contents.floor() == 4
