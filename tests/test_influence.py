"""Tests for the k-shell influence-ranking extension."""

import pytest

from repro.core import CPLDS
from repro.extensions.influence import (
    exact_rank,
    rank_by_coreness,
    ranking_agreement,
    shell_histogram,
    spreading_power_proxy,
    top_spreaders,
)
from repro.graph import generators as gen
from repro.lds import LDSParams


def loaded(n=200, seed=5):
    edges = gen.community_overlay(n, 2, 20, 300, seed=seed)
    cp = CPLDS(n, params=LDSParams(n, levels_per_group=20))
    cp.insert_batch(edges)
    return cp


class TestRanking:
    def test_rank_is_permutation(self):
        cp = loaded()
        ranking = rank_by_coreness(cp)
        assert sorted(ranking) == list(range(cp.graph.num_vertices))

    def test_rank_respects_estimates(self):
        cp = loaded()
        ranking = rank_by_coreness(cp)
        ests = [cp.read(v) for v in ranking]
        assert ests == sorted(ests, reverse=True)

    def test_top_spreaders_slice(self):
        cp = loaded()
        assert top_spreaders(cp, 5) == rank_by_coreness(cp)[:5]
        assert top_spreaders(cp, 0) == []
        with pytest.raises(ValueError):
            top_spreaders(cp, -1)

    def test_deterministic(self):
        cp = loaded()
        assert rank_by_coreness(cp) == rank_by_coreness(cp)


class TestAgreementWithExact:
    def test_head_of_ranking_preserved(self):
        """The (2+ε) estimates keep most of the exact top-k: community
        members dominate both rankings."""
        cp = loaded()
        approx = rank_by_coreness(cp)
        exact = exact_rank(cp.graph)
        assert ranking_agreement(approx, exact, 20) >= 0.7

    def test_agreement_bounds(self):
        assert ranking_agreement([1, 2, 3], [3, 2, 1], 3) == 1.0
        assert ranking_agreement([1, 2], [3, 4], 2) == 0.0
        with pytest.raises(ValueError):
            ranking_agreement([1], [1], 0)


class TestShellsAndSpreading:
    def test_shell_histogram_counts_everyone(self):
        cp = loaded()
        hist = shell_histogram(cp)
        assert sum(hist.values()) == cp.graph.num_vertices
        assert all(est >= 1.0 for est in hist)

    def test_core_seeds_outspread_random_seeds(self):
        cp = loaded(seed=8)
        graph = cp.graph
        core_seeds = top_spreaders(cp, 5)
        tail_seeds = rank_by_coreness(cp)[-5:]
        assert spreading_power_proxy(graph, core_seeds) > spreading_power_proxy(
            graph, tail_seeds
        )

    def test_spreading_proxy_hops(self):
        cp = loaded()
        seeds = top_spreaders(cp, 3)
        one = spreading_power_proxy(cp.graph, seeds, hops=1)
        two = spreading_power_proxy(cp.graph, seeds, hops=2)
        assert two >= one >= len(seeds)

    def test_ranking_live_during_batch(self):
        """The ranking can be computed mid-batch (reads are the protocol
        reads), and returns only batch-boundary shells."""
        from repro.runtime.inject import InjectionProbe, attach_probe

        n = 40
        cp = CPLDS(n, params=LDSParams(n, levels_per_group=4))
        cp.insert_batch(gen.erdos_renyi(n, 80, seed=1))
        boundary_shells = {cp.read(v) for v in range(n)}
        observed = []

        def on_point(_tag):
            observed.extend(cp.read(v) for v in top_spreaders(cp, 5))

        attach_probe(cp, InjectionProbe(on_point))
        cp.insert_batch(gen.erdos_renyi(n, 80, seed=2))
        boundary_shells |= {cp.read(v) for v in range(n)}
        for est in observed:
            assert est in boundary_shells
