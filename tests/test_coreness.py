"""Tests for the coreness-estimate helpers (Definition 3.1 / Lemma 3.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lds import LDSParams
from repro.lds.coreness import (
    approximation_factor,
    coreness_estimate,
    lemma_3_2_bounds,
)


class TestEstimateFormula:
    def test_matches_definition_3_1(self):
        p = LDSParams(1000, delta=0.2)
        h = p.group_height
        for level in (0, h - 1, h, 2 * h - 1, 3 * h):
            expected = (1.2) ** max((level + 1) // h - 1, 0)
            assert coreness_estimate(p, level) == pytest.approx(expected)

    def test_free_function_matches_method(self):
        p = LDSParams(100, levels_per_group=5)
        for level in range(p.num_levels):
            assert coreness_estimate(p, level) == p.coreness_estimate(level)


class TestApproximationFactor:
    def test_exact_match_is_one(self):
        assert approximation_factor(5.0, 5) == 1.0

    def test_symmetric(self):
        assert approximation_factor(10.0, 5) == pytest.approx(2.0)
        assert approximation_factor(2.5, 5) == pytest.approx(2.0)

    def test_coreless_vertex_neutral_for_small_estimates(self):
        assert approximation_factor(1.0, 0) == 1.0
        assert approximation_factor(0.5, 0) == 1.0

    def test_coreless_vertex_penalized_for_large_estimates(self):
        assert approximation_factor(7.0, 0) == 7.0

    def test_zero_estimate_infinite(self):
        assert approximation_factor(0.0, 3) == float("inf")

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=1e6),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_always_at_least_one(self, est, exact):
        assert approximation_factor(est, exact) >= 1.0


class TestLemmaBounds:
    def test_bounds_bracket_exact(self):
        p = LDSParams(1000)
        lo, hi = lemma_3_2_bounds(p, 10)
        assert lo < 10 < hi
        assert hi / 10 == pytest.approx(2.8 * 1.2)

    def test_zero_coreness(self):
        p = LDSParams(1000)
        lo, hi = lemma_3_2_bounds(p, 0)
        assert lo == 0.0
        assert hi > 1.0

    def test_bounds_scale_linearly(self):
        p = LDSParams(1000)
        lo1, hi1 = lemma_3_2_bounds(p, 3)
        lo2, hi2 = lemma_3_2_bounds(p, 6)
        assert lo2 == pytest.approx(2 * lo1)
        assert hi2 == pytest.approx(2 * hi1)
