"""Full-stack stress: every concurrency feature enabled at once.

ThreadedExecutor decision rounds + real reader threads + the coordinator's
producer threads + history recording — the kitchen-sink configuration a
downstream user could plausibly run.  Everything must stay linearizable and
invariant-clean.
"""

import threading

import pytest

from repro.core import CPLDS
from repro.graph import generators as gen
from repro.lds import LDSParams
from repro.runtime.coordinator import BatchCoordinator
from repro.runtime.executor import ThreadedExecutor
from repro.verify import LinearizabilityChecker, RecordedKCore
from repro.workloads import BatchStream, UniformReadGenerator


class TestKitchenSink:
    def test_threaded_executor_with_concurrent_readers(self):
        n = 100
        edges = gen.chung_lu(n, 600, seed=11)
        stream = BatchStream.insert_then_delete("stress", n, edges, 150)
        with ThreadedExecutor(num_threads=3) as ex:
            impl = CPLDS(n, params=LDSParams(n, levels_per_group=20), executor=ex)
            rec = RecordedKCore(impl)
            stop = threading.Event()
            errors = []

            def reader(idx):
                g = UniformReadGenerator(n, seed=idx)
                try:
                    for _ in range(3000):
                        if stop.is_set():
                            break
                        rec.read(g.next())
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,), daemon=True)
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for batch in stream:
                if batch.kind == "insert":
                    rec.insert_batch(batch.edges)
                else:
                    rec.delete_batch(batch.edges)
            stop.set()
            for t in threads:
                t.join(30)
            assert not errors, errors
            impl.check_invariants()
            violations = LinearizabilityChecker(rec.history).violations()
            assert violations == [], violations[:3]

    def test_coordinator_over_threaded_executor(self):
        n = 80
        edges = gen.erdos_renyi(n, 400, seed=12)
        with ThreadedExecutor(num_threads=2) as ex:
            impl = CPLDS(n, params=LDSParams(n, levels_per_group=20), executor=ex)
            with BatchCoordinator(impl, max_batch=64, max_delay=0.002) as coord:
                producers = []

                def producer(chunk):
                    for u, v in chunk:
                        coord.submit_insert(u, v)

                for k in range(3):
                    t = threading.Thread(target=producer, args=(edges[k::3],))
                    producers.append(t)
                    t.start()
                for t in producers:
                    t.join()
                coord.flush()
            impl.check_invariants()
            assert impl.graph.num_edges == len(edges)

    @pytest.mark.parametrize("seed", range(2))
    def test_repeated_stress_cycles_stay_clean(self, seed):
        n = 60
        edges = gen.community_overlay(n, 2, 10, 120, seed=seed)
        impl = CPLDS(n, params=LDSParams(n, levels_per_group=10))
        rec = RecordedKCore(impl)
        stop = threading.Event()

        def reader():
            g = UniformReadGenerator(n, seed=seed)
            while not stop.is_set():
                rec.read(g.next())

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for _ in range(3):
            rec.insert_batch(edges)
            rec.delete_batch(edges)
        stop.set()
        t.join(30)
        impl.check_invariants()
        assert LinearizabilityChecker(rec.history).violations() == []
        assert impl.levels() == [0] * n
