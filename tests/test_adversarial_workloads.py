"""The adversarial workloads, driven through the full correctness stack."""

import pytest

from repro.core import CPLDS
from repro.lds import LDSParams
from repro.runtime.inject import InjectionProbe, attach_probe
from repro.runtime.stepping import InterleavedScheduler
from repro.verify import LinearizabilityChecker, RecordedKCore
from repro.workloads import adversarial as adv


class TestConstructions:
    def test_flash_crowd_shape(self):
        n, stream = adv.flash_crowd(20, background=50)
        assert n == 70
        assert len(stream) == 2
        assert len(stream.batches[1]) == 20 * 19 // 2

    def test_cascade_chain_shape(self):
        n, stream = adv.cascade_chain(6)
        assert n == 6
        assert all(len(b) == 1 for b in stream)
        assert len(stream) == 15

    def test_teardown_wave_conserves_edges(self):
        n, stream = adv.teardown_wave(8, waves=4)
        inserted = sum(len(b) for b in stream if b.kind == "insert")
        deleted = sum(len(b) for b in stream if b.kind == "delete")
        assert inserted == deleted == 28

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            adv.flash_crowd(1)
        with pytest.raises(ValueError):
            adv.cascade_chain(2)
        with pytest.raises(ValueError):
            adv.teardown_wave(2)
        with pytest.raises(ValueError):
            adv.teardown_wave(5, waves=0)
        with pytest.raises(ValueError):
            adv.sandwich_adversary(3)


def run_with_injection(n, stream, levels_per_group=8):
    impl = CPLDS(n, params=LDSParams(n, levels_per_group=levels_per_group))
    rec = RecordedKCore(impl)

    def on_point(_tag):
        for v in range(0, n, max(1, n // 12)):
            rec.read(v)

    attach_probe(impl, InjectionProbe(on_point))
    for batch in stream:
        if batch.kind == "insert":
            rec.insert_batch(batch.edges)
        else:
            rec.delete_batch(batch.edges)
    impl.check_invariants()
    return rec.history


class TestCPLDSSurvivesAdversaries:
    def test_flash_crowd_linearizable(self):
        n, stream = adv.flash_crowd(24, background=60)
        history = run_with_injection(n, stream)
        assert LinearizabilityChecker(history).violations() == []

    def test_cascade_chain_linearizable(self):
        n, stream = adv.cascade_chain(8)
        history = run_with_injection(n, stream, levels_per_group=4)
        assert LinearizabilityChecker(history).violations() == []

    def test_teardown_wave_linearizable(self):
        n, stream = adv.teardown_wave(10, waves=3)
        history = run_with_injection(n, stream, levels_per_group=4)
        assert LinearizabilityChecker(history).violations() == []

    def test_sandwich_adversary_linearizable(self):
        n, stream = adv.sandwich_adversary(12)
        history = run_with_injection(n, stream, levels_per_group=4)
        assert LinearizabilityChecker(history).violations() == []

    @pytest.mark.parametrize("seed", range(3))
    def test_sandwich_adversary_under_stepped_reads(self, seed):
        n, stream = adv.sandwich_adversary(12)
        impl = CPLDS(n, params=LDSParams(n, levels_per_group=4))
        sched = InterleavedScheduler(impl, num_readers=6, seed=seed)
        results = sched.run(stream)
        assert results  # validation happens inside the scheduler
        impl.check_invariants()
