"""Step-level interleaving tests of the read protocol (Algorithm 4)."""

import pytest

from repro.core import CPLDS
from repro.graph import generators as gen
from repro.runtime.stepping import InterleavedScheduler, SteppedRead
from repro.workloads import BatchStream


def clique(n):
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


class TestSteppedRead:
    def test_quiescent_read_completes(self):
        cp = CPLDS(4)
        cp.insert_batch([(0, 1), (1, 2), (0, 2)])
        read = SteppedRead(cp, 0)
        result = read.advance(100)
        assert result is not None
        assert result.retries == 0
        assert result.estimate == cp.read(0)

    def test_partial_advance_returns_none(self):
        cp = CPLDS(4)
        read = SteppedRead(cp, 0)
        assert read.advance(2) is None
        assert read.advance(100) is not None

    def test_batch_number_change_forces_retry(self):
        """Suspend a reader after its first collect, run a whole batch, and
        resume: the sandwich must detect the torn state and retry."""
        cp = CPLDS(8)
        read = SteppedRead(cp, 0)
        read.advance(2)  # read b1 and l1
        cp.insert_batch(clique(8))  # full batch while suspended
        result = read.advance(10_000)
        assert result is not None
        assert result.retries >= 1
        assert result.retry_causes[0] == "batch"
        # After the retry it returns the post-batch level.
        assert result.level == cp.plds.state.level[0]

    def test_result_matches_unstepped_read(self):
        cp = CPLDS(10)
        cp.insert_batch(clique(10))
        for v in range(10):
            stepped = SteppedRead(cp, v).advance(1000)
            assert stepped.estimate == cp.read(v)


class TestInterleavedScheduler:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_return_boundary_levels(self, seed):
        n = 16
        edges = gen.erdos_renyi(n, 60, seed=seed)
        stream = BatchStream.insert_then_delete("step", n, edges, 15)
        cp = CPLDS(n)
        sched = InterleavedScheduler(cp, num_readers=5, seed=seed)
        completed = sched.run(stream)
        # The scheduler validates each read on completion; reaching here
        # with a healthy population is the pass.
        assert len(completed) >= 5
        cp.check_invariants()

    @pytest.mark.parametrize("seed", range(4))
    def test_every_retry_has_a_cause(self, seed):
        """The paper's lock-freedom argument: a read retries only because an
        update made progress (batch number advanced or live level moved)."""
        n = 12
        stream = BatchStream.insert_then_delete(
            "step", n, clique(n), 12
        )
        cp = CPLDS(n)
        sched = InterleavedScheduler(cp, num_readers=6, seed=seed)
        completed = sched.run(stream)
        for r in completed:
            assert len(r.retry_causes) == r.retries
            assert all(c in ("batch", "level") for c in r.retry_causes)

    def test_retries_actually_occur_under_contention(self):
        """Sanity: the adversarial schedule does tear some reads (otherwise
        the retry-path tests above are vacuous)."""
        n = 12
        total_retries = 0
        for seed in range(10):
            stream = BatchStream.insert_then_delete("step", n, clique(n), 10)
            cp = CPLDS(n)
            sched = InterleavedScheduler(cp, num_readers=8, seed=seed)
            completed = sched.run(stream)
            total_retries += sum(r.retries for r in completed)
        assert total_retries > 0

    def test_descriptor_reads_observed(self):
        """Some interleaved reads must land on marked vertices and take the
        descriptor (old-level) path."""
        n = 12
        hits = 0
        for seed in range(10):
            stream = BatchStream.insert_only("step", n, clique(n), 10)
            cp = CPLDS(n)
            sched = InterleavedScheduler(cp, num_readers=8, seed=seed)
            completed = sched.run(stream)
            hits += sum(1 for r in completed if r.from_descriptor)
        assert hits > 0

    def test_deterministic_given_seed(self):
        n = 10
        def run(seed):
            stream = BatchStream.insert_only("step", n, clique(n), 9)
            cp = CPLDS(n)
            sched = InterleavedScheduler(cp, num_readers=4, seed=seed)
            return [
                (r.vertex, r.level, r.retries) for r in sched.run(stream)
            ]

        assert run(3) == run(3)
        assert run(3) != run(4) or True  # different seeds may coincide
