"""Smoke tests: the example scripts run end to end.

Each example is executed in-process (importing its ``main``) so failures
surface as ordinary test failures with tracebacks.  The slow, measurement-
heavy examples are capped to the fast ones here; the full set is exercised
manually / by the bench pipeline.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "quickstart OK" in out

    def test_linearizability_demo(self, capsys):
        load_example("linearizability_demo").main()
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "Theorem 6.1" in out

    def test_road_network_closures(self, capsys):
        load_example("road_network_closures").main()
        out = capsys.readouterr().out
        assert "invariants hold" in out

    def test_churn_pipeline(self, capsys):
        load_example("churn_pipeline").main()
        out = capsys.readouterr().out
        assert "pipeline OK" in out

    @pytest.mark.parametrize(
        "name", ["social_network_monitor", "streaming_service"]
    )
    def test_measurement_examples_importable(self, name):
        """The two measurement-heavy examples are compile/import-checked
        here and executed by the bench pipeline."""
        module = load_example(name)
        assert callable(module.main)
