"""Tests for CPLDS checkpointing."""

import numpy as np
import pytest

from repro.core import CPLDS
from repro.errors import (
    BatchInProgressError,
    CheckpointCorruptError,
    PersistError,
    ReproError,
)
from repro.graph import generators as gen
from repro.lds import LDSParams
from repro.persist import load_cplds, save_cplds


def build(n=40, m=160, seed=3, levels_per_group=20):
    cp = CPLDS(n, params=LDSParams(n, levels_per_group=levels_per_group))
    edges = gen.chung_lu(n, m, seed=seed)
    cp.insert_batch(edges[: m // 2])
    cp.insert_batch(edges[m // 2 :])
    cp.delete_batch(edges[::5])
    return cp


class TestRoundTrip:
    def test_reads_identical_after_restore(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        restored = load_cplds(path)
        assert restored.levels() == cp.levels()
        for v in range(cp.graph.num_vertices):
            assert restored.read(v) == cp.read(v)

    def test_graph_restored(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        restored = load_cplds(path)
        assert sorted(restored.graph.edges()) == sorted(cp.graph.edges())

    def test_batch_number_preserved(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        assert load_cplds(path).batch_number == cp.batch_number

    def test_restored_structure_accepts_updates(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        restored = load_cplds(path)
        restored.insert_batch([(0, 1), (1, 2)])
        restored.delete_batch([(0, 1)])
        restored.check_invariants()

    def test_params_preserved(self, tmp_path):
        cp = build(levels_per_group=12)
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        restored = load_cplds(path)
        assert restored.params.group_height == 12
        assert restored.params.delta == cp.params.delta

    def test_empty_structure(self, tmp_path):
        cp = CPLDS(5)
        path = tmp_path / "empty.npz"
        save_cplds(cp, path)
        restored = load_cplds(path)
        assert restored.graph.num_edges == 0
        assert restored.levels() == [0] * 5


class TestGuards:
    def test_mid_batch_checkpoint_rejected(self, tmp_path):
        cp = CPLDS(6)
        # Forge an in-flight descriptor.
        cp.descriptors.mark(2, old_level=0, related=[], batch=1)
        with pytest.raises(BatchInProgressError):
            save_cplds(cp, tmp_path / "bad.npz")

    def test_version_mismatch_rejected(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        with np.load(path) as data:
            payload = dict(data)
        payload["format_version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ReproError):
            load_cplds(path)


class TestCorruption:
    """Damaged archives must raise the typed CheckpointCorruptError."""

    def _saved(self, tmp_path):
        cp = build()
        path = tmp_path / "kcore.npz"
        save_cplds(cp, path)
        return path

    def test_truncated_archive_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_cplds(path)

    def test_bit_flip_rejected(self, tmp_path):
        import zipfile

        path = self._saved(tmp_path)
        # Flip bytes inside the levels member's compressed stream (a flip in
        # zip-format slack would go unnoticed by any checksum).
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo("levels.npy")
        offset = info.header_offset + 60  # past the local header, into data
        data = bytearray(path.read_bytes())
        for i in range(offset, offset + 8):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            load_cplds(path)

    def test_tampered_field_fails_checksum(self, tmp_path):
        path = self._saved(tmp_path)
        with np.load(path) as data:
            payload = dict(data)
        payload["batch_number"] = np.int64(int(payload["batch_number"]) + 7)
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointCorruptError):
            load_cplds(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            load_cplds(tmp_path / "nope.npz")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorruptError):
            load_cplds(path)

    def test_error_is_typed_persist_error(self, tmp_path):
        path = tmp_path / "nope.npz"
        try:
            load_cplds(path)
        except CheckpointCorruptError as exc:
            assert isinstance(exc, PersistError)
            assert isinstance(exc, ReproError)
        else:  # pragma: no cover - the load must fail
            raise AssertionError("expected CheckpointCorruptError")
