"""SBM generator tests + checkpoint round-trip property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPLDS
from repro.exact import core_decomposition
from repro.graph import DynamicGraph
from repro.graph.generators import stochastic_block_model
from repro.lds import LDSParams
from repro.persist import load_cplds, save_cplds


class TestSBM:
    def test_valid_edges(self):
        edges = stochastic_block_model([10, 10, 10], p_in=0.6, p_out=0.02, seed=1)
        n = 30
        seen = set()
        for u, v in edges:
            assert 0 <= u < v < n
            assert (u, v) not in seen
            seen.add((u, v))

    def test_blocks_denser_than_cross(self):
        edges = stochastic_block_model([25, 25], p_in=0.5, p_out=0.02, seed=2)
        within = sum(1 for u, v in edges if (u < 25) == (v < 25))
        across = len(edges) - within
        assert within > 4 * max(across, 1)

    def test_deterministic(self):
        a = stochastic_block_model([8, 8], 0.5, 0.05, seed=3)
        b = stochastic_block_model([8, 8], 0.5, 0.05, seed=3)
        assert a == b

    def test_block_structure_shows_in_cores(self):
        edges = stochastic_block_model([30, 30], p_in=0.5, p_out=0.01, seed=4)
        g = DynamicGraph(60, edges)
        cores = core_decomposition(g)
        # Dense blocks yield substantially deeper cores than p_out alone.
        assert int(cores.max()) >= 8

    def test_degenerate_params(self):
        assert stochastic_block_model([], 0.5, 0.1) == []
        assert stochastic_block_model([5], 0.0, 0.0) == []
        assert stochastic_block_model([1, 1], 1.0, 1.0, seed=5) == [(0, 1)]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            stochastic_block_model([5], p_in=0.1, p_out=0.5)
        with pytest.raises(ValueError):
            stochastic_block_model([-1], 0.5, 0.1)

    def test_empty_blocks_tolerated(self):
        edges = stochastic_block_model([0, 6, 0], p_in=0.8, p_out=0.0, seed=6)
        assert all(0 <= u < v < 6 for u, v in edges)


@st.composite
def churned_structures(draw):
    """A CPLDS after a random sequence of insert/delete batches."""
    n = draw(st.integers(min_value=2, max_value=12))
    params = LDSParams(n, levels_per_group=draw(st.sampled_from([3, 6, 20])))
    cp = CPLDS(n, params=params)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    num_batches = draw(st.integers(min_value=0, max_value=4))
    for _ in range(num_batches):
        batch = draw(st.lists(st.sampled_from(possible), min_size=1, max_size=12))
        if draw(st.booleans()):
            cp.insert_batch(batch)
        else:
            cp.delete_batch(batch)
    return cp


def _roundtrip(cp):
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        save_cplds(cp, path)
        return load_cplds(path)
    finally:
        os.unlink(path)


class TestPersistProperties:
    @settings(max_examples=40, deadline=None)
    @given(churned_structures())
    def test_roundtrip_preserves_everything(self, cp):
        restored = _roundtrip(cp)
        assert restored.levels() == cp.levels()
        assert sorted(restored.graph.edges()) == sorted(cp.graph.edges())
        assert restored.batch_number == cp.batch_number
        for v in range(cp.graph.num_vertices):
            assert restored.read(v) == cp.read(v)

    @settings(max_examples=20, deadline=None)
    @given(churned_structures())
    def test_restored_structure_survives_more_churn(self, cp):
        restored = _roundtrip(cp)
        n = restored.graph.num_vertices
        if n >= 2:
            restored.insert_batch([(0, 1)])
            restored.delete_batch([(0, 1)])
        restored.check_invariants()
