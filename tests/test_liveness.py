"""Tests for the lock-freedom (liveness) analysis."""

import pytest

from repro.core import CPLDS
from repro.errors import ReproError
from repro.runtime.stepping import InterleavedScheduler, SteppedResult
from repro.runtime.threads import run_concurrent_session
from repro.verify.liveness import analyze_stepped, check_session_liveness
from repro.workloads import BatchStream
from repro.graph import generators as gen


def stepped_population(seed=0, n=12):
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    stream = BatchStream.insert_then_delete("live", n, edges, 12)
    cp = CPLDS(n)
    sched = InterleavedScheduler(cp, num_readers=6, seed=seed)
    return sched.run(stream)


class TestAnalyzeStepped:
    def test_healthy_population(self):
        results = stepped_population()
        report = analyze_stepped(results)
        assert report.reads == len(results)
        assert report.total_retries == sum(r.retries for r in results)
        assert set(report.cause_counts) == {"batch", "level"}
        assert (
            report.cause_counts["batch"] + report.cause_counts["level"]
            == report.total_retries
        )

    def test_retry_rate(self):
        report = analyze_stepped(stepped_population(seed=2))
        assert report.retry_rate >= 0.0

    def test_causeless_retry_flagged(self):
        bad = SteppedResult(
            vertex=0, level=0, estimate=1.0, from_descriptor=False,
            retries=2, retry_causes=["batch"],
        )
        with pytest.raises(ReproError, match="recorded causes"):
            analyze_stepped([bad])

    def test_invalid_cause_flagged(self):
        bad = SteppedResult(
            vertex=0, level=0, estimate=1.0, from_descriptor=False,
            retries=1, retry_causes=["cosmic-ray"],
        )
        with pytest.raises(ReproError, match="invalid retry cause"):
            analyze_stepped([bad])

    def test_empty_population(self):
        report = analyze_stepped([])
        assert report.reads == 0
        assert report.retry_rate == 0.0


class TestSessionLiveness:
    def test_real_session_passes(self):
        n = 60
        edges = gen.erdos_renyi(n, 240, seed=4)
        stream = BatchStream.insert_then_delete("live", n, edges, 60)
        session = run_concurrent_session(CPLDS(n), stream, num_readers=2)
        report = check_session_liveness(session)
        assert report.reads == len(session.reads)
