"""Tests for history recording (clock, records, RecordedKCore)."""

import threading

import pytest

from repro.core import CPLDS
from repro.errors import HistoryError
from repro.verify import History, LogicalClock, ReadRecord, RecordedKCore
from repro.verify.history import BatchRecord


class TestLogicalClock:
    def test_ticks_monotonic(self):
        clk = LogicalClock()
        ticks = [clk.tick() for _ in range(5)]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == 5

    def test_now_does_not_advance(self):
        clk = LogicalClock()
        clk.tick()
        assert clk.now() == 1
        assert clk.now() == 1

    def test_thread_safe_unique_ticks(self):
        clk = LogicalClock()
        seen = []

        def worker():
            for _ in range(500):
                seen.append(clk.tick())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 2000


class TestRecords:
    def test_read_record_rejects_time_travel(self):
        with pytest.raises(HistoryError):
            ReadRecord(
                vertex=0, invoked=5, responded=3, level=0,
                from_descriptor=False, batch=1,
            )

    def test_batch_record_rejects_time_travel(self):
        with pytest.raises(HistoryError):
            BatchRecord(
                index=1, kind="insert", started=9, ended=2,
                levels_after=(0,), changed=frozenset(),
            )

    def test_level_versions_dedup(self):
        h = History(initial_levels=(0, 0))
        h.batches.append(
            BatchRecord(
                index=1, kind="insert", started=1, ended=2,
                levels_after=(2, 0), changed=frozenset({0}),
            )
        )
        h.batches.append(
            BatchRecord(
                index=2, kind="insert", started=3, ended=4,
                levels_after=(2, 0), changed=frozenset(),
            )
        )
        assert h.level_versions(0) == [(0, 0), (1, 2)]
        assert h.level_versions(1) == [(0, 0)]


class TestRecordedKCore:
    def test_records_batches_and_reads(self):
        rec = RecordedKCore(CPLDS(6))
        rec.insert_batch([(u, v) for u in range(6) for v in range(u + 1, 6)])
        rec.read(0)
        rec.read(3)
        h = rec.history
        assert len(h.batches) == 1
        assert len(h.reads) == 2
        batch = h.batches[0]
        assert batch.kind == "insert"
        assert batch.changed  # the clique moved vertices up
        assert batch.started < batch.ended
        assert all(r.invoked < r.responded for r in h.reads)

    def test_dag_map_captured_from_cplds(self):
        rec = RecordedKCore(CPLDS(6))
        rec.insert_batch([(u, v) for u in range(6) for v in range(u + 1, 6)])
        batch = rec.history.batches[0]
        assert batch.dag_of  # the clique batch creates at least one DAG
        assert set(batch.dag_of) <= set(range(6))

    def test_delete_batch_recorded(self):
        rec = RecordedKCore(CPLDS(6))
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        rec.insert_batch(edges)
        rec.delete_batch(edges)
        assert [b.kind for b in rec.history.batches] == ["insert", "delete"]
        assert rec.history.batches[1].levels_after == (0,) * 6

    def test_read_passthrough_value(self):
        cp = CPLDS(4)
        rec = RecordedKCore(cp)
        rec.insert_batch([(0, 1), (1, 2), (0, 2)])
        assert rec.read(0) == cp.read(0)
